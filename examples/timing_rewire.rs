//! Post-placement timing optimization on a generated Table 1 benchmark:
//! compares the three optimizers of the paper (`gsg`, `GS`, `gsg+GS`) on the
//! same placement, like one row of Table 1.
//!
//! Run with: `cargo run -p rapids-core --release --example timing_rewire [benchmark]`

use rapids_celllib::Library;
use rapids_circuits::benchmark;
use rapids_core::{Optimizer, OptimizerConfig, OptimizerKind};
use rapids_placement::{place, PlacerConfig};
use rapids_timing::{Sta, TimingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "c432".to_string());
    let network = benchmark(&name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let library = Library::standard_035um();
    println!("benchmark {name}: {} mapped gates", network.logic_gate_count());

    let placement = place(&network, &library, &PlacerConfig::default(), 2000);
    let timing = TimingConfig::default();
    let initial = Sta::analyze(&network, &library, &placement, &timing);
    println!("initial critical delay after placement: {:.3} ns\n", initial.critical_delay_ns());

    for kind in [OptimizerKind::Rewiring, OptimizerKind::Sizing, OptimizerKind::Combined] {
        let mut working = network.clone();
        let outcome = Optimizer::new(OptimizerConfig::for_kind(kind))
            .optimize(&mut working, &library, &placement, &timing);
        println!(
            "{:<7}  delay {:.3} ns  improvement {:>5.1}%  area {:>+5.1}%  wirelength {:>+5.1}%  swaps {:>3}  resized {:>4}  cpu {:.2}s",
            kind.to_string(),
            outcome.final_delay_ns,
            outcome.delay_improvement_percent(),
            outcome.area_change_percent(),
            outcome.hpwl_change_percent(),
            outcome.swaps_applied,
            outcome.gates_resized,
            outcome.cpu_seconds
        );
    }
    Ok(())
}
