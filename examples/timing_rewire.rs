//! Post-placement timing optimization on a generated Table 1 benchmark:
//! compares the three optimizers of the paper (`gsg`, `GS`, `gsg+GS`) on the
//! same placement — one Table 1 row — through a single
//! [`Pipeline::compare_optimizers`] call.
//!
//! Run with: `cargo run --release --example timing_rewire [benchmark]`

use rapids_core::OptimizerKind;
use rapids_flow::{CircuitSource, Pipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "c432".to_string());
    let comparison = Pipeline::with_defaults().compare_optimizers(CircuitSource::suite(&name))?;

    println!("benchmark {name}: {} mapped gates", comparison.gate_count);
    println!("initial critical delay after placement: {:.3} ns\n", comparison.initial_delay_ns);

    for kind in [OptimizerKind::Rewiring, OptimizerKind::Sizing, OptimizerKind::Combined] {
        let outcome = &comparison.report(kind).outcome;
        println!(
            "{:<7}  delay {:.3} ns  improvement {:>5.1}%  area {:>+5.1}%  wirelength {:>+5.1}%  swaps {:>3}  resized {:>4}  cpu {:.2}s",
            kind.to_string(),
            outcome.final_delay_ns,
            outcome.delay_improvement_percent(),
            outcome.area_change_percent(),
            outcome.hpwl_change_percent(),
            outcome.swaps_applied,
            outcome.gates_resized,
            outcome.cpu_seconds
        );
    }
    Ok(())
}
