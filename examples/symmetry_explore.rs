//! Reproduces the paper's Fig. 2 and Fig. 3 by hand: swappable pins inside a
//! supergate, and cross-supergate swapping with the DeMorgan transform —
//! each verified against the BDD oracle — then pushes the Fig. 3 network
//! through the unified [`Pipeline`] with the equivalence safety net on.
//!
//! Run with: `cargo run --example symmetry_explore`

use rapids_bdd::check_equivalence;
use rapids_core::cross::cross_supergate_swap;
use rapids_core::supergate::extract_supergates;
use rapids_core::swap::apply_swap;
use rapids_core::symmetry::{swap_candidates, symmetry_classes};
use rapids_core::OptimizerKind;
use rapids_flow::{CircuitSource, Pipeline, PipelineConfig};
use rapids_netlist::{GateType, Network, NetworkBuilder};

/// Fig. 2: a 3-input AND supergate whose pins h and k are swappable.
fn figure2() -> Result<(), Box<dyn std::error::Error>> {
    println!("— Fig. 2: swappable pins inside one supergate —");
    let mut builder = NetworkBuilder::new("fig2");
    builder.inputs(["h", "k", "m"]);
    builder.gate("g1", GateType::And, &["k", "m"]);
    builder.gate("f", GateType::And, &["h", "g1"]);
    builder.output("f");
    let reference = builder.finish()?;

    let extraction = extract_supergates(&reference);
    let f = reference.find_by_name("f").expect("root exists");
    let sg = extraction.supergate_of_root(f).expect("f is a root");
    println!("supergate at f covers {} gates, {} input pins", sg.size(), sg.input_count());
    for class in symmetry_classes(sg) {
        println!("  symmetry class with {} pins", class.len());
    }
    for candidate in swap_candidates(sg, false) {
        let mut rewired: Network = reference.clone();
        apply_swap(&mut rewired, &candidate)?;
        let equivalent = check_equivalence(&reference, &rewired).is_ok();
        println!("  swap {} <-> {} : equivalent = {equivalent}", candidate.pin_a, candidate.pin_b);
        assert!(equivalent);
    }
    Ok(())
}

/// Fig. 3: AND(a,b,c) and OR(d,e,g) feed a symmetric parent; their fan-in
/// sets are exchanged under the DeMorgan transform.
fn figure3() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n— Fig. 3: cross-supergate swapping via DeMorgan —");
    let mut builder = NetworkBuilder::new("fig3");
    builder.inputs(["a", "b", "c", "d", "e", "g"]);
    builder.gate("sg1", GateType::And, &["a", "b", "c"]);
    builder.gate("sg2", GateType::Or, &["d", "e", "g"]);
    builder.gate("parent", GateType::Xor, &["sg1", "sg2"]);
    builder.output("parent");
    let reference = builder.finish()?;

    let mut rewired = reference.clone();
    let extraction = extract_supergates(&rewired);
    let sg1 = extraction
        .supergate_of_root(rewired.find_by_name("sg1").expect("sg1"))
        .expect("sg1 root")
        .clone();
    let sg2 = extraction
        .supergate_of_root(rewired.find_by_name("sg2").expect("sg2"))
        .expect("sg2 root")
        .clone();
    let record = cross_supergate_swap(&mut rewired, &sg1, &sg2)?;
    println!(
        "cross swap applied: DeMorgan used = {}, inverters inserted = {}",
        record.demorganized, record.inserted_inverters
    );
    let equivalent = check_equivalence(&reference, &rewired).is_ok();
    println!("network still equivalent: {equivalent}");
    assert!(equivalent);
    Ok(())
}

/// The same Fig. 3 structure, driven through the full place → STA → rewire
/// pipeline with the simulation safety net enabled.
fn figure3_through_pipeline() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n— Fig. 3 network through the full pipeline (gsg) —");
    let mut builder = NetworkBuilder::new("fig3-flow");
    builder.inputs(["a", "b", "c", "d", "e", "g"]);
    builder.gate("sg1", GateType::And, &["a", "b", "c"]);
    builder.gate("sg2", GateType::Or, &["d", "e", "g"]);
    builder.gate("parent", GateType::Xor, &["sg1", "sg2"]);
    builder.output("parent");
    let network = builder.finish()?;

    let pipeline =
        Pipeline::new(PipelineConfig { verify_equivalence: true, ..PipelineConfig::default() });
    let report = pipeline.run_kind(CircuitSource::Mapped(network), OptimizerKind::Rewiring)?;
    println!(
        "pipeline: {:.3} ns → {:.3} ns with {} swap(s); equivalence verified = {}",
        report.initial_delay_ns,
        report.outcome.final_delay_ns,
        report.outcome.swaps_applied,
        report.equivalence_verified
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    figure2()?;
    figure3()?;
    figure3_through_pipeline()?;
    Ok(())
}
