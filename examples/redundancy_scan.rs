//! Reproduces the paper's Fig. 1: redundancies exposed for free during
//! generalized supergate extraction, then scans a generated Table 1
//! benchmark and reports how many it finds (column 14 of Table 1).
//!
//! Run with: `cargo run --example redundancy_scan [benchmark]`

use rapids_core::redundancy::{count_by_kind, find_redundancies, remove_same_gate_duplicate};
use rapids_core::supergate::extract_supergates;
use rapids_flow::{CircuitSource, Pipeline};
use rapids_netlist::{GateType, NetworkBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 1(a): conflicting implications at a fanout stem (g and !g both
    // feed the same AND cone ⇒ the cone is constant and redundant).
    let mut builder = NetworkBuilder::new("fig1a");
    builder.inputs(["x", "g"]);
    builder.gate("ng", GateType::Inv, &["g"]);
    builder.gate("n1", GateType::And, &["ng", "x"]);
    builder.gate("f", GateType::And, &["n1", "g"]);
    builder.output("f");
    let fig1a = builder.finish()?;
    let findings = find_redundancies(&extract_supergates(&fig1a));
    println!("Fig. 1(a): {} finding(s): {:?}", findings.len(), findings[0].kind);

    // Fig. 1(b): agreeing implications (the stem feeds the cone twice with
    // the same required value ⇒ one connection is redundant).
    let mut builder = NetworkBuilder::new("fig1b");
    builder.inputs(["x", "g"]);
    builder.gate("n1", GateType::And, &["g", "x"]);
    builder.gate("f", GateType::And, &["n1", "g"]);
    builder.output("f");
    let mut fig1b = builder.finish()?;
    let findings = find_redundancies(&extract_supergates(&fig1b));
    println!("Fig. 1(b): {} finding(s): {:?}", findings.len(), findings[0].kind);
    let removed = remove_same_gate_duplicate(&mut fig1b, &findings[0]);
    println!("           same-gate duplicate removable here: {removed}");

    // Scan a full benchmark (column 14 of Table 1), resolved through the
    // pipeline's generate+map front end.
    let name = std::env::args().nth(1).unwrap_or_else(|| "i8".to_string());
    let network = Pipeline::with_defaults().build_network(CircuitSource::suite(&name))?;
    let extraction = extract_supergates(&network);
    let findings = find_redundancies(&extraction);
    let (conflicting, agreeing, xor) = count_by_kind(&findings);
    println!(
        "\nbenchmark {name}: {} gates, {} supergates, {} redundancies \
         (conflicting {conflicting}, agreeing {agreeing}, xor {xor})",
        network.logic_gate_count(),
        extraction.supergates().len(),
        findings.len()
    );
    Ok(())
}
