//! Programmatic use of the `rapids-serve` batch service: build an engine,
//! submit a mixed batch (suite designs plus an inline BLIF netlist),
//! consume results as they stream in, then resubmit a design to watch the
//! result cache answer without recompute.
//!
//! Run with: `cargo run --release --example batch_serve`

use rapids_flow::PipelineConfig;
use rapids_serve::{BatchServer, Engine, Job};

const INLINE_ADDER: &str = "\
.model inline_adder
.inputs a b cin
.outputs sum cout
.gate xor p a b
.gate xor sum p cin
.gate and g a b
.gate and t p cin
.gate or cout g t
.end
";

fn main() {
    // One engine = one long-running service: the result cache lives here
    // and is shared by every batch and worker thread.
    let engine = Engine::new(PipelineConfig::fast());
    let server = BatchServer::new(engine, 4);
    let config = server.engine().base_config().clone();

    let jobs = vec![
        Job::suite("c432", &config),
        Job::suite("alu2", &config),
        Job::suite("c499", &config),
        Job::blif_text("inline_adder", INLINE_ADDER, &config),
    ];

    // Results stream in completion order, one JSONL line per design, as
    // each finishes — there is no barrier on the whole batch.
    println!("--- first batch (streaming) ---");
    let summary = server.run_streaming(&jobs, |report| {
        println!("{}", report.to_jsonl());
    });
    println!(
        "batch: {} done ({} cached), {} failed; optimizer ran {} time(s)\n",
        summary.done,
        summary.cached,
        summary.failed,
        server.engine().optimizer_runs()
    );

    // Resubmitting the same designs hits the cache: identical report
    // lines, zero additional optimizer runs.
    println!("--- resubmission (served from cache) ---");
    let summary = server.run_streaming(&jobs, |report| {
        println!("cached={} {}", report.cached, report.to_jsonl());
    });
    println!(
        "batch: {} done ({} cached); optimizer still ran {} time(s) total",
        summary.done,
        summary.cached,
        server.engine().optimizer_runs()
    );
}
