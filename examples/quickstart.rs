//! Quickstart: build a small netlist, extract its supergates, list the
//! swappable pins, and run the post-placement flow end to end through the
//! unified [`Pipeline`].
//!
//! Run with: `cargo run --example quickstart`

use rapids_core::supergate::extract_supergates;
use rapids_core::symmetry::swap_candidates;
use rapids_core::OptimizerKind;
use rapids_flow::{CircuitSource, Pipeline};
use rapids_netlist::{GateType, NetworkBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a mapped netlist (a 2-bit carry chain with some glue).
    let mut builder = NetworkBuilder::new("quickstart");
    builder.inputs(["a0", "b0", "a1", "b1", "cin"]);
    builder.gate("p0", GateType::Xor, &["a0", "b0"]);
    builder.gate("g0", GateType::Nand, &["a0", "b0"]);
    builder.gate("t0", GateType::Nand, &["p0", "cin"]);
    builder.gate("c1", GateType::Nand, &["g0", "t0"]);
    builder.gate("p1", GateType::Xor, &["a1", "b1"]);
    builder.gate("s0", GateType::Xor, &["p0", "cin"]);
    builder.gate("s1", GateType::Xor, &["p1", "c1"]);
    builder.output("s0");
    builder.output("s1");
    builder.output("c1");
    let network = builder.finish()?;

    // 2. Extract generalized implication supergates and report the rewiring
    //    freedom they expose.
    let extraction = extract_supergates(&network);
    println!("supergates extracted: {}", extraction.supergates().len());
    for sg in extraction.supergates() {
        let candidates = swap_candidates(sg, false);
        println!(
            "  root {:>4}  kind {:?}  members {}  inputs {}  swappable pairs {}",
            network.gate(sg.root).name,
            sg.kind,
            sg.size(),
            sg.input_count(),
            candidates.len()
        );
    }

    // 3. Run place → STA → gsg+GS optimization as one pipeline call; the
    //    placement never changes after it is made.
    let report = Pipeline::with_defaults()
        .run_kind(CircuitSource::Mapped(network), OptimizerKind::Combined)?;
    println!("\ninitial critical delay: {:.3} ns", report.initial_delay_ns);
    println!(
        "after gsg+GS:           {:.3} ns  ({:.1}% better, {} swaps, {} resized gates)",
        report.outcome.final_delay_ns,
        report.outcome.delay_improvement_percent(),
        report.outcome.swaps_applied,
        report.outcome.gates_resized
    );
    println!(
        "supergate coverage: {:.1}%  (largest supergate has {} inputs)",
        report.outcome.statistics.coverage_percent(),
        report.outcome.statistics.largest_inputs
    );
    Ok(())
}
