//! Quickstart: build a small netlist, extract its supergates, list the
//! swappable pins, and run the post-placement optimizer end to end.
//!
//! Run with: `cargo run -p rapids-core --example quickstart`

use rapids_celllib::Library;
use rapids_core::supergate::extract_supergates;
use rapids_core::symmetry::swap_candidates;
use rapids_core::{Optimizer, OptimizerConfig, OptimizerKind};
use rapids_netlist::{GateType, NetworkBuilder};
use rapids_placement::{place, PlacerConfig};
use rapids_timing::{Sta, TimingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a mapped netlist (a 2-bit carry chain with some glue).
    let mut builder = NetworkBuilder::new("quickstart");
    builder.inputs(["a0", "b0", "a1", "b1", "cin"]);
    builder.gate("p0", GateType::Xor, &["a0", "b0"]);
    builder.gate("g0", GateType::Nand, &["a0", "b0"]);
    builder.gate("t0", GateType::Nand, &["p0", "cin"]);
    builder.gate("c1", GateType::Nand, &["g0", "t0"]);
    builder.gate("p1", GateType::Xor, &["a1", "b1"]);
    builder.gate("s0", GateType::Xor, &["p0", "cin"]);
    builder.gate("s1", GateType::Xor, &["p1", "c1"]);
    builder.output("s0");
    builder.output("s1");
    builder.output("c1");
    let mut network = builder.finish()?;

    // 2. Extract generalized implication supergates and report the rewiring
    //    freedom they expose.
    let extraction = extract_supergates(&network);
    println!("supergates extracted: {}", extraction.supergates().len());
    for sg in extraction.supergates() {
        let candidates = swap_candidates(sg, false);
        println!(
            "  root {:>4}  kind {:?}  members {}  inputs {}  swappable pairs {}",
            network.gate(sg.root).name,
            sg.kind,
            sg.size(),
            sg.input_count(),
            candidates.len()
        );
    }

    // 3. Place the design, time it, and optimize it without touching the
    //    placement.
    let library = Library::standard_035um();
    let placement = place(&network, &library, &PlacerConfig::default(), 1);
    let timing = TimingConfig::default();
    let before = Sta::analyze(&network, &library, &placement, &timing);
    println!("\ninitial critical delay: {:.3} ns", before.critical_delay_ns());

    let outcome = Optimizer::new(OptimizerConfig::for_kind(OptimizerKind::Combined))
        .optimize(&mut network, &library, &placement, &timing);
    println!(
        "after gsg+GS:           {:.3} ns  ({:.1}% better, {} swaps, {} resized gates)",
        outcome.final_delay_ns,
        outcome.delay_improvement_percent(),
        outcome.swaps_applied,
        outcome.gates_resized
    );
    println!(
        "supergate coverage: {:.1}%  (largest supergate has {} inputs)",
        outcome.statistics.coverage_percent(),
        outcome.statistics.largest_inputs
    );
    Ok(())
}
