#!/usr/bin/env bash
# Tier-1 gate plus hygiene, in fail-fast order (cheapest first).
#
# Usage: ./ci.sh
#
# Everything runs offline: external deps are vendored under vendor/
# (see vendor/README.md), so no registry access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> test-target registration guard (every tests/*.rs must be a [[test]] target)"
# The workspace-level tests/ directory belongs to rapids-flow via explicit
# [[test]] path entries; a new test file that is not registered would be
# silently skipped by cargo test, so its absence fails the gate.
for t in tests/*.rs; do
    name=$(basename "$t" .rs)
    if ! grep -q "name = \"$name\"" crates/flow/Cargo.toml; then
        echo "error: $t is not registered as a [[test]] target in crates/flow/Cargo.toml" >&2
        exit 1
    fi
done

echo "==> cargo clippy (all targets, warnings are errors)"
# No allowlist flags here: the few intentional lint exceptions are local
# #[allow]s with justifying comments at the exact sites (eq_op oracle in
# rapids-core, argument-heavy scorer in rapids-sizing, index-loop tests in
# rapids-circuits).
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --benches (compile-only; benches are excluded from tier-1 runtime)"
cargo build --benches

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc (no deps, warnings are errors)"
# Keeps ARCHITECTURE/benchmarking links and the public rustdoc honest:
# broken intra-doc links or malformed examples fail the gate.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> STA kernel smoke (levelized vs scalar, bit-identity + speed gate)"
# Times the levelized struct-of-arrays kernel against the scalar reference
# analyzer on the largest suite designs, asserting bit-identical reports and
# that the kernel is not slower than 1.5x the reference (a generous margin:
# the point is catching a kernel that silently fell off the fast path, not
# benchmarking).  See docs/benchmarking.md, "The sta_kernel micro-benchmark".
timeout 120 ./target/release/sta_kernel --smoke > /dev/null

echo "==> SAT solver + CEC micro-smoke (pigeonhole UNSAT, planted SAT, miter refutation)"
# The hand-rolled CDCL solver on a known-UNSAT pigeonhole instance and a
# planted-satisfiable 3-SAT instance (model re-checked), then a corrupted
# DeMorgan miter whose counterexample must replay on the simulator.  A few
# milliseconds in release; the budget guards against a propagation/learning
# regression blowing up the conflict count.  See docs/equivalence.md.
timeout 60 ./target/release/cec_smoke > /dev/null

echo "==> timing-regression smoke (mid-size suite under a wall-clock budget)"
# Deterministic QoR (delay/area/decision counts) of three mid-size rows must
# exactly match the committed expectations; the timeout guards against a
# performance regression re-inflating the optimizer loops (the rows complete
# in a few seconds on the incremental engine; 120 s is the hard budget).
timeout 120 ./target/release/table1 --threads 2 c1908 alu4 x3 \
    --check ci/expected_qor_smoke.json > /dev/null

echo "==> inverting-swap (ES) smoke"
# Same rows with --es: inverting swaps must keep applying (c1908 and x3
# report non-zero es_swaps in the committed expectations) and keep the QoR
# deterministic; see docs/benchmarking.md for the field meanings.
timeout 120 ./target/release/table1 --threads 2 --es c1908 alu4 x3 \
    --check ci/expected_qor_smoke_es.json > /dev/null

echo "==> legalization QoR smoke (ES + row-legal placements)"
# Same rows with --es --legalize: the Abacus legalizer + timing refinement
# run in the prepare stage and accepted ES inverters are nudged into free
# row slots, so hpwl_um/max_displacement_um/es_swaps are pinned alongside
# the delay/area fields.  The default-off expectations above stay
# bit-identical (modulo the three appended fields), so both modes are
# guarded.  See docs/legalization.md.
timeout 120 ./target/release/table1 --threads 2 --es --legalize c1908 alu4 x3 \
    --check ci/expected_qor_smoke_legal.json > /dev/null

echo "==> serve smoke (batch service over suite designs + a .blif fixture)"
# Three fast suite designs plus the committed fixture, scheduled across two
# workers: the canonically sorted JSONL must match the pinned expectation
# byte for byte (reports are worker-count invariant; see docs/serving.md).
timeout 120 ./target/release/rapids-serve --fast --workers 2 --sort \
    alu2 c432 c499 --blif-dir ci/fixtures 2> /dev/null \
    | diff - ci/expected_serve_smoke.jsonl

echo "==> fault-injection smoke (panic + transient I/O + deadline, pinned output)"
# A three-job batch under a deterministic fault plan: one job panics, one
# survives a transient read fault through the retry, and one is hung by an
# injected 120 s delay but cut at its 2 s deadline.  The sorted JSONL must
# match the pinned expectation byte for byte — failures included; panic
# spew goes to stderr, which is discarded.  See docs/robustness.md.
timeout 120 ./target/release/rapids-serve --jobs ci/fault_smoke.jobs.jsonl \
    --workers 2 --sort \
    --fault-plan 'job-run@c432=panic,blif-read@tiny_mux#0=io,job-run@c499=delay:120000' \
    2> /dev/null | diff - ci/expected_fault_smoke.jsonl

echo "==> verify smoke (SAT equivalence jobs through rapids-serve, pinned output)"
# Four verify jobs: a known-equivalent pair (tiny_mux vs its DeMorgan
# rewrite), a known-mutated pair (single AND→OR corruption, refuted with a
# simulator-confirmed counterexample), a self-pair, and a resubmission of
# the first pair served from the verdict cache.  The sorted JSONL must
# match the pinned expectation byte for byte.  See docs/equivalence.md.
timeout 120 ./target/release/rapids-serve --jobs ci/verify_smoke.jobs.jsonl \
    --workers 2 --sort 2> /dev/null | diff - ci/expected_verify_smoke.jsonl

echo "==> result-store smoke (crash-safe disk cache: second run is compute-free)"
# Two identical runs against a fresh --store directory: the second must be
# answered entirely from disk (zero optimizer runs, every job a disk hit)
# with byte-identical output.  The stderr stats line is part of the
# contract; see docs/robustness.md.
rm -rf target/ci_store
timeout 120 ./target/release/rapids-serve --fast --sort alu2 c432 \
    --store target/ci_store > target/ci_store_first.jsonl 2> /dev/null
timeout 120 ./target/release/rapids-serve --fast --sort alu2 c432 \
    --store target/ci_store > target/ci_store_second.jsonl 2> target/ci_store_second.stderr
diff target/ci_store_first.jsonl target/ci_store_second.jsonl
grep -q 'store: optimizer_runs=0 disk_hits=2 recovered_records=2 dropped_corrupt_records=0' \
    target/ci_store_second.stderr

echo "==> observability smoke (trace validity + metrics pin, byte-identical output)"
# The serve smoke rerun with the tracer and metrics dump armed: stdout must
# stay byte-identical to the same pinned expectation (observability never
# perturbs reports), the Chrome trace must parse and contain the expected
# span hierarchy, and the deterministic `counters` section of the metrics
# snapshot must match the committed pin exactly (histograms carry wall-clock
# and are excluded).  See docs/observability.md.
timeout 120 ./target/release/rapids-serve --fast --workers 2 --sort \
    alu2 c432 c499 --blif-dir ci/fixtures \
    --trace-out target/ci_trace.json --metrics-out target/ci_metrics.json \
    2> /dev/null | diff - ci/expected_serve_smoke.jsonl
./target/release/trace_check target/ci_trace.json \
    serve.job serve.resolve serve.run stage.sta sta.full optimizer.pass > /dev/null
sed -n '/^  "counters": {$/,/^  },$/p' target/ci_metrics.json \
    | diff - ci/expected_metrics_smoke.json

echo "==> telemetry smoke (manual-tick series + detectors, pinned journal)"
# The fault smoke rerun with the telemetry plane armed in manual mode: one
# tick per job at the post-job quiescent point, a CUSUM on the deadline-cut
# counter (fires on the injected 120 s hang being cut), and a 0.25
# timeout-burn SLO.  stdout must stay byte-identical to the same pinned
# expectation (telemetry never perturbs reports), and the tick journal —
# stripped of the wall-clock `latency` section and the line checksums —
# must match its pin byte for byte.  One worker pins the tick order; the
# journal is removed first because a replayed journal appends.  See
# docs/observability.md.
rm -f target/ci_telemetry.jsonl
timeout 120 ./target/release/rapids-serve --jobs ci/fault_smoke.jobs.jsonl \
    --workers 1 --sort \
    --fault-plan 'job-run@c432=panic,blif-read@tiny_mux#0=io,job-run@c499=delay:120000' \
    --telemetry-s 0 --telemetry-out target/ci_telemetry.jsonl \
    --cusum serve.deadline_cuts:0.5:0:0 --slo-timeout-frac 0.25 \
    2> /dev/null | diff - ci/expected_fault_smoke.jsonl
sed -E 's/,"latency":\{[^}]*\}//; s/,"ck":"[0-9a-f]{16}"//' target/ci_telemetry.jsonl \
    | diff - ci/expected_telemetry_smoke.jsonl

echo "==> OK"
