#!/usr/bin/env bash
# Tier-1 gate plus hygiene, in fail-fast order (cheapest first).
#
# Usage: ./ci.sh
#
# Everything runs offline: external deps are vendored under vendor/
# (see vendor/README.md), so no registry access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
# No allowlist flags here: the few intentional lint exceptions are local
# #[allow]s with justifying comments at the exact sites (eq_op oracle in
# rapids-core, argument-heavy scorer in rapids-sizing, index-loop tests in
# rapids-circuits).
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --benches (compile-only; benches are excluded from tier-1 runtime)"
cargo build --benches

echo "==> cargo test -q"
cargo test -q

echo "==> OK"
