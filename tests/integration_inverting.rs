//! Property tests for legalized inverting (ES) swaps.
//!
//! Three invariants carry the feature:
//!
//! 1. **Apply/undo round-trips exactly** — an ES swap grows the network by
//!    one inverter pair and the undo pops those slots again, so the gate
//!    count, the placement overlay and the timing arrays all return to
//!    their pre-swap shape.
//! 2. **Incremental == full, bit for bit** — after every grow/shrink step
//!    the dirty-cone engine must agree exactly with a from-scratch
//!    `Sta::analyze` of the same network, and the network must stay acyclic.
//! 3. **End to end, ES mode optimizes without breaking the function** — an
//!    ES-enabled pipeline run applies at least one inverting swap on a
//!    benchmark known to profit, grows the network by exactly one inverter
//!    pair per applied swap, and passes the random-simulation equivalence
//!    safety net; decisions stay thread-count invariant.

use rapids_circuits::generators::adder::ripple_carry_adder;
use rapids_circuits::generators::alu::alu;
use rapids_circuits::generators::multiplier::array_multiplier;
use rapids_circuits::generators::parity::error_corrector;
use rapids_circuits::generators::random_logic::{random_logic, RandomLogicConfig};
use rapids_circuits::map_to_library;
use rapids_core::supergate::extract_supergates;
use rapids_core::swap::{apply_swap, undo_swap, SwapCandidate, SwapKind};
use rapids_core::symmetry::swap_candidates_in;
use rapids_core::{Optimizer, OptimizerConfig, OptimizerKind};
use rapids_flow::{CircuitSource, Pipeline, PipelineConfig};
use rapids_netlist::{GateId, Network};
use rapids_placement::{place, Placement, PlacerConfig};
use rapids_sim::check_equivalence_random;
use rapids_timing::{IncrementalSta, TimingConfig};

/// One small representative per suite generator family.
fn generator_zoo() -> Vec<(&'static str, Network)> {
    let control = random_logic(
        &RandomLogicConfig { xor_fraction: 0.1, ..RandomLogicConfig::with_gates(120) },
        42,
    );
    vec![
        ("alu", map_to_library(&alu(8), 4).unwrap()),
        ("multiplier", map_to_library(&array_multiplier(6), 4).unwrap()),
        ("error_corrector", map_to_library(&error_corrector(4, 16), 4).unwrap()),
        ("control", map_to_library(&control, 4).unwrap()),
        ("adder", map_to_library(&ripple_carry_adder(12), 4).unwrap()),
    ]
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Every inverting candidate of every non-trivial supergate.
fn inverting_candidates(network: &Network) -> Vec<SwapCandidate> {
    let extraction = extract_supergates(network);
    let mut candidates = Vec::new();
    for sg in extraction.supergates().iter().filter(|sg| !sg.is_trivial()) {
        candidates.extend(
            swap_candidates_in(network, sg, true)
                .into_iter()
                .filter(|c| c.kind == SwapKind::Inverting),
        );
    }
    candidates
}

/// Hosts the inverters of an applied ES swap the way the optimizer does:
/// co-located with each inverter's driver.
fn host_inverters(network: &Network, placement: &mut Placement, inverters: &[GateId]) {
    for &inv in inverters {
        let driver = network.fanins(inv)[0];
        placement.host_at(inv, placement.position(driver));
    }
}

#[test]
fn inverting_apply_undo_stays_bit_identical_to_full_sta() {
    let timing = TimingConfig::default();
    for (family, mut network) in generator_zoo() {
        let reference = network.clone();
        let library = rapids_celllib::Library::standard_035um();
        let mut placement = place(&network, &library, &PlacerConfig::fast(), 5);
        let baseline_slots = network.gate_count();
        let mut inc = IncrementalSta::new(&network, &library, &placement, &timing);
        inc.enable_self_check(0x1234, 4);
        let candidates = inverting_candidates(&network);
        if candidates.is_empty() {
            continue;
        }
        let mut rng = Lcg(0xe5 ^ family.len() as u64);
        for step in 0..12 {
            let candidate = candidates[rng.next() as usize % candidates.len()];
            let Ok(applied) = apply_swap(&mut network, &candidate) else {
                continue;
            };
            assert_eq!(applied.inserted_inverters().len(), 2, "{family}: ES inserts a pair");
            host_inverters(&network, &mut placement, applied.inserted_inverters());
            let mut touched = vec![candidate.pin_a.gate, candidate.pin_b.gate];
            touched.extend_from_slice(applied.inserted_inverters());
            inc.update(&network, &library, &placement, &touched);
            assert!(
                network.check_consistency().is_ok(),
                "{family}: network inconsistent after ES apply {step}"
            );
            inc.verify_matches_full(&network, &library, &placement).unwrap_or_else(|e| {
                panic!("{family}: incremental drift after ES apply {step}: {e}")
            });
            assert!(
                check_equivalence_random(&reference, &network, 128, step as u64).is_equivalent(),
                "{family}: ES swap {step} broke the function"
            );

            // Undo: the inverter slots must pop, the overlay must retire,
            // and the (full-fallback) timing must again match from scratch.
            undo_swap(&mut network, &applied).unwrap();
            placement.truncate_slots(network.gate_count());
            inc.update(&network, &library, &placement, &touched);
            assert_eq!(
                network.gate_count(),
                baseline_slots,
                "{family}: slot count must round-trip through apply/undo"
            );
            assert_eq!(placement.len(), baseline_slots);
            assert!(network.check_consistency().is_ok());
            inc.verify_matches_full(&network, &library, &placement).unwrap_or_else(|e| {
                panic!("{family}: incremental drift after ES undo {step}: {e}")
            });
            assert!(
                check_equivalence_random(&reference, &network, 128, !(step as u64)).is_equivalent(),
                "{family}: ES undo {step} broke the function"
            );
        }
    }
}

#[test]
fn undo_journal_round_trip_restores_state_exactly() {
    // Hand-built net with single-fanout nets only, so apply/undo cannot even
    // permute fan-out list order and the restored state is exactly the
    // original: f = AND(a, INV(b)) has one ES candidate (Lemma 7).
    use rapids_netlist::{GateType, NetworkBuilder};
    let mut b = NetworkBuilder::new("es_roundtrip");
    b.inputs(["a", "b"]);
    b.gate("nb", GateType::Inv, &["b"]);
    b.gate("f", GateType::And, &["a", "nb"]);
    b.output("f");
    let mut network = b.finish().unwrap();
    let library = rapids_celllib::Library::standard_035um();
    let mut placement = place(&network, &library, &PlacerConfig::fast(), 11);
    let timing = TimingConfig::default();
    let mut inc = IncrementalSta::new(&network, &library, &placement, &timing);
    let gates: Vec<GateId> = network.iter_live().collect();
    let original_arrivals: Vec<f64> =
        gates.iter().map(|&g| inc.report().arrival(g).worst()).collect();
    let original_required: Vec<f64> = gates.iter().map(|&g| inc.report().required(g)).collect();
    let original_delay = inc.report().critical_delay_ns();
    let slots = network.gate_count();
    let placement_len = placement.len();

    let candidates = inverting_candidates(&network);
    assert_eq!(candidates.len(), 1, "the mixed-polarity pair is the only ES candidate");
    let applied = apply_swap(&mut network, &candidates[0]).unwrap();
    host_inverters(&network, &mut placement, applied.inserted_inverters());
    let mut touched = vec![candidates[0].pin_a.gate, candidates[0].pin_b.gate];
    touched.extend_from_slice(applied.inserted_inverters());
    inc.update(&network, &library, &placement, &touched);
    assert_eq!(network.gate_count(), slots + 2);
    assert_eq!(placement.len(), placement_len + 2);
    assert!(
        inc.report().critical_delay_ns() > original_delay,
        "two extra inverters on a two-gate path must cost delay"
    );

    undo_swap(&mut network, &applied).unwrap();
    placement.truncate_slots(network.gate_count());
    inc.update(&network, &library, &placement, &touched);

    // Gate count, overlay and every timing array are restored exactly.
    assert_eq!(network.gate_count(), slots);
    assert_eq!(placement.len(), placement_len);
    for (i, &g) in gates.iter().enumerate() {
        assert_eq!(inc.report().arrival(g).worst(), original_arrivals[i], "arrival at {g}");
        assert_eq!(inc.report().required(g), original_required[i], "required at {g}");
    }
    assert_eq!(inc.report().critical_delay_ns(), original_delay);
    inc.verify_matches_full(&network, &library, &placement).unwrap();
}

#[test]
fn es_enabled_optimizer_applies_swaps_and_preserves_function() {
    // x3 profits reliably from ES swaps under the fast flow configuration.
    let pipeline =
        Pipeline::new(PipelineConfig { verify_equivalence: true, ..PipelineConfig::fast() });
    let design = pipeline.prepare(CircuitSource::suite("x3")).unwrap();
    let mut network = design.network.clone();
    let config = OptimizerConfig {
        include_inverting_swaps: true,
        ..OptimizerConfig::fast(OptimizerKind::Rewiring)
    };
    let outcome = Optimizer::new(config).optimize(
        &mut network,
        &design.library,
        &design.placement,
        &pipeline.config().timing,
    );
    assert!(
        outcome.inverting_swaps_applied >= 1,
        "x3 must apply at least one ES swap, got {outcome:?}"
    );
    assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
    assert_eq!(
        network.live_gate_count(),
        design.network.live_gate_count() + 2 * outcome.inverting_swaps_applied,
        "every applied ES swap adds exactly one inverter pair"
    );
    assert!(network.check_consistency().is_ok(), "optimized network must stay acyclic");
    assert!(check_equivalence_random(&design.network, &network, 1024, 77).is_equivalent());

    // The outcome hands back the overlay coordinates of every surviving
    // inverter, so the grown network stays timeable: extend a copy of the
    // caller's placement and a full STA must reproduce the reported delay.
    assert_eq!(outcome.hosted_inverters.len(), 2 * outcome.inverting_swaps_applied);
    let mut grown = design.placement.clone();
    for &(gate, at) in &outcome.hosted_inverters {
        grown.host_at(gate, at);
    }
    assert_eq!(grown.len(), network.gate_count());
    let report =
        rapids_timing::Sta::analyze(&network, &design.library, &grown, &pipeline.config().timing);
    // Equality only to float noise: candidate probing permutes fan-out list
    // order (`swap_remove`), so a fresh analysis can fold the star/Elmore
    // sums of untouched nets in a different order than the per-pass
    // incremental state — the final-ulp caveat of the `threads` contract.
    assert!(
        (report.critical_delay_ns() - outcome.final_delay_ns).abs() < 1e-9,
        "re-timing the grown network on the grown placement must reproduce the outcome: \
         {} vs {}",
        report.critical_delay_ns(),
        outcome.final_delay_ns
    );
}

#[test]
fn es_decisions_are_thread_count_invariant() {
    let pipeline = Pipeline::fast();
    let design = pipeline.prepare(CircuitSource::suite("c432")).unwrap();
    let run = |threads: usize| {
        let mut network = design.network.clone();
        let config = OptimizerConfig {
            include_inverting_swaps: true,
            threads,
            ..OptimizerConfig::fast(OptimizerKind::Rewiring)
        };
        let outcome = Optimizer::new(config).optimize(
            &mut network,
            &design.library,
            &design.placement,
            &pipeline.config().timing,
        );
        let wiring: Vec<Vec<GateId>> =
            network.iter_live().map(|g| network.fanins(g).to_vec()).collect();
        (outcome.swaps_applied, outcome.inverting_swaps_applied, wiring)
    };
    let sequential = run(1);
    let threaded = run(8);
    assert_eq!(
        (sequential.0, sequential.1),
        (threaded.0, threaded.1),
        "swap decisions must match across thread counts"
    );
    assert_eq!(sequential.2, threaded.2, "final wiring must match across thread counts");
}

/// Full-suite ES validation: every one of the 19 suite benchmarks, optimized
/// with inverting swaps enabled, must stay acyclic and functionally
/// equivalent, and must grow by exactly one inverter pair per applied swap.
/// Ignored by default (it runs the whole suite); `ci.sh`'s ES smoke covers
/// three rows on every commit, and this runs via
/// `cargo test --release -- --ignored` when touching the swap machinery.
#[test]
#[ignore = "whole-suite run; use --release -- --ignored"]
fn es_mode_stays_equivalent_on_the_whole_suite() {
    let pipeline =
        Pipeline::new(PipelineConfig { verify_equivalence: true, ..PipelineConfig::fast() });
    let mut designs_with_es = 0usize;
    for name in rapids_circuits::suite_names() {
        let design = pipeline.prepare(CircuitSource::suite(name)).unwrap();
        let mut network = design.network.clone();
        let config = OptimizerConfig {
            include_inverting_swaps: true,
            ..OptimizerConfig::fast(OptimizerKind::Rewiring)
        };
        let outcome = Optimizer::new(config).optimize(
            &mut network,
            &design.library,
            &design.placement,
            &pipeline.config().timing,
        );
        assert!(network.check_consistency().is_ok(), "{name}: network must stay acyclic");
        assert!(
            check_equivalence_random(&design.network, &network, 512, 0xE5).is_equivalent(),
            "{name}: ES-enabled optimization broke the function"
        );
        assert_eq!(
            network.live_gate_count(),
            design.network.live_gate_count() + 2 * outcome.inverting_swaps_applied,
            "{name}: inverter bookkeeping mismatch"
        );
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9, "{name}");
        designs_with_es += (outcome.inverting_swaps_applied > 0) as usize;
    }
    assert!(designs_with_es >= 5, "ES swaps should fire on a good share of the suite");
}
