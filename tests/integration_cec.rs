//! Adversarial tests for the SAT-based combinational equivalence checker
//! (`rapids-cec`).
//!
//! Three angles of attack:
//!
//! 1. **Mutation campaign** — every generator family is corrupted with
//!    random single-gate mutations (kind flip, input swap, polarity flip);
//!    a function-changing mutant MUST come back `NotEquivalent` with a
//!    counterexample the plain simulator confirms, and a benign mutant
//!    (`EquivalentProven`) is cross-checked exhaustively so no mutant can
//!    escape through a bogus UNSAT proof.
//! 2. **CEC vs simulation on real optimizer output** — seeded gsg / GS /
//!    gsg+GS runs (with ES swaps) over suite designs; the prover and the
//!    random-vector oracle must never disagree in the equivalent direction.
//! 3. **Pipeline safety net** — `SafetyNet::Sat` must produce
//!    `equivalence_proven` reports end to end.
//!
//! The full 19-design acceptance sweep is `#[ignore]`d (run with
//! `cargo test --release --test integration_cec -- --ignored`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapids_cec::{check_equivalence, CecConfig, CecResult};
use rapids_circuits::generators::alu::alu;
use rapids_circuits::generators::multiplier::array_multiplier;
use rapids_circuits::generators::parity::error_corrector;
use rapids_circuits::generators::random_logic::{random_logic, RandomLogicConfig};
use rapids_circuits::{map_to_library, suite_names};
use rapids_core::OptimizerKind;
use rapids_flow::{CircuitSource, Pipeline, PipelineConfig, SafetyNet};
use rapids_netlist::{GateId, GateType, Network, PinRef};
use rapids_sim::{check_equivalence_exhaustive, check_equivalence_random, Simulator};

// ---------------------------------------------------------------------------
// Mutation machinery
// ---------------------------------------------------------------------------

/// One mapped, smallish representative per generator family.  Input counts
/// stay ≤ 16 so benign mutants can be cross-checked *exhaustively*.
fn families() -> Vec<(&'static str, Network)> {
    let raw = vec![
        ("alu", alu(4)),
        ("multiplier", array_multiplier(4)),
        ("error-corrector", error_corrector(2, 5)),
        (
            "random-logic",
            random_logic(
                &RandomLogicConfig {
                    inputs: 12,
                    outputs: 8,
                    gates: 90,
                    xor_fraction: 0.25,
                    inverter_fraction: 0.15,
                    max_fanin: 4,
                    locality: 12.0,
                },
                0xFA_CE,
            ),
        ),
    ];
    raw.into_iter()
        .map(|(name, net)| {
            let mapped = map_to_library(&net, 4).expect("family maps cleanly");
            assert!(mapped.inputs().len() <= 16, "{name} must stay exhaustively checkable");
            (name, mapped)
        })
        .collect()
}

fn pick<T: Copy>(items: &[T], rng: &mut StdRng) -> T {
    items[rng.gen::<u64>() as usize % items.len()]
}

/// Applies one random single-gate corruption to a clone of `base`.  Returns
/// `None` when the drawn mutation is inapplicable (e.g. it would create a
/// combinational cycle); the campaign loop just redraws.
fn mutate(base: &Network, rng: &mut StdRng) -> Option<(Network, &'static str)> {
    let mut net = base.clone();
    let logic: Vec<GateId> = net.iter_logic().collect();
    if logic.is_empty() {
        return None;
    }
    match rng.gen::<u64>() % 3 {
        // Kind flip: replace the gate's function with a different one of the
        // same arity.
        0 => {
            let g = pick(&logic, rng);
            let arity = net.fanins(g).len();
            let current = net.gate(g).gtype;
            let candidates: Vec<GateType> = [
                GateType::Buf,
                GateType::Inv,
                GateType::And,
                GateType::Or,
                GateType::Xor,
                GateType::Nand,
                GateType::Nor,
                GateType::Xnor,
            ]
            .into_iter()
            .filter(|&t| t != current && t.accepts_fanin_count(arity))
            .collect();
            if candidates.is_empty() {
                return None;
            }
            let flipped = pick(&candidates, rng);
            net.set_gate_type(g, flipped).ok()?;
            Some((net, "kind-flip"))
        }
        // Input swap: exchange the drivers of two pins (possibly on two
        // different gates — a mis-wire, the fault rewiring could introduce).
        1 => {
            let mut pins = Vec::new();
            for &g in &logic {
                for p in 0..net.fanins(g).len() {
                    pins.push(PinRef::new(g, p));
                }
            }
            if pins.len() < 2 {
                return None;
            }
            let a = pick(&pins, rng);
            let b = pick(&pins, rng);
            let da = net.fanins(a.gate)[a.index];
            let db = net.fanins(b.gate)[b.index];
            if da == db {
                return None;
            }
            // Reject swaps whose new edges db→a.gate / da→b.gate would close
            // a combinational cycle.
            if net.reaches(a.gate, db) || net.reaches(b.gate, da) {
                return None;
            }
            net.swap_pin_drivers(a, b).ok()?;
            Some((net, "input-swap"))
        }
        // Polarity flip: invert the gate's output (AND→NAND, XOR→XNOR, …).
        _ => {
            let g = pick(&logic, rng);
            let current = net.gate(g).gtype;
            if current.is_source() {
                return None;
            }
            net.set_gate_type(g, current.inverted_form()).ok()?;
            Some((net, "polarity-flip"))
        }
    }
}

/// Runs the kill-or-cross-check protocol for one family.  Every CEC `SAT`
/// answer must replay on the simulator; every CEC `UNSAT` answer must
/// survive an exhaustive simulation cross-check (an exhaustive mismatch
/// after a "proof" would be an escaped mutant — the one unforgivable bug).
fn run_campaign(name: &str, reference: &Network, seed: u64, target_kills: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut killed = 0usize;
    let mut benign = 0usize;
    let mut attempts = 0usize;
    let sim_ref = Simulator::new(reference);
    while killed < target_kills {
        attempts += 1;
        assert!(
            attempts < 64 * target_kills,
            "{name}: only {killed} mutants killed in {attempts} attempts"
        );
        let Some((mutant, op)) = mutate(reference, &mut rng) else { continue };
        match check_equivalence(reference, &mutant, &CecConfig::default()) {
            CecResult::NotEquivalent(cex) => {
                // The counterexample must replay on the independent simulator.
                let ya = sim_ref.simulate_bools(reference, &cex.inputs);
                let yb = Simulator::new(&mutant).simulate_bools(&mutant, &cex.inputs);
                assert_eq!(
                    ya[cex.output_index],
                    cex.output_a,
                    "{name}/{op}: reference output mismatch replaying {}",
                    cex.input_bits()
                );
                assert_eq!(
                    yb[cex.output_index],
                    cex.output_b,
                    "{name}/{op}: mutant output mismatch replaying {}",
                    cex.input_bits()
                );
                assert_ne!(
                    ya[cex.output_index], yb[cex.output_index],
                    "{name}/{op}: counterexample does not distinguish the networks"
                );
                killed += 1;
            }
            CecResult::EquivalentProven => {
                // A benign mutation (symmetric-pin swap, dead logic…).  The
                // proof must agree with ground truth: zero escaped mutants.
                benign += 1;
                assert!(
                    check_equivalence_exhaustive(reference, &mutant).is_equivalent(),
                    "{name}/{op}: ESCAPED MUTANT — CEC proved UNSAT but exhaustive \
                     simulation found a difference"
                );
            }
            other => panic!("{name}/{op}: unexpected CEC outcome {other:?}"),
        }
    }
    // Sanity: the campaign actually exercised the SAT path heavily.
    assert_eq!(killed, target_kills, "{name}: campaign under-ran ({benign} benign)");
}

#[test]
fn mutation_campaign_alu() {
    let fams = families();
    run_campaign(fams[0].0, &fams[0].1, 0xA1, 12);
}

#[test]
fn mutation_campaign_multiplier() {
    let fams = families();
    run_campaign(fams[1].0, &fams[1].1, 0xB2, 12);
}

#[test]
fn mutation_campaign_error_corrector() {
    let fams = families();
    run_campaign(fams[2].0, &fams[2].1, 0xC3, 12);
}

#[test]
fn mutation_campaign_random_logic() {
    let fams = families();
    run_campaign(fams[3].0, &fams[3].1, 0xD4, 12);
}

// ---------------------------------------------------------------------------
// CEC vs simulation on real optimizer output
// ---------------------------------------------------------------------------

/// Optimizes `name` with `kind` (ES swaps on) and requires (a) a SAT proof
/// of equivalence and (b) agreement with the random-vector oracle.  The two
/// must never disagree in the equivalent direction.
fn optimize_and_prove(name: &str, kind: OptimizerKind) {
    let mut config = PipelineConfig { seed: 17, ..PipelineConfig::fast() };
    config.optimizer.include_inverting_swaps = true;
    let pipeline = Pipeline::new(config);
    let design = pipeline.prepare(CircuitSource::suite(name)).unwrap();
    let report = pipeline.optimize(&design, kind).unwrap();

    let cec = check_equivalence(&design.network, &report.network, &CecConfig::default());
    assert!(
        matches!(cec, CecResult::EquivalentProven),
        "{name}/{kind}: optimizer output not proven equivalent: {cec:?}"
    );
    assert!(
        check_equivalence_random(&design.network, &report.network, 2048, 0x5EED).is_equivalent(),
        "{name}/{kind}: CEC proved UNSAT but random simulation disagrees"
    );
}

#[test]
fn cec_agrees_with_simulation_gsg() {
    optimize_and_prove("alu2", OptimizerKind::Rewiring);
}

#[test]
fn cec_agrees_with_simulation_gs() {
    optimize_and_prove("alu2", OptimizerKind::Sizing);
}

#[test]
fn cec_agrees_with_simulation_combined() {
    optimize_and_prove("c432", OptimizerKind::Combined);
}

#[test]
fn cec_agrees_with_simulation_xor_heavy() {
    optimize_and_prove("c499", OptimizerKind::Combined);
}

// ---------------------------------------------------------------------------
// Pipeline SafetyNet::Sat
// ---------------------------------------------------------------------------

#[test]
fn sat_safety_net_proves_equivalence_end_to_end() {
    let mut config = PipelineConfig {
        seed: 17,
        verify_equivalence: true,
        safety_net: SafetyNet::Sat,
        ..PipelineConfig::fast()
    };
    config.optimizer.include_inverting_swaps = true;
    let pipeline = Pipeline::new(config);
    let report = pipeline.run(CircuitSource::suite("alu2")).unwrap();
    assert!(report.equivalence_verified, "safety net did not run");
    assert!(report.equivalence_proven, "SAT net ran but did not prove equivalence");
}

#[test]
fn simulation_safety_net_does_not_claim_proof() {
    let pipeline = Pipeline::new(PipelineConfig {
        seed: 17,
        verify_equivalence: true,
        safety_net: SafetyNet::Simulation,
        ..PipelineConfig::fast()
    });
    let report = pipeline.run(CircuitSource::suite("alu2")).unwrap();
    assert!(report.equivalence_verified);
    assert!(!report.equivalence_proven, "simulation must not be reported as a proof");
}

// ---------------------------------------------------------------------------
// Full-suite acceptance sweep (release-mode, run explicitly)
// ---------------------------------------------------------------------------

/// Acceptance criterion: CEC proves UNSAT for every design in the 19-entry
/// Table 1 suite after the full gsg+GS optimization with ES swaps.
#[test]
#[ignore = "whole-suite proof sweep; run with --release -- --ignored"]
fn cec_proves_full_suite_after_combined_es() {
    let mut config = PipelineConfig { seed: 17, ..PipelineConfig::fast() };
    config.optimizer.include_inverting_swaps = true;
    let pipeline = Pipeline::new(config);
    for name in suite_names() {
        let design = pipeline.prepare(CircuitSource::suite(name)).unwrap();
        let report = pipeline.optimize(&design, OptimizerKind::Combined).unwrap();
        let (result, stats) = rapids_cec::check_equivalence_with_stats(
            &design.network,
            &report.network,
            &CecConfig::default(),
        );
        assert!(
            matches!(result, CecResult::EquivalentProven),
            "{name}: not proven ({result:?}; {stats:?})"
        );
        println!(
            "{name}: proven ({} dag nodes, {} solved pairs, {} conflicts)",
            stats.dag_nodes, stats.solved_pairs, stats.conflicts
        );
    }
}
