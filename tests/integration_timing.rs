//! Integration of placement and timing: the post-placement delay model
//! behaves physically sensibly on generated benchmarks, which is what gives
//! the optimizers something real to chase.

use rapids_celllib::Library;
use rapids_circuits::benchmark;
use rapids_placement::{place, CongestionMap, PlacerConfig};
use rapids_timing::{Sta, TimingConfig};

#[test]
fn wire_resistivity_increases_post_placement_delay() {
    let network = benchmark("c432").unwrap();
    let library = Library::standard_035um();
    let placement = place(&network, &library, &PlacerConfig::fast(), 23);
    let base = Sta::analyze(&network, &library, &placement, &TimingConfig::default());
    let resistive = Sta::analyze(
        &network,
        &library,
        &placement,
        &TimingConfig {
            unit_resistance_kohm_per_cm: 2.4 * 10.0,
            unit_capacitance_pf_per_cm: 2.0 * 10.0,
            ..TimingConfig::default()
        },
    );
    assert!(resistive.critical_delay_ns() > base.critical_delay_ns());
}

#[test]
fn better_placement_effort_does_not_hurt_wirelength() {
    let network = benchmark("alu2").unwrap();
    let library = Library::standard_035um();
    let quick = place(&network, &library, &PlacerConfig::fast(), 3);
    let thorough = place(
        &network,
        &library,
        &PlacerConfig { moves_per_gate: 80, ..PlacerConfig::default() },
        3,
    );
    let quick_hpwl = quick.total_hpwl_um(&network);
    let thorough_hpwl = thorough.total_hpwl_um(&network);
    assert!(
        thorough_hpwl <= quick_hpwl * 1.05,
        "more annealing effort should not make wire length much worse: {thorough_hpwl} vs {quick_hpwl}"
    );
}

#[test]
fn critical_path_is_a_connected_input_to_output_path() {
    let network = benchmark("c1908").unwrap();
    let library = Library::standard_035um();
    let placement = place(&network, &library, &PlacerConfig::fast(), 23);
    let report = Sta::analyze(&network, &library, &placement, &TimingConfig::default());
    let path = Sta::critical_path(&network, &report);
    assert!(path.len() >= 3);
    for pair in path.windows(2) {
        assert!(
            network.fanins(pair[1]).contains(&pair[0]),
            "critical path must follow fanin edges"
        );
    }
    assert!(network.gate(path[0]).gtype.is_source());
    assert!(network.drives_output(*path.last().unwrap()));
}

#[test]
fn congestion_map_tracks_placement() {
    let network = benchmark("c432").unwrap();
    let library = Library::standard_035um();
    let placement = place(&network, &library, &PlacerConfig::fast(), 23);
    let map = CongestionMap::build(&network, &placement, 8, 8);
    assert!(map.peak_demand() > 0.0);
    assert!(map.peak_demand() >= map.average_demand());
}
