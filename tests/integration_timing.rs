//! Integration of placement and timing: the post-placement delay model
//! behaves physically sensibly on generated benchmarks, which is what gives
//! the optimizers something real to chase.  Placement and STA both run
//! through the [`Pipeline`] front half ([`Pipeline::prepare`]).

use rapids_flow::{CircuitSource, Pipeline, PipelineConfig};
use rapids_placement::{CongestionMap, PlacerConfig};
use rapids_timing::{Sta, TimingConfig};

fn fast_pipeline_with_seed(seed: u64) -> Pipeline {
    Pipeline::new(PipelineConfig { seed, ..PipelineConfig::fast() })
}

#[test]
fn wire_resistivity_increases_post_placement_delay() {
    let pipeline = fast_pipeline_with_seed(23);
    let design = pipeline.prepare(CircuitSource::suite("c432")).unwrap();
    // Re-time the *same* placement with 10× more resistive interconnect.
    let resistive = Sta::analyze(
        &design.network,
        &design.library,
        &design.placement,
        &TimingConfig {
            unit_resistance_kohm_per_cm: 2.4 * 10.0,
            unit_capacitance_pf_per_cm: 2.0 * 10.0,
            ..TimingConfig::default()
        },
    );
    assert!(resistive.critical_delay_ns() > design.initial_delay_ns());
}

#[test]
fn better_placement_effort_does_not_hurt_wirelength() {
    let quick = fast_pipeline_with_seed(3).prepare(CircuitSource::suite("alu2")).unwrap();
    let thorough = Pipeline::new(PipelineConfig {
        placer: PlacerConfig { moves_per_gate: 80, ..PlacerConfig::default() },
        seed: 3,
        ..PipelineConfig::default()
    })
    .prepare(CircuitSource::suite("alu2"))
    .unwrap();
    let quick_hpwl = quick.placement.total_hpwl_um(&quick.network);
    let thorough_hpwl = thorough.placement.total_hpwl_um(&thorough.network);
    assert!(
        thorough_hpwl <= quick_hpwl * 1.05,
        "more annealing effort should not make wire length much worse: {thorough_hpwl} vs {quick_hpwl}"
    );
}

#[test]
fn critical_path_is_a_connected_input_to_output_path() {
    let design = fast_pipeline_with_seed(23).prepare(CircuitSource::suite("c1908")).unwrap();
    let path = Sta::critical_path(&design.network, &design.initial_timing);
    assert!(path.len() >= 3);
    for pair in path.windows(2) {
        assert!(
            design.network.fanins(pair[1]).contains(&pair[0]),
            "critical path must follow fanin edges"
        );
    }
    assert!(design.network.gate(path[0]).gtype.is_source());
    assert!(design.network.drives_output(*path.last().unwrap()));
}

#[test]
fn congestion_map_tracks_placement() {
    let design = fast_pipeline_with_seed(23).prepare(CircuitSource::suite("c432")).unwrap();
    let map = CongestionMap::build(&design.network, &design.placement, 8, 8);
    assert!(map.peak_demand() > 0.0);
    assert!(map.peak_demand() >= map.average_demand());
}
