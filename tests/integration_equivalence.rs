//! End-to-end functional-safety tests: every optimizer must leave the
//! benchmark functions bit-identical.

use rapids_celllib::Library;
use rapids_circuits::benchmark;
use rapids_core::{Optimizer, OptimizerConfig, OptimizerKind};
use rapids_placement::{place, PlacerConfig};
use rapids_sim::{check_equivalence_random, SignatureTable};
use rapids_timing::TimingConfig;

fn optimize_and_check(name: &str, kind: OptimizerKind) {
    let reference = benchmark(name).unwrap();
    let library = Library::standard_035um();
    let placement = place(&reference, &library, &PlacerConfig::fast(), 17);
    let mut network = reference.clone();
    let outcome = Optimizer::new(OptimizerConfig::fast(kind)).optimize(
        &mut network,
        &library,
        &placement,
        &TimingConfig::default(),
    );
    assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9, "{name}/{kind}");
    assert!(
        check_equivalence_random(&reference, &network, 2048, 0xBEEF).is_equivalent(),
        "{name}/{kind} broke functionality"
    );
    // Signature cross-check with a different seed.
    let sigs = SignatureTable::new(&reference, 512, 99);
    assert_eq!(
        sigs.output_signatures(&reference),
        sigs.output_signatures(&network),
        "{name}/{kind} output signatures diverged"
    );
}

#[test]
fn rewiring_preserves_alu2() {
    optimize_and_check("alu2", OptimizerKind::Rewiring);
}

#[test]
fn rewiring_preserves_c499() {
    optimize_and_check("c499", OptimizerKind::Rewiring);
}

#[test]
fn sizing_preserves_c432() {
    optimize_and_check("c432", OptimizerKind::Sizing);
}

#[test]
fn combined_preserves_c432() {
    optimize_and_check("c432", OptimizerKind::Combined);
}

#[test]
fn combined_preserves_c1908() {
    optimize_and_check("c1908", OptimizerKind::Combined);
}
