//! End-to-end functional-safety tests: every optimizer must leave the
//! benchmark functions bit-identical.  The flow runs through the unified
//! [`Pipeline`] with its equivalence safety net enabled, and the result is
//! re-checked here with independent seeds and the signature table.

use rapids_core::OptimizerKind;
use rapids_flow::{CircuitSource, Pipeline, PipelineConfig};
use rapids_sim::{check_equivalence_random, SignatureTable};

fn optimize_and_check(name: &str, kind: OptimizerKind) {
    let pipeline = Pipeline::new(PipelineConfig {
        seed: 17,
        verify_equivalence: true,
        ..PipelineConfig::fast()
    });
    let design = pipeline.prepare(CircuitSource::suite(name)).unwrap();
    let reference = design.network.clone();
    let report = pipeline.optimize(&design, kind).unwrap();

    assert!(
        report.outcome.final_delay_ns <= report.outcome.initial_delay_ns + 1e-9,
        "{name}/{kind}"
    );
    assert!(report.equivalence_verified, "{name}/{kind} skipped the safety net");
    assert!(
        check_equivalence_random(&reference, &report.network, 2048, 0xBEEF).is_equivalent(),
        "{name}/{kind} broke functionality"
    );
    // Signature cross-check with a different seed.
    let sigs = SignatureTable::new(&reference, 512, 99);
    assert_eq!(
        sigs.output_signatures(&reference),
        sigs.output_signatures(&report.network),
        "{name}/{kind} output signatures diverged"
    );
}

#[test]
fn rewiring_preserves_alu2() {
    optimize_and_check("alu2", OptimizerKind::Rewiring);
}

#[test]
fn rewiring_preserves_c499() {
    optimize_and_check("c499", OptimizerKind::Rewiring);
}

#[test]
fn sizing_preserves_c432() {
    optimize_and_check("c432", OptimizerKind::Sizing);
}

#[test]
fn combined_preserves_c432() {
    optimize_and_check("c432", OptimizerKind::Combined);
}

#[test]
fn combined_preserves_c1908() {
    optimize_and_check("c1908", OptimizerKind::Combined);
}
