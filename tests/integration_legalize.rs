//! Integration suite of the legalization subsystem (`rapids-legalize`):
//! the pipeline's legalize stage, the optimizer's ES free-slot nudging and
//! their determinism guarantees, exercised end to end through the
//! [`Pipeline`] on the Table 1 designs.
//!
//! The headline property — the acceptance bar of the subsystem — is that
//! the placement the flow hands back is **overlap-free on every suite
//! design, with and without inverting (ES) swaps**, while decisions stay
//! thread-count invariant and the disabled mode stays bit-identical (the
//! latter is pinned by the CI QoR smokes).

use rapids_core::supergate::extract_supergates;
use rapids_core::swap::{apply_swap, undo_swap};
use rapids_core::symmetry::swap_candidates;
use rapids_core::OptimizerKind;
use rapids_flow::circuits::suite_names;
use rapids_flow::legalize::{LegalizeConfig, RowModel};
use rapids_flow::placement::gate_width_sites;
use rapids_flow::{CircuitSource, Pipeline, PipelineConfig};

fn legalized_config(es: bool) -> PipelineConfig {
    let mut config = PipelineConfig::fast();
    config.legalize = LegalizeConfig::enabled();
    config.optimizer.include_inverting_swaps = es;
    config
}

/// Overlap-freedom on the full 19-design suite, with and without ES swaps:
/// the prepared (legalized + refined) placement passes `assert_legal`, the
/// legalizer left nothing unplaced, every nudge found a free slot, and the
/// grown placement after rewiring is still legal.  Max displacement is
/// bounded by a conservative fraction of the die perimeter — legalization
/// resolves overlaps locally, it does not teleport cells.
#[test]
fn whole_suite_stays_overlap_free_with_and_without_es() {
    for es in [false, true] {
        let pipeline = Pipeline::new(legalized_config(es));
        for name in suite_names() {
            let design = pipeline
                .prepare(CircuitSource::suite(name))
                .unwrap_or_else(|e| panic!("prepare {name}: {e}"));
            design
                .placement
                .check_legal(&design.network, &design.library)
                .unwrap_or_else(|v| panic!("{name} (es={es}): prepared placement is illegal: {v}"));
            let legalization = design.legalization.expect("stage enabled");
            assert_eq!(legalization.legalize.unplaced_gates, 0, "{name}: unplaced gates");
            let region = design.placement.region();
            assert!(
                legalization.max_displacement_um() <= (region.width_um + region.height_um) / 2.0,
                "{name} (es={es}): max displacement {} not local on a {}x{} die",
                legalization.max_displacement_um(),
                region.width_um,
                region.height_um
            );
            if let Some(refine) = legalization.refine {
                assert!(refine.delay_after_ns <= refine.delay_before_ns + 1e-9, "{name}");
            }

            let report = pipeline
                .optimize(&design, OptimizerKind::Rewiring)
                .unwrap_or_else(|e| panic!("optimize {name}: {e}"));
            assert_eq!(report.outcome.nudge_fallbacks, 0, "{name} (es={es}): nudge fell back");
            let grown = report.grown_placement(&design.placement);
            grown
                .check_legal(&report.network, &design.library)
                .unwrap_or_else(|v| panic!("{name} (es={es}): grown placement is illegal: {v}"));
            if !es {
                assert_eq!(report.outcome.inverting_swaps_applied, 0);
            }
        }
    }
}

/// Decisions (and the nudged inverter coordinates) are identical for every
/// thread count, with legalization and ES swaps enabled.
#[test]
fn legalized_es_flow_is_thread_count_invariant() {
    for name in ["c432", "c1908"] {
        let run = |threads: usize| {
            let mut config = legalized_config(true);
            config.threads = threads;
            config.optimizer.threads = threads;
            let pipeline = Pipeline::new(config);
            let design = pipeline.prepare(CircuitSource::suite(name)).unwrap();
            let report = pipeline.optimize(&design, OptimizerKind::Rewiring).unwrap();
            let wiring: Vec<Vec<rapids_flow::netlist::GateId>> =
                report.network.iter_live().map(|g| report.network.fanins(g).to_vec()).collect();
            (
                report.outcome.final_delay_ns,
                report.outcome.swaps_applied,
                report.outcome.inverting_swaps_applied,
                report.outcome.hosted_inverters.clone(),
                wiring,
            )
        };
        let sequential = run(1);
        let threaded = run(8);
        assert_eq!(
            sequential.0.to_bits(),
            threaded.0.to_bits(),
            "{name}: delay must be bit-identical"
        );
        assert_eq!(sequential.1, threaded.1, "{name}: swap count");
        assert_eq!(sequential.2, threaded.2, "{name}: ES swap count");
        for (a, b) in sequential.3.iter().zip(&threaded.3) {
            assert_eq!(a.0, b.0, "{name}: hosted inverter ids");
            assert_eq!(
                (a.1.x_um.to_bits(), a.1.y_um.to_bits()),
                (b.1.x_um.to_bits(), b.1.y_um.to_bits()),
                "{name}: nudged coordinates must be bit-identical"
            );
        }
        assert_eq!(sequential.3.len(), threaded.3.len(), "{name}: hosted inverter count");
        assert_eq!(sequential.4, threaded.4, "{name}: final wiring");
    }
}

/// A nudged inverter pair round-trips apply → undo *exactly*: the network's
/// slot count, the placement table and the row model's occupancy all return
/// to their pre-apply state.
#[test]
fn nudged_inverter_placement_round_trips_apply_undo_exactly() {
    let pipeline = Pipeline::new(legalized_config(true));
    let design = pipeline.prepare(CircuitSource::suite("c432")).unwrap();
    let mut network = design.network.clone();
    let mut placement = design.placement.clone();
    let mut rows = design.rows.clone().expect("stage enabled");

    // Find an inverting candidate anywhere in the design.
    let extraction = extract_supergates(&network);
    let candidate = extraction
        .supergates()
        .iter()
        .flat_map(|sg| swap_candidates(sg, true))
        .find(|c| c.kind == rapids_core::SwapKind::Inverting)
        .expect("c432 has inverting candidates");

    let slots_before = placement.len();
    let rows_before = rows.clone();
    let positions_before: Vec<_> = network.iter_live().map(|g| placement.position(g)).collect();

    // Apply, nudge both inverters into free slots (the accept-path policy).
    let applied = apply_swap(&mut network, &candidate).unwrap();
    assert_eq!(applied.inserted_inverters().len(), 2);
    for &inv in applied.inserted_inverters() {
        let driver = network.fanins(inv)[0];
        let width = gate_width_sites(&network, &design.library, inv);
        let hosted = rows
            .nudge_occupy(inv, placement.position(driver), width)
            .expect("free slots exist on the c432 die");
        placement.host_at(inv, hosted);
        assert!(
            placement.position(driver).manhattan_distance_um(&hosted) > 0.0,
            "the nudge must not stack on the driver"
        );
    }
    assert_eq!(placement.len(), slots_before + 2);
    assert_ne!(rows, rows_before);

    // Undo: pop the inverters, release their slots, retire the overlay.
    undo_swap(&mut network, &applied).unwrap();
    for &inv in applied.inserted_inverters() {
        assert!(rows.release(inv), "each nudged inverter held a slot");
    }
    placement.truncate_slots(network.gate_count());

    assert_eq!(placement.len(), slots_before);
    assert_eq!(rows, rows_before, "row occupancy must round-trip exactly");
    assert_eq!(network.gate_count(), design.network.gate_count());
    for (g, before) in design.network.iter_live().zip(&positions_before) {
        assert_eq!(placement.position(g), *before);
    }
}

/// The legalize stage is reproducible run over run (same seed ⇒ the same
/// legal placement, displacement report and refined delay), and disabling
/// it leaves the classic flow untouched.
#[test]
fn legalize_stage_is_deterministic_and_opt_in() {
    let run = || {
        let pipeline = Pipeline::new(legalized_config(true));
        let design = pipeline.prepare(CircuitSource::suite("alu2")).unwrap();
        let coords: Vec<(u64, u64)> = design
            .network
            .iter_live()
            .map(|g| {
                let p = design.placement.position(g);
                (p.x_um.to_bits(), p.y_um.to_bits())
            })
            .collect();
        (design.legalization.unwrap(), coords)
    };
    assert_eq!(run(), run());

    // Opt-in: the default config must not even build a row model.
    let plain = Pipeline::fast().prepare(CircuitSource::suite("alu2")).unwrap();
    assert!(plain.legalization.is_none() && plain.rows.is_none());
}

/// The legalized ES flow keeps the equivalence safety net green end to end
/// (which also runs the placement-legality assertion inside `optimize`),
/// and the three optimizer kinds share the legalized placement.
#[test]
fn legalized_comparison_verifies_equivalence_and_shares_the_placement() {
    let mut config = legalized_config(true);
    config.verify_equivalence = true;
    config.verification_vectors = 256;
    let comparison =
        Pipeline::new(config).compare_optimizers(CircuitSource::suite("c1908")).unwrap();
    assert!(comparison.legalization.is_some());
    for kind in [OptimizerKind::Rewiring, OptimizerKind::Sizing, OptimizerKind::Combined] {
        let report = comparison.report(kind);
        assert!(report.equivalence_verified);
        assert!(report.outcome.final_delay_ns <= comparison.initial_delay_ns + 1e-9);
    }
    // The shared placement is the legalized one: rebuilding the row model
    // from it succeeds (i.e. it is legal) and the grown networks stay legal.
    let rows = RowModel::build(
        &comparison.rewiring.network,
        &rapids_flow::celllib::Library::standard_035um(),
        &comparison.grown_placement(OptimizerKind::Rewiring),
    );
    assert!(rows.occupied_gates() >= comparison.gate_count);
}
