//! Integration coverage for the `rapids-serve` batch service: worker-count
//! invariance of the streamed JSONL (byte-identical after the canonical
//! sort), byte-identity of serve reports against direct `Pipeline` runs,
//! cache hits served without recompute (run-count probe), poisoned-job
//! isolation, and BLIF round-tripping of post-ES grown networks.

use rapids_flow::netlist::blif;
use rapids_flow::{CircuitSource, Pipeline, PipelineConfig};
use rapids_serve::report::canonical_sort;
use rapids_serve::{BatchServer, DesignQor, Engine, Job, JobOutcome, JobReport, JobStatus};

fn fast_server(workers: usize) -> BatchServer {
    BatchServer::new(Engine::new(PipelineConfig::fast()), workers)
}

/// A tiny valid BLIF design submitted as inline text alongside the suite.
const INLINE_BLIF: &str = "\
.model inline_mux
.inputs s a b
.outputs f
.gate inv ns s
.gate nand ta s a
.gate nand tb ns b
.gate nand f ta tb
.end
";

fn mixed_jobs(config: &PipelineConfig) -> Vec<Job> {
    let mut jobs = vec![
        Job::suite("c432", config),
        Job::suite("alu2", config),
        Job::suite("c499", config),
        Job::blif_text("inline_mux", INLINE_BLIF, config),
    ];
    // A duplicated design exercises the in-batch cache path too.
    jobs.push(Job::suite("c432", config));
    jobs
}

fn collect_lines(server: &BatchServer, jobs: &[Job]) -> Vec<String> {
    let mut lines = Vec::new();
    server.run_streaming(jobs, |report| lines.push(report.to_jsonl()));
    lines
}

#[test]
fn jsonl_output_is_worker_count_invariant_modulo_order() {
    // Fresh servers so the two runs share nothing (no warm cache).
    let one = fast_server(1);
    let eight = fast_server(8);
    let jobs_one = mixed_jobs(one.engine().base_config());
    let jobs_eight = mixed_jobs(eight.engine().base_config());

    let sequential = collect_lines(&one, &jobs_one);
    let concurrent = collect_lines(&eight, &jobs_eight);
    assert_eq!(sequential.len(), concurrent.len());

    // Modulo line order the streams agree; after the canonical sort they
    // are byte-identical — the `--sort` contract.
    let mut sequential_sorted = sequential.clone();
    let mut concurrent_sorted = concurrent;
    canonical_sort(&mut sequential_sorted);
    canonical_sort(&mut concurrent_sorted);
    assert_eq!(sequential_sorted.join("\n"), concurrent_sorted.join("\n"));

    // With one worker the stream order is exactly submission order.
    let names: Vec<String> = jobs_one.iter().map(|j| j.name.clone()).collect();
    let streamed: Vec<String> = sequential
        .iter()
        .map(|l| l.split("\"job\":\"").nth(1).unwrap().split('"').next().unwrap().to_string())
        .collect();
    assert_eq!(streamed, names);
}

#[test]
fn serve_reports_are_byte_identical_to_direct_pipeline_runs() {
    let server = fast_server(4);
    let config = server.engine().base_config().clone();
    let jobs =
        vec![Job::suite("c432", &config), Job::blif_text("inline_mux", INLINE_BLIF, &config)];
    let mut lines = collect_lines(&server, &jobs);
    canonical_sort(&mut lines);

    // Recompute both designs directly through the Pipeline and serialize
    // with the same projection: the service must add nothing and lose
    // nothing relative to a first-party flow run.
    let pipeline = Pipeline::new(config.clone());
    let mut expected: Vec<String> = vec![
        JobReport {
            job: "c432".into(),
            outcome: JobOutcome::Done(DesignQor::from_comparison(
                &pipeline.compare_optimizers(CircuitSource::suite("c432")).unwrap(),
            )),
            cached: false,
        }
        .to_jsonl(),
        JobReport {
            job: "inline_mux".into(),
            outcome: JobOutcome::Done(DesignQor::from_comparison(
                &pipeline
                    .compare_optimizers(CircuitSource::Blif {
                        text: INLINE_BLIF.to_string(),
                        max_fanin: config.map_max_fanin,
                    })
                    .unwrap(),
            )),
            cached: false,
        }
        .to_jsonl(),
    ];
    canonical_sort(&mut expected);
    assert_eq!(lines.join("\n"), expected.join("\n"));
}

#[test]
fn cache_hit_replays_identical_reports_without_recompute() {
    let server = fast_server(2);
    let config = server.engine().base_config().clone();
    let jobs = vec![Job::suite("c432", &config), Job::suite("alu2", &config)];

    let mut first = collect_lines(&server, &jobs);
    let runs_after_first = server.engine().optimizer_runs();
    assert_eq!(runs_after_first, 2, "two distinct designs, two optimizer runs");

    let mut second = Vec::new();
    let summary = server.run_streaming(&jobs, |report| {
        assert!(report.cached, "resubmission must be served from the cache");
        second.push(report.to_jsonl());
    });
    // The probe: no further optimizer executions happened, and the replay
    // is byte-identical to the original batch.
    assert_eq!(server.engine().optimizer_runs(), runs_after_first);
    assert_eq!(summary.cached, jobs.len());
    canonical_sort(&mut first);
    canonical_sort(&mut second);
    assert_eq!(first.join("\n"), second.join("\n"));
}

#[test]
fn poisoned_jobs_fail_while_the_rest_of_the_batch_completes() {
    let server = fast_server(3);
    let config = server.engine().base_config().clone();
    let jobs = vec![
        Job::suite("c432", &config),
        Job::blif_text("poison", "this is not a netlist", &config),
        Job::blif_file("ghost", "/no/such/path.blif", &config),
        Job::suite("alu2", &config),
    ];
    let mut lines = Vec::new();
    let summary = server.run_streaming(&jobs, |report| lines.push(report.to_jsonl()));
    assert_eq!(summary.done, 2);
    assert_eq!(summary.failed, 2);
    assert_eq!(
        summary.statuses,
        vec![JobStatus::Done, JobStatus::Failed, JobStatus::Failed, JobStatus::Done]
    );

    canonical_sort(&mut lines);
    let failed: Vec<&String> =
        lines.iter().filter(|l| l.contains("\"status\":\"failed\"")).collect();
    assert_eq!(failed.len(), 2);
    assert!(failed.iter().any(|l| l.contains("\"job\":\"poison\"") && l.contains("parse error")));
    assert!(failed.iter().any(|l| l.contains("\"job\":\"ghost\"") && l.contains("path.blif")));
    assert_eq!(lines.iter().filter(|l| l.contains("\"status\":\"done\"")).count(), 2);
}

/// Satellite of the BLIF file work: a post-ES *grown* network (live
/// inverter pairs plus possibly tomb-stoned slots from rolled-back passes)
/// must survive write→parse with its structure intact.
#[test]
fn post_es_grown_network_round_trips_through_blif() {
    // x3 profits reliably from ES swaps under the fast flow configuration
    // (same choice as integration_inverting.rs).
    let mut config = PipelineConfig::fast();
    config.optimizer.include_inverting_swaps = true;
    let report = Pipeline::new(config)
        .run_kind(CircuitSource::suite("x3"), rapids_core::OptimizerKind::Rewiring)
        .unwrap();
    assert!(
        report.outcome.inverting_swaps_applied > 0,
        "x3 must apply ES swaps for this test to bite"
    );

    let text = blif::write_string(&report.network);
    let back = blif::parse_string(&text).unwrap();
    assert_eq!(back.logic_gate_count(), report.network.logic_gate_count());
    assert_eq!(back.inputs().len(), report.network.inputs().len());
    assert_eq!(back.outputs().len(), report.network.outputs().len());
    assert!(back.check_consistency().is_ok());
    // Fixpoint: serializing the parsed network reproduces the text.
    assert_eq!(text, blif::write_string(&back));
}
