//! Cross-crate integration tests: supergate extraction against the BDD and
//! simulation oracles on generated benchmark circuits.  Circuits are
//! resolved and mapped through the [`Pipeline`] front end.

use rapids_bdd::{
    are_equivalence_symmetric, are_nonequivalence_symmetric, build_output_bdds, Manager,
};
use rapids_circuits::generators::adder::ripple_carry_adder;
use rapids_circuits::generators::parity::parity_tree;
use rapids_core::supergate::{extract_supergates, PinClass};
use rapids_core::symmetry::{classify_pair, swap_candidates, PairSymmetry};
use rapids_core::SupergateStatistics;
use rapids_flow::{CircuitSource, Pipeline};

/// Every structurally detected swappable pair of a small mapped adder is
/// confirmed as functionally symmetric by the BDD cofactor oracle, checked
/// against the supergate-output sub-function (the paper detects symmetries
/// of internal sub-functions, not of the primary outputs).
#[test]
fn structural_symmetries_confirmed_by_bdd_cofactors() {
    let network = Pipeline::fast()
        .build_network(CircuitSource::Unmapped { network: ripple_carry_adder(4), max_fanin: 4 })
        .unwrap();
    let extraction = extract_supergates(&network);
    let mut manager = Manager::new();
    let bdds = build_output_bdds(&mut manager, &network);

    let mut checked_pairs = 0usize;
    for sg in extraction.supergates() {
        let root_function = bdds.gate_functions[&sg.root];
        for i in 0..sg.leaves.len() {
            for j in (i + 1)..sg.leaves.len() {
                let a = sg.leaves[i];
                let b = sg.leaves[j];
                // The oracle works on primary-input variables; restrict the
                // check to leaves driven directly by primary inputs.
                let (Some(&va), Some(&vb)) =
                    (bdds.input_vars.get(&a.driver), bdds.input_vars.get(&b.driver))
                else {
                    continue;
                };
                if a.driver == b.driver {
                    continue;
                }
                let Some(symmetry) = classify_pair(sg, a.pin, b.pin) else {
                    continue;
                };
                match symmetry {
                    PairSymmetry::NonInverting => {
                        assert!(
                            are_nonequivalence_symmetric(&mut manager, root_function, va, vb),
                            "NES claim refuted for {:?} / {:?} in supergate {}",
                            a.pin,
                            b.pin,
                            sg.root
                        );
                    }
                    PairSymmetry::Inverting => {
                        assert!(
                            are_equivalence_symmetric(&mut manager, root_function, va, vb),
                            "ES claim refuted for {:?} / {:?} in supergate {}",
                            a.pin,
                            b.pin,
                            sg.root
                        );
                    }
                    PairSymmetry::Both => {
                        assert!(are_nonequivalence_symmetric(&mut manager, root_function, va, vb));
                        assert!(are_equivalence_symmetric(&mut manager, root_function, va, vb));
                    }
                }
                checked_pairs += 1;
            }
        }
    }
    assert!(checked_pairs > 5, "expected to verify several symmetric pairs, got {checked_pairs}");
}

/// The extraction partitions every suite circuit: each logic gate belongs to
/// exactly one supergate and the coverage statistics are internally
/// consistent.
#[test]
fn extraction_partitions_suite_circuits() {
    let pipeline = Pipeline::fast();
    for name in ["alu2", "c499", "c1908"] {
        let network = pipeline.build_network(CircuitSource::suite(name)).unwrap();
        let extraction = extract_supergates(&network);
        let member_total: usize = extraction.supergates().iter().map(|sg| sg.size()).sum();
        assert_eq!(member_total, network.logic_gate_count(), "{name}");
        let stats = SupergateStatistics::compute(&network, &extraction);
        assert!(stats.coverage_percent() > 5.0, "{name}: coverage suspiciously low");
        assert!(stats.coverage_percent() <= 100.0);
        assert!(stats.largest_inputs >= 3, "{name}");
    }
}

/// XOR-dominated circuits are covered by XOR supergates whose pins are all
/// mutually swappable (Lemma 8), giving quadratically many candidates.
#[test]
fn parity_trees_form_large_xor_supergates() {
    let network = Pipeline::fast()
        .build_network(CircuitSource::Unmapped { network: parity_tree(16), max_fanin: 2 })
        .unwrap();
    let extraction = extract_supergates(&network);
    let largest = extraction.supergates().iter().max_by_key(|sg| sg.input_count()).unwrap();
    assert!(largest.input_count() >= 16, "XOR tree should collapse into one supergate");
    assert!(largest.leaves.iter().all(|l| matches!(l.class, PinClass::Xor { .. })));
    let candidates = swap_candidates(largest, false);
    let n = largest.input_count();
    assert_eq!(candidates.len(), n * (n - 1) / 2);
}
