//! Full-flow integration: the Table 1 harness (which runs on
//! `rapids_flow::Pipeline::compare_optimizers`) produces internally
//! consistent rows and the combined optimizer behaves like the paper claims
//! (it is at least as good as the better of its two ingredients on most
//! circuits, and never worse than doing nothing).  Direct Pipeline-API
//! coverage lives in `integration_pipeline.rs`.

use rapids_bench::table1::{format_table, run_benchmark, run_suite, FlowConfig};

#[test]
fn smoke_suite_rows_are_consistent() {
    let config = FlowConfig::fast();
    let results = run_suite(&["alu2", "c432"], &config);
    assert_eq!(results.len(), 2);
    for r in &results {
        assert!(r.initial_delay_ns > 0.0, "{}", r.name);
        assert!(r.gate_count > 100, "{}", r.name);
        assert!(r.gsg_percent >= 0.0 && r.gsg_percent < 100.0, "{}", r.name);
        assert!(r.gs_percent >= 0.0 && r.gs_percent < 100.0, "{}", r.name);
        assert!(r.combined_percent >= 0.0 && r.combined_percent < 100.0, "{}", r.name);
        assert!(r.coverage_percent > 0.0 && r.coverage_percent <= 100.0, "{}", r.name);
        assert!(r.largest_inputs >= 2, "{}", r.name);
        assert!(r.gsg_cpu_s >= 0.0 && r.gs_cpu_s >= 0.0 && r.combined_cpu_s >= 0.0);
    }
    let table = format_table(&results);
    assert!(table.contains("alu2") && table.contains("ave."));
}

#[test]
fn rewiring_leaves_gate_count_and_area_untouched() {
    let config = FlowConfig::fast();
    let result = run_benchmark("c499", &config).unwrap();
    // gsg adds no gates and changes no sizes, so its area delta is zero by
    // construction; the paper reports area changes only for GS and gsg+GS.
    assert!(result.gsg_swaps < result.gate_count);
    // Sizing may trade area either way but stays within the library's 4
    // drive strengths, so the swing is bounded.
    assert!(result.gs_area_percent.abs() < 120.0);
    assert!(result.combined_area_percent.abs() < 120.0);
}

#[test]
fn unknown_benchmark_is_skipped_gracefully() {
    let config = FlowConfig::fast();
    let results = run_suite(&["c432", "made_up_name"], &config);
    assert_eq!(results.len(), 1);
}
