//! Integration coverage for the fault-tolerant serving tier: the on-disk
//! result store (cache-warm restarts, byte-identity, torn-tail recovery),
//! per-job deadlines under injected hangs, deterministic fault injection
//! (panics and transient I/O faults), and the interplay of all three with
//! the batch server — the acceptance scenarios of the robustness PR.

use rapids_flow::PipelineConfig;
use rapids_serve::report::canonical_sort;
use rapids_serve::{BatchServer, Engine, FaultPlan, Job, JobOutcome, ResultStore};

fn batch(config: &PipelineConfig) -> Vec<Job> {
    vec![Job::suite("c432", config), Job::suite("alu2", config), Job::suite("c499", config)]
}

fn sorted_lines(server: &BatchServer, jobs: &[Job]) -> Vec<String> {
    let mut lines = Vec::new();
    server.run_streaming(jobs, |report| lines.push(report.to_jsonl()));
    canonical_sort(&mut lines);
    lines
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rapids_robustness_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The store acceptance scenario: run a batch with `--store`, "restart"
/// (a fresh engine warm only from disk), run the identical batch again —
/// zero optimizer runs, every job a disk hit, and the sorted JSONL output
/// byte-identical to the first run's.
#[test]
fn store_restart_replays_the_batch_without_recompute() {
    let dir = temp_dir("restart");
    let config = PipelineConfig::fast();

    let first = {
        let engine = Engine::new(config.clone()).with_store(ResultStore::open(&dir).unwrap());
        let server = BatchServer::new(engine, 2);
        let jobs = batch(server.engine().base_config());
        let lines = sorted_lines(&server, &jobs);
        assert_eq!(server.engine().optimizer_runs(), 3);
        assert_eq!(server.engine().store().unwrap().len(), 3);
        lines
    };

    let engine = Engine::new(config).with_store(ResultStore::open(&dir).unwrap());
    let server = BatchServer::new(engine, 2);
    assert_eq!(server.engine().recovered_records(), 3);
    let jobs = batch(server.engine().base_config());
    let second = sorted_lines(&server, &jobs);

    assert_eq!(server.engine().optimizer_runs(), 0, "restart must be fully cache-warm");
    assert_eq!(server.engine().disk_hits(), 3);
    assert_eq!(second, first, "disk-served replies must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn-tail recovery end to end: chop the store log mid-way through its
/// final record (a simulated crash during an append), reopen — the prior
/// records survive, the torn one is dropped — and re-running the batch
/// recomputes exactly the dropped design, converging on byte-identical
/// output.
#[test]
fn torn_store_tail_recovers_and_reconverges() {
    let dir = temp_dir("torn");
    let config = PipelineConfig::fast();

    let (first, store_path, full_len, last_record_start) = {
        let engine = Engine::new(config.clone()).with_store(ResultStore::open(&dir).unwrap());
        let server = BatchServer::new(engine, 1);
        let jobs = batch(server.engine().base_config());
        let lines = sorted_lines(&server, &jobs);
        let store = server.engine().store().unwrap();
        let path = store.path().to_path_buf();
        let full = std::fs::metadata(&path).unwrap().len();
        // Locate the last record's start by replaying lengths: each record
        // is 20 header bytes + payload + 8 checksum bytes.
        let bytes = std::fs::read(&path).unwrap();
        let mut pos = 0usize;
        let mut last_start = 0usize;
        while pos < bytes.len() {
            last_start = pos;
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 20 + len + 8;
        }
        (lines, path, full, last_start)
    };

    // Crash simulation: the final append only half-landed.
    let cut = last_record_start as u64 + (full_len - last_record_start as u64) / 2;
    let file = std::fs::OpenOptions::new().write(true).open(&store_path).unwrap();
    file.set_len(cut).unwrap();
    drop(file);

    let engine = Engine::new(config).with_store(ResultStore::open(&dir).unwrap());
    let server = BatchServer::new(engine, 1);
    assert_eq!(server.engine().recovered_records(), 2, "the two whole records survive");
    assert_eq!(server.engine().dropped_corrupt_records(), 1);
    let jobs = batch(server.engine().base_config());
    let second = sorted_lines(&server, &jobs);
    assert_eq!(server.engine().optimizer_runs(), 1, "only the torn design recomputes");
    assert_eq!(server.engine().disk_hits(), 2);
    assert_eq!(second, first, "recovery must reconverge on byte-identical output");
    // The store is whole again for the next restart.
    assert_eq!(ResultStore::open(&dir).unwrap().recovered_records(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The deadline acceptance scenario: one job in the batch is hung by an
/// injected 60 s delay but carries a 1 s deadline — it is cut at the
/// deadline and reported `failed` with a timeout message, while every
/// *other* job's report line is byte-identical to a fault-free run.
#[test]
fn deadline_cuts_hung_job_and_leaves_the_rest_byte_identical() {
    let config = PipelineConfig::fast();

    let clean = {
        let server = BatchServer::new(Engine::new(config.clone()), 2);
        let jobs = batch(server.engine().base_config());
        sorted_lines(&server, &jobs)
    };

    let engine =
        Engine::new(config).with_fault_plan(FaultPlan::parse("job-run@alu2=delay:60000").unwrap());
    let server = BatchServer::new(engine, 2);
    let mut jobs = batch(server.engine().base_config());
    jobs[1].timeout_s = Some(1.0);
    let start = std::time::Instant::now();
    let faulted = sorted_lines(&server, &jobs);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "the watchdog must cut the 60 s hang"
    );

    let hung: Vec<&String> = faulted.iter().filter(|l| l.contains("\"job\":\"alu2\"")).collect();
    assert_eq!(hung.len(), 1);
    assert!(
        hung[0].contains("\"status\":\"failed\"") && hung[0].contains("timeout after 1s"),
        "{}",
        hung[0]
    );
    let rest = |lines: &[String]| -> Vec<String> {
        lines.iter().filter(|l| !l.contains("\"job\":\"alu2\"")).cloned().collect()
    };
    assert_eq!(rest(&faulted), rest(&clean), "unfaulted jobs are unperturbed");
}

/// Deterministic chaos in one batch: a panic on one job and a transient
/// read fault on another — the panic is contained to its job, the
/// transient fault is absorbed by the retry, and the whole batch still
/// answers every job.
#[test]
fn injected_panic_and_transient_fault_are_contained_to_their_jobs() {
    let blif = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/fixtures/tiny_mux.blif");
    let plan = FaultPlan::parse("job-run@c432=panic,blif-read@tiny_mux#0=io").unwrap();
    let engine = Engine::new(PipelineConfig::fast()).with_fault_plan(plan);
    let server = BatchServer::new(engine, 2);
    let config = server.engine().base_config().clone();
    let jobs = vec![
        Job::suite("c432", &config),
        Job::blif_file("tiny_mux", blif, &config),
        Job::suite("c499", &config),
    ];
    let mut outcomes = std::collections::HashMap::new();
    server.run_streaming(&jobs, |report| {
        outcomes.insert(report.job.clone(), report.outcome.clone());
    });
    assert!(matches!(&outcomes["c432"],
        JobOutcome::Failed(msg) if msg.contains("optimizer panicked")
            && msg.contains("injected panic at job-run for `c432`")));
    assert!(
        matches!(&outcomes["tiny_mux"], JobOutcome::Done(_)),
        "the retry absorbs the transient read fault: {:?}",
        outcomes["tiny_mux"]
    );
    assert!(matches!(&outcomes["c499"], JobOutcome::Done(_)));
}
