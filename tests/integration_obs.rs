//! Integration coverage for the `rapids-obs` observability layer: the
//! determinism contract (worker- and thread-count invariance of the
//! deterministic counters, byte-identical reports with tracing on),
//! trace-event well-formedness and per-thread nesting on a real batch,
//! and the zero-overhead guarantee of a disabled tracer.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use rapids_flow::{CircuitSource, Pipeline, PipelineConfig};
use rapids_serve::report::canonical_sort;
use rapids_serve::{BatchServer, Engine, Job};

/// A counting wrapper around the system allocator so the zero-overhead
/// test can assert "no allocations happened here" for real.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The tracer, global registry and allocation counter are process-global;
/// every test in this binary serializes on this lock so none observes
/// another's state.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn batch_jobs(config: &PipelineConfig) -> Vec<Job> {
    ["c432", "alu2", "c499"].iter().map(|name| Job::suite(*name, config)).collect()
}

/// The per-engine decision counters are a pure function of the batch, not
/// of how many workers raced through it.
#[test]
fn deterministic_counters_are_worker_count_invariant() {
    let _guard = obs_lock();
    rapids_obs::trace::disable();

    let run = |workers: usize| {
        let server = BatchServer::new(Engine::new(PipelineConfig::fast()), workers);
        let jobs = batch_jobs(server.engine().base_config());
        let mut lines = Vec::new();
        server.run_streaming(&jobs, |report| lines.push(report.to_jsonl()));
        canonical_sort(&mut lines);
        (
            server.engine().optimizer_runs(),
            server.engine().resolutions(),
            server.engine().cache_hits(),
            lines,
        )
    };

    let single = run(1);
    let pooled = run(8);
    assert_eq!(single, pooled, "worker count must not change any deterministic counter or line");
    assert_eq!(single.0, 3, "three distinct designs, three optimizer runs");
}

/// The STA retime counters reported per run (`outcome.sta`) are invariant
/// under the within-level parallelism thread count.
#[test]
fn sta_retime_counters_are_thread_count_invariant() {
    let _guard = obs_lock();
    rapids_obs::trace::disable();

    let run = |threads: usize| {
        let mut config = PipelineConfig::fast();
        config.threads = threads;
        let pipeline = Pipeline::new(config);
        let design = pipeline.prepare(CircuitSource::suite("c432")).unwrap();
        let report = pipeline.optimize(&design, rapids_core::OptimizerKind::Combined).unwrap();
        (
            report.outcome.sta.full_refreshes,
            report.outcome.sta.incremental_updates,
            report.outcome.sta.gates_retimed,
        )
    };

    let single = run(1);
    let parallel = run(8);
    assert_eq!(single, parallel, "retime work is deterministic, threads only change wall-clock");
    assert!(single.2 > 0, "a real run retimes gates");
}

/// On a three-design batch the recorded spans are well-formed (the
/// expected names appear, Chrome JSON renders) and, per thread, any two
/// spans are either nested or disjoint — never partially overlapping.
#[test]
fn trace_events_are_well_formed_and_nested() {
    let _guard = obs_lock();
    rapids_obs::trace::install();
    rapids_obs::trace::take_events(); // drop stale events from other tests

    let server = BatchServer::new(Engine::new(PipelineConfig::fast()), 2);
    let jobs = batch_jobs(server.engine().base_config());
    server.run_streaming(&jobs, |_| {});

    rapids_obs::trace::disable();
    let events = rapids_obs::trace::take_events();
    assert!(!events.is_empty());

    for required in ["serve.job", "serve.resolve", "serve.run", "stage.sta", "sta.full"] {
        assert!(
            events.iter().any(|e| e.name == required),
            "expected at least one `{required}` span, got names {:?}",
            events.iter().map(|e| e.name.as_str()).collect::<std::collections::BTreeSet<_>>()
        );
    }
    // The job span is the root: one per executed job, containing the rest.
    assert_eq!(events.iter().filter(|e| e.name == "serve.job").count(), jobs.len());

    // Nesting validity: on one thread, spans from RAII guards can only be
    // properly nested or disjoint.
    for a in &events {
        for b in &events {
            if a.tid != b.tid {
                continue;
            }
            let (a0, a1) = (a.ts_ns, a.ts_ns + a.dur_ns);
            let (b0, b1) = (b.ts_ns, b.ts_ns + b.dur_ns);
            assert!(
                !(a0 < b0 && b0 < a1 && a1 < b1),
                "partial overlap between `{}` and `{}` on tid {}",
                a.name,
                b.name,
                a.tid
            );
        }
    }

    let json = rapids_obs::trace::chrome_trace_json(&events);
    assert!(json.starts_with("{\"traceEvents\":[\n"));
    assert!(json.ends_with("]}\n"));
    assert_eq!(json.lines().count(), events.len() + 2, "one event per line");
}

/// The zero-overhead guarantee: with the tracer disabled, opening and
/// dropping spans allocates nothing, and a repeated STA sweep allocates
/// exactly the same amount each time (no hidden accumulation).
#[test]
fn disabled_tracer_adds_no_allocations() {
    let _guard = obs_lock();
    rapids_obs::trace::disable();

    // Minimum over several rounds: immune to stray harness allocations on
    // other threads, while still catching any per-span allocation (which
    // would show up in every round).
    let mut min_allocs = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..10_000 {
            let _hot = rapids_obs::span("hot.loop");
            let _owned = rapids_obs::span_owned(|| unreachable!("closure must not run"));
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        min_allocs = min_allocs.min(after - before);
    }
    assert_eq!(min_allocs, 0, "disabled spans must not allocate");

    // A timed sweep through the instrumented STA kernel: identical inputs,
    // identical allocation counts, run after run.
    let pipeline = Pipeline::fast();
    let design = pipeline.prepare(CircuitSource::suite("c432")).unwrap();
    let sweep = || {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let report = rapids_timing::Sta::analyze(
            &design.network,
            &design.library,
            &design.placement,
            &pipeline.config().timing,
        );
        assert!(report.critical_delay_ns() > 0.0);
        ALLOCATIONS.load(Ordering::SeqCst) - before
    };
    let counts: Vec<u64> = (0..5).map(|_| sweep()).collect();
    assert!(
        counts.windows(2).any(|w| w[0] == w[1]),
        "repeated sweeps should allocate identically, got {counts:?}"
    );
}

/// The telemetry extension of the zero-overhead guarantee: with no plane
/// armed, the engine's per-job tick is a single branch on a `None` — no
/// allocations — and the instrument handles it would otherwise sample
/// stay allocation-free on the hot path too.
#[test]
fn disarmed_telemetry_adds_no_allocations() {
    let _guard = obs_lock();
    rapids_obs::trace::disable();

    let engine = Engine::new(PipelineConfig::fast());
    assert!(engine.telemetry().is_none(), "no plane was armed");
    // Pre-create the handles: instrument *lookup* interns names, the hot
    // path only touches atomics.
    let counter = rapids_obs::global().counter("obs.test.telemetry_hot");
    let gauge = rapids_obs::global().gauge("obs.test.telemetry_depth");
    let histogram = rapids_obs::global().histogram("obs.test.telemetry_us");

    let mut min_allocs = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..10_000u64 {
            engine.telemetry_tick();
            counter.inc();
            gauge.set(i as i64);
            histogram.record(i);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        min_allocs = min_allocs.min(after - before);
    }
    assert_eq!(min_allocs, 0, "a disarmed telemetry tick must not allocate");
}

/// Metrics and tracing are observational only: a run with the tracer on
/// and the registry polluted produces byte-identical report lines, and
/// the cache fingerprints ignore metric state entirely.
#[test]
fn metrics_are_excluded_from_fingerprints_and_reports() {
    let _guard = obs_lock();
    rapids_obs::trace::disable();

    let quiet = Engine::new(PipelineConfig::fast());
    let baseline = quiet.execute(&Job::suite("c432", quiet.base_config()));
    assert!(baseline.is_done());

    // Pollute the global registry and turn the tracer on; none of it may
    // reach the report bytes or the cache key.
    rapids_obs::global().counter("timing.full_refreshes").add(1_000_000);
    rapids_obs::global().counter("optimizer.swaps_applied").add(999);
    rapids_obs::trace::install();

    let noisy = Engine::new(PipelineConfig::fast());
    let traced = noisy.execute(&Job::suite("c432", noisy.base_config()));
    assert!(!traced.cached);
    assert_eq!(traced.to_jsonl(), baseline.to_jsonl(), "tracing must not perturb reports");

    // Resubmission hits the cache: the (netlist, config) fingerprints are
    // blind to metric state, which kept changing above.
    let replay = noisy.execute(&Job::suite("c432", noisy.base_config()));
    assert!(replay.cached, "fingerprints must not incorporate metrics");
    assert_eq!(replay.to_jsonl(), baseline.to_jsonl());

    // The report projection carries QoR only — no metric or span fields.
    for leaked in ["metrics", "spans", "job_us", "p50", "counters"] {
        assert!(
            !baseline.to_jsonl().contains(leaked),
            "report projection must not mention `{leaked}`"
        );
    }

    rapids_obs::trace::disable();
    rapids_obs::trace::take_events();
}
