//! Integration coverage for the time-series telemetry plane
//! (`serve::telemetry` over `obs::timeseries` / `obs::detect`): the
//! manual-tick determinism contract (same workload ⇒ byte-identical
//! series and alert JSON), worker-count invariance of deterministic
//! counter series sampled at batch boundaries, CUSUM behaviour on an
//! injected latency step vs a flat series, report-byte neutrality of an
//! armed plane, and crash-safe journal replay across a torn tail.

use std::sync::{Arc, Mutex, MutexGuard};

use rapids_flow::PipelineConfig;
use rapids_obs::{CusumConfig, Sampler, SamplerConfig, SloConfig};
use rapids_serve::report::canonical_sort;
use rapids_serve::{BatchServer, Engine, FaultPlan, Job, Journal, TelemetryConfig, TelemetryPlane};

/// The global registry is process-wide; every test in this binary
/// serializes on this lock so per-tick deltas observe only its own
/// workload.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn telemetry_lock() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn suite_batch(config: &PipelineConfig, names: &[&str]) -> Vec<Job> {
    names.iter().map(|name| Job::suite(*name, config)).collect()
}

/// Series derived from wall-clock data (latency quantile tracks); every
/// other series is a pure function of the workload.
fn is_wall_clock(name: &str) -> bool {
    name.ends_with(".p50") || name.ends_with(".p99")
}

/// One manually-ticked batch under a fully armed plane; returns every
/// deterministic series window plus the alerts reply, as JSON lines.
fn armed_run() -> (Vec<String>, String) {
    let mut engine = Engine::new(PipelineConfig::fast());
    let config = TelemetryConfig {
        manual: true,
        // Repeat submissions step the cache-hit rate off zero.
        cusum: vec![CusumConfig::fixed("serve.cache_hits", 0.0, 0.0, 0.5)],
        // "Misses per job" burns against a 0.5 target: breaches while
        // every job computes, recovers once half the batch is cache hits.
        slos: vec![SloConfig {
            name: "cache-misses".to_string(),
            bad_series: "serve.optimizer_runs".to_string(),
            total_series: "serve.job_us.count".to_string(),
            target: 0.5,
        }],
        ..TelemetryConfig::default()
    };
    let plane = Arc::new(TelemetryPlane::new(engine.metrics_registry(), config));
    plane.prime();
    engine = engine.with_telemetry(Arc::clone(&plane));
    let server = BatchServer::new(engine, 1);
    let jobs = suite_batch(server.engine().base_config(), &["c432", "alu2", "c432", "c432"]);
    server.run_streaming(&jobs, |_| {});

    let mut series = Vec::new();
    for name in plane.series_names() {
        if !is_wall_clock(&name) {
            series.push(plane.series_json(&name, 0).expect("listed series exists"));
        }
    }
    (series, plane.alerts_json())
}

/// The determinism contract: the same workload, manually ticked at the
/// same quiescent points, yields byte-identical series and alert JSON —
/// alerts, SLO burn and every counter/gauge series included.
#[test]
fn manual_ticks_yield_byte_identical_series_and_alerts() {
    let _guard = telemetry_lock();
    // Warm the global registry: the measured runs must both see every
    // counter name from their first tick.
    armed_run();

    let (series_a, alerts_a) = armed_run();
    let (series_b, alerts_b) = armed_run();
    assert_eq!(series_a, series_b, "series must be byte-reproducible");
    assert_eq!(alerts_a, alerts_b, "alerts must be byte-reproducible");

    // Content sanity: ticks 0..=3 are the four jobs, the two repeat
    // submissions are cache hits, and both detector families fired.
    let cache_hits = series_a
        .iter()
        .find(|line| line.contains("\"name\":\"serve.cache_hits\""))
        .expect("cache-hit series exists");
    assert!(cache_hits.contains("\"points\":[[0,0],[1,0],[2,1],[3,1]]"), "{cache_hits}");
    assert!(alerts_a.contains("\"kind\":\"cusum\""), "{alerts_a}");
    assert!(alerts_a.contains("\"kind\":\"slo\""), "{alerts_a}");
    assert!(alerts_a.contains("\"name\":\"cache-misses\""), "{alerts_a}");
    assert!(
        alerts_a.contains("\"breached\":false"),
        "burn 2/4 recovered to the 0.5 target: {alerts_a}"
    );
}

/// Deterministic counter series sampled at batch boundaries (the
/// quiescent points the manual-tick contract names) are invariant under
/// the worker count.
#[test]
fn batch_boundary_series_are_worker_count_invariant() {
    let _guard = telemetry_lock();
    const DETERMINISTIC: [&str; 4] =
        ["serve.optimizer_runs", "serve.cache_hits", "serve.resolutions", "serve.job_us.count"];
    let run = |workers: usize| -> Vec<String> {
        let engine = Engine::new(PipelineConfig::fast());
        let sampler = Sampler::new(SamplerConfig::default());
        sampler.prime(&engine.metrics_snapshot());
        let server = BatchServer::new(engine, workers);
        let jobs = suite_batch(server.engine().base_config(), &["c432", "alu2", "c499"]);
        server.run_streaming(&jobs, |_| {});
        sampler.tick(&server.engine().metrics_snapshot());
        DETERMINISTIC
            .iter()
            .map(|name| sampler.window_json(name, 0).expect("engine series exists"))
            .collect()
    };
    let single = run(1);
    let pooled = run(8);
    assert_eq!(single, pooled, "worker count must not change a deterministic series");
    assert!(
        single[0].contains("\"points\":[[0,3]]"),
        "three distinct designs, three optimizer runs: {}",
        single[0]
    );
}

/// A CUSUM on the deadline-cut series fires exactly when an injected
/// delay fault pushes a job over its deadline, and stays silent on the
/// same batch without the fault.
#[test]
fn cusum_fires_on_an_injected_latency_step_and_stays_silent_on_flat() {
    let _guard = telemetry_lock();
    let run = |fault: bool| {
        let mut engine = Engine::new(PipelineConfig::fast());
        if fault {
            engine = engine.with_fault_plan(
                FaultPlan::parse("job-run@c499=delay:120000").expect("valid plan"),
            );
        }
        let config = TelemetryConfig {
            manual: true,
            cusum: vec![CusumConfig::fixed("serve.deadline_cuts", 0.0, 0.5, 0.0)],
            ..TelemetryConfig::default()
        };
        let plane = Arc::new(TelemetryPlane::new(engine.metrics_registry(), config));
        plane.prime();
        engine = engine.with_telemetry(Arc::clone(&plane));
        let server = BatchServer::new(engine, 1);
        let mut jobs = suite_batch(server.engine().base_config(), &["c432", "alu2", "c499"]);
        if fault {
            // The injected 120 s hang is cut by a short deadline; the
            // unfaulted run carries no deadline at all, so a slow CI box
            // cannot produce a spurious cut.
            jobs[2].timeout_s = Some(0.3);
        }
        server.run_streaming(&jobs, |_| {});
        plane.alerts()
    };

    let fired = run(true);
    assert_eq!(fired.len(), 1, "{fired:?}");
    let alert = &fired[0];
    assert_eq!(alert.kind, rapids_obs::AlertKind::Cusum);
    assert_eq!(alert.series, "serve.deadline_cuts");
    assert_eq!(alert.tick, 2, "the faulted job is the third tick");
    assert_eq!(alert.statistic, 0.5, "delta 1 over baseline 0 with drift 0.5");

    let silent = run(false);
    assert!(silent.is_empty(), "a flat series must never alarm: {silent:?}");
}

/// An armed plane is observational only: report lines are byte-identical
/// with telemetry on and off.
#[test]
fn telemetry_does_not_perturb_report_bytes() {
    let _guard = telemetry_lock();
    let run = |telemetry: bool| -> Vec<String> {
        let mut engine = Engine::new(PipelineConfig::fast());
        if telemetry {
            let config = TelemetryConfig {
                manual: true,
                cusum: vec![CusumConfig::fixed("serve.cache_hits", 0.0, 0.0, 0.5)],
                ..TelemetryConfig::default()
            };
            let plane = Arc::new(TelemetryPlane::new(engine.metrics_registry(), config));
            plane.prime();
            engine = engine.with_telemetry(plane);
        }
        let server = BatchServer::new(engine, 2);
        let jobs = suite_batch(server.engine().base_config(), &["c432", "alu2", "c499"]);
        let mut lines = Vec::new();
        server.run_streaming(&jobs, |report| lines.push(report.to_jsonl()));
        canonical_sort(&mut lines);
        lines
    };
    assert_eq!(run(false), run(true), "telemetry must not change a single report byte");
}

/// The journal written by a manually-ticked batch replays across a
/// restart, and a torn tail (a crash mid-append) is truncated, keeping
/// every whole line.
#[test]
fn telemetry_journal_survives_restart_and_truncates_a_torn_tail() {
    let _guard = telemetry_lock();
    let path = std::env::temp_dir()
        .join(format!("rapids_integration_telemetry_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    {
        let mut engine = Engine::new(PipelineConfig::fast());
        let journal = Journal::open(&path).expect("fresh journal opens");
        let config = TelemetryConfig { manual: true, ..TelemetryConfig::default() };
        let plane = TelemetryPlane::new(engine.metrics_registry(), config).with_journal(journal);
        plane.prime();
        engine = engine.with_telemetry(Arc::new(plane));
        let server = BatchServer::new(engine, 1);
        let jobs = suite_batch(server.engine().base_config(), &["c432", "alu2", "c499"]);
        server.run_streaming(&jobs, |_| {});
    }

    let full = std::fs::read(&path).expect("journal exists");
    let text = String::from_utf8(full.clone()).expect("journal is utf-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one line per manual tick");
    for (i, line) in lines.iter().enumerate() {
        assert!(line.starts_with(&format!("{{\"tick\":{i},\"counters\":{{")), "{line}");
        for section in ["\"gauges\":{", "\"latency\":{", "\"alerts\":[", "\"slo\":[", "\"ck\":\""] {
            assert!(line.contains(section), "missing {section} in {line}");
        }
    }

    // "Restart" after a clean shutdown: every line replays.
    assert_eq!(Journal::open(&path).expect("replay").recovered_lines(), 3);

    // "Crash" mid-append of the last line: the torn tail is dropped and
    // the two whole lines survive.
    std::fs::write(&path, &full[..full.len() - 7]).expect("tear the tail");
    let journal = Journal::open(&path).expect("replay after tear");
    assert_eq!(journal.recovered_lines(), 2);
    assert!(journal.dropped_tail_bytes() > 0);
    let kept = std::fs::read_to_string(&path).expect("truncated journal");
    assert_eq!(kept.lines().count(), 2);
    assert!(full.starts_with(kept.as_bytes()), "replay only truncates, never rewrites");
    let _ = std::fs::remove_file(&path);
}
