//! Seeded property tests for the levelized STA kernel contract.
//!
//! The levelized struct-of-arrays kernel behind `Sta::analyze` must be a
//! *perfect* stand-in for the pointer-chasing reference analyzer
//! (`Sta::analyze_reference`): bit-identical arrival/required/slack arrays
//! on every network shape the optimizers can produce.  These tests drive
//! one circuit per suite generator family through random drive-strength
//! streams and assert, after every step:
//!
//! * levelized-vs-scalar bit-identity of all three per-gate arrays,
//! * thread-count invariance (`threads` ∈ {1, 2, 8} produce identical
//!   reports),
//! * identity on **grown** networks (post-ES overlay slots appended by
//!   inverter insertion) and **tombstoned** networks (post-undo holes in
//!   the gate table).

use rapids_celllib::Library;
use rapids_circuits::generators::adder::ripple_carry_adder;
use rapids_circuits::generators::alu::alu;
use rapids_circuits::generators::multiplier::array_multiplier;
use rapids_circuits::generators::parity::error_corrector;
use rapids_circuits::generators::random_logic::{random_logic, RandomLogicConfig};
use rapids_circuits::map_to_library;
use rapids_netlist::{GateId, Network, PinRef};
use rapids_placement::{place, Placement, PlacerConfig};
use rapids_timing::{Sta, TimingConfig, TimingReport};

/// One small representative per suite generator family.
fn generator_zoo() -> Vec<(&'static str, Network)> {
    let control = random_logic(
        &RandomLogicConfig { xor_fraction: 0.1, ..RandomLogicConfig::with_gates(120) },
        42,
    );
    vec![
        ("alu", map_to_library(&alu(8), 4).unwrap()),
        ("multiplier", map_to_library(&array_multiplier(6), 4).unwrap()),
        ("error_corrector", map_to_library(&error_corrector(4, 16), 4).unwrap()),
        ("control", map_to_library(&control, 4).unwrap()),
        ("adder", map_to_library(&ripple_carry_adder(12), 4).unwrap()),
    ]
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn setup(network: &Network, seed: u64) -> (Placement, Library, TimingConfig) {
    let library = Library::standard_035um();
    let placement = place(network, &library, &PlacerConfig::fast(), seed);
    (placement, library, TimingConfig::default())
}

/// Full bit-identity over arrivals, requireds and slacks of the live gates,
/// plus the report-level scalars.
fn assert_reports_identical(
    family: &str,
    network: &Network,
    a: &TimingReport,
    b: &TimingReport,
    what: &str,
) {
    assert_eq!(
        a.critical_delay_ns(),
        b.critical_delay_ns(),
        "{family}/{what}: critical delay drifted"
    );
    assert_eq!(a.required_time_ns(), b.required_time_ns(), "{family}/{what}: budget drifted");
    for g in network.iter_live() {
        assert_eq!(a.arrival(g), b.arrival(g), "{family}/{what}: arrival drifted at {g}");
        assert_eq!(a.required(g), b.required(g), "{family}/{what}: required drifted at {g}");
        assert_eq!(a.slack(g), b.slack(g), "{family}/{what}: slack drifted at {g}");
    }
}

#[test]
fn levelized_matches_scalar_bit_identically_per_family() {
    for (family, mut network) in generator_zoo() {
        let (placement, library, timing) = setup(&network, 7);
        let gates: Vec<GateId> = network.iter_logic().collect();
        let mut rng = Lcg(0xfeed ^ family.len() as u64);
        // Step 0 checks the pristine mapped network; further steps perturb
        // drive strengths so the kernel sees varied delay/load landscapes.
        for step in 0..8 {
            if step > 0 {
                let g = gates[rng.next() as usize % gates.len()];
                network.gate_mut(g).size_class = (rng.next() % 4) as u8;
            }
            let reference = Sta::analyze_reference(&network, &library, &placement, &timing);
            let fast = Sta::analyze(&network, &library, &placement, &timing);
            assert_reports_identical(family, &network, &reference, &fast, "full sweep");
        }
    }
}

#[test]
fn thread_count_invariance_1_2_8() {
    for (family, network) in generator_zoo() {
        let (placement, library, timing) = setup(&network, 11);
        let one = Sta::analyze_with_threads(&network, &library, &placement, &timing, 1);
        for threads in [2, 8] {
            let t = Sta::analyze_with_threads(&network, &library, &placement, &timing, threads);
            assert_reports_identical(family, &network, &one, &t, &format!("threads={threads}"));
        }
        // And the single-thread kernel agrees with the scalar reference.
        let reference = Sta::analyze_reference(&network, &library, &placement, &timing);
        assert_reports_identical(family, &network, &reference, &one, "threads=1 vs scalar");
    }
}

#[test]
fn grown_networks_post_es_overlay_stay_identical() {
    for (family, mut network) in generator_zoo() {
        let (mut placement, library, timing) = setup(&network, 13);
        let gates: Vec<GateId> = network.iter_logic().collect();
        let mut rng = Lcg(0xE5 ^ family.len() as u64);
        // Grow the network the way applied inverting swaps do: inverters
        // inserted on logic pins, hosted on top of their drivers (overlay
        // slots past the caller placement).
        for k in 0..4 {
            let host = gates[rng.next() as usize % gates.len()];
            if network.fanins(host).is_empty() {
                continue;
            }
            let pin = rng.next() as usize % network.fanins(host).len();
            let driver = network.fanins(host)[pin];
            let inv =
                network.insert_inverter(PinRef::new(host, pin), format!("es_inv_{k}")).unwrap();
            placement.host_at(inv, placement.position(driver));
            let reference = Sta::analyze_reference(&network, &library, &placement, &timing);
            let fast = Sta::analyze(&network, &library, &placement, &timing);
            assert_reports_identical(family, &network, &reference, &fast, "grown");
        }
    }
}

#[test]
fn tombstoned_networks_post_undo_stay_identical() {
    for (family, mut network) in generator_zoo() {
        let (mut placement, library, timing) = setup(&network, 17);
        let gates: Vec<GateId> = network.iter_logic().collect();
        let mut rng = Lcg(0x70b ^ family.len() as u64);
        // Insert two inverters, then undo the *first* insertion only: its
        // slot becomes a tombstone in the middle of the live overlay range,
        // which is exactly the state a partially rolled-back ES pass leaves
        // behind.
        let mut inserted: Vec<(GateId, PinRef, GateId)> = Vec::new();
        for k in 0..2 {
            let host = gates[rng.next() as usize % gates.len()];
            if network.fanins(host).is_empty() {
                continue;
            }
            let pin = rng.next() as usize % network.fanins(host).len();
            let driver = network.fanins(host)[pin];
            let inv =
                network.insert_inverter(PinRef::new(host, pin), format!("undo_inv_{k}")).unwrap();
            placement.host_at(inv, placement.position(driver));
            inserted.push((inv, PinRef::new(host, pin), driver));
        }
        if let Some(&(inv, pin, driver)) = inserted.first() {
            // Only undo if the pin still sees this inverter (the second
            // insertion may have stacked onto the same pin).
            if network.fanins(pin.gate)[pin.index] == inv {
                network.replace_pin_driver(pin, driver).unwrap();
                assert!(network.remove_if_dangling(inv), "undone inverter must be dangling");
            }
        }
        let reference = Sta::analyze_reference(&network, &library, &placement, &timing);
        let fast = Sta::analyze(&network, &library, &placement, &timing);
        assert_reports_identical(family, &network, &reference, &fast, "tombstoned");
        let threaded = Sta::analyze_with_threads(&network, &library, &placement, &timing, 8);
        assert_reports_identical(family, &network, &reference, &threaded, "tombstoned threaded");
    }
}
