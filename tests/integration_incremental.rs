//! Seeded property tests for the incremental timing engine and the
//! thread-count determinism of the optimizers.
//!
//! The first family drives [`IncrementalSta::update`] through random
//! swap/resize sequences on one circuit per suite generator family
//! (ALU, multiplier, error-correcting, random control logic) and asserts —
//! bit for bit — that the dirty-cone state matches a from-scratch
//! `Sta::analyze` after every step.  The second family asserts that
//! `threads = 1` and `threads = 8` produce identical reports through the
//! whole pipeline.

use rapids_celllib::{DriveStrength, Library};
use rapids_circuits::generators::adder::ripple_carry_adder;
use rapids_circuits::generators::alu::alu;
use rapids_circuits::generators::multiplier::array_multiplier;
use rapids_circuits::generators::parity::error_corrector;
use rapids_circuits::generators::random_logic::{random_logic, RandomLogicConfig};
use rapids_circuits::map_to_library;
use rapids_core::supergate::extract_supergates;
use rapids_core::swap::{apply_swap, undo_swap};
use rapids_core::symmetry::swap_candidates_in;
use rapids_flow::{CircuitSource, Pipeline, PipelineConfig};
use rapids_netlist::{GateId, Network};
use rapids_placement::{place, Placement, PlacerConfig};
use rapids_timing::{IncrementalSta, Sta, TimingConfig};

/// One small representative per suite generator family.
fn generator_zoo() -> Vec<(&'static str, Network)> {
    let control = random_logic(
        &RandomLogicConfig { xor_fraction: 0.1, ..RandomLogicConfig::with_gates(120) },
        42,
    );
    vec![
        ("alu", map_to_library(&alu(8), 4).unwrap()),
        ("multiplier", map_to_library(&array_multiplier(6), 4).unwrap()),
        ("error_corrector", map_to_library(&error_corrector(4, 16), 4).unwrap()),
        ("control", map_to_library(&control, 4).unwrap()),
        ("adder", map_to_library(&ripple_carry_adder(12), 4).unwrap()),
    ]
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn setup(network: &Network, seed: u64) -> (Placement, Library, TimingConfig) {
    let library = Library::standard_035um();
    let placement = place(network, &library, &PlacerConfig::fast(), seed);
    (placement, library, TimingConfig::default())
}

#[test]
fn incremental_update_matches_full_sta_after_random_resizes() {
    let classes = [DriveStrength::X1, DriveStrength::X2, DriveStrength::X4, DriveStrength::X8];
    for (family, mut network) in generator_zoo() {
        let (placement, library, timing) = setup(&network, 5);
        let mut inc = IncrementalSta::new(&network, &library, &placement, &timing);
        let gates: Vec<GateId> = network.iter_logic().collect();
        let mut rng = Lcg(0x5eed ^ family.len() as u64);
        for step in 0..30 {
            let g = gates[rng.next() as usize % gates.len()];
            let class = classes[rng.next() as usize % classes.len()];
            network.gate_mut(g).size_class = class.size_class();
            inc.update(&network, &library, &placement, &[g]);
            let full = Sta::analyze(&network, &library, &placement, &timing);
            for &probe in &gates {
                assert_eq!(
                    inc.report().arrival(probe).worst(),
                    full.arrival(probe).worst(),
                    "{family}: arrival drift at {probe} after step {step}"
                );
                assert_eq!(
                    inc.report().required(probe),
                    full.required(probe),
                    "{family}: required drift at {probe} after step {step}"
                );
            }
            assert_eq!(
                inc.report().critical_delay_ns(),
                full.critical_delay_ns(),
                "{family}: critical delay drift after step {step}"
            );
        }
        assert!(inc.stats().incremental_updates > 0, "{family}: updates must run incrementally");
    }
}

#[test]
fn incremental_update_matches_full_sta_after_random_swap_sequences() {
    for (family, mut network) in generator_zoo() {
        let (placement, library, timing) = setup(&network, 9);
        network.refresh_topo_hint();
        let mut inc = IncrementalSta::new(&network, &library, &placement, &timing);
        let extraction = extract_supergates(&network);
        let mut candidates = Vec::new();
        for sg in extraction.supergates().iter().filter(|sg| !sg.is_trivial()) {
            candidates.extend(swap_candidates_in(&network, sg, false));
        }
        if candidates.is_empty() {
            continue;
        }
        let mut rng = Lcg(0xfeed ^ family.len() as u64);
        let mut applied_stack: Vec<rapids_core::swap::AppliedSwap> = Vec::new();
        for step in 0..24 {
            // Alternate applying new swaps and undoing old ones so the
            // engine sees both directions of every edit.
            let touched: Vec<GateId> = if step % 3 == 2 {
                match applied_stack.pop() {
                    Some(applied) => {
                        let c = *applied.candidate();
                        undo_swap(&mut network, &applied).unwrap();
                        vec![c.pin_a.gate, c.pin_b.gate]
                    }
                    None => continue,
                }
            } else {
                let candidate = candidates[rng.next() as usize % candidates.len()];
                match apply_swap(&mut network, &candidate) {
                    Ok(applied) => {
                        applied_stack.push(applied);
                        vec![candidate.pin_a.gate, candidate.pin_b.gate]
                    }
                    Err(_) => continue,
                }
            };
            inc.update(&network, &library, &placement, &touched);
            inc.verify_matches_full(&network, &library, &placement)
                .unwrap_or_else(|e| panic!("{family}: incremental drift after step {step}: {e}"));
        }
    }
}

#[test]
fn pipeline_reports_are_thread_count_invariant() {
    let run = |threads: usize| {
        let pipeline = Pipeline::new(PipelineConfig { threads, ..PipelineConfig::fast() });
        let comparison = pipeline.compare_optimizers(CircuitSource::suite("c432")).unwrap();
        let fingerprint = |report: &rapids_flow::PipelineReport| {
            (
                report.outcome.final_delay_ns,
                report.outcome.final_area_um2,
                report.outcome.swaps_applied,
                report.outcome.gates_resized,
            )
        };
        (
            fingerprint(&comparison.rewiring),
            fingerprint(&comparison.sizing),
            fingerprint(&comparison.combined),
        )
    };
    let (seq_gsg, seq_gs, seq_combined) = run(1);
    let (par_gsg, par_gs, par_combined) = run(8);
    // Sizing decisions leave no trace in the network beyond the chosen
    // classes, so GS is bit-exact across thread counts.
    assert_eq!(seq_gs, par_gs, "GS must be bit-identical across thread counts");
    // Rewiring candidate probes permute fan-out list order on the main
    // network in sequential mode but not on worker clones, so after a
    // rolled-back pass the Elmore sums can differ in the final ulp even
    // though every accepted decision is identical.  Assert decision-level
    // equality and delay/area agreement to float noise.
    for (seq, par) in [(seq_gsg, par_gsg), (seq_combined, par_combined)] {
        assert_eq!(seq.2, par.2, "swap decisions must match across thread counts");
        assert_eq!(seq.3, par.3, "resize decisions must match across thread counts");
        assert!((seq.0 - par.0).abs() < 1e-9, "delay drift beyond noise: {} vs {}", seq.0, par.0);
        assert!((seq.1 - par.1).abs() < 1e-6, "area drift beyond noise: {} vs {}", seq.1, par.1);
    }
}

#[test]
fn threaded_suite_harness_is_deterministic() {
    use rapids_bench::table1::{results_to_qor_json, run_suite_threaded, FlowConfig};
    let config = FlowConfig::fast();
    let names = ["c432", "c499", "alu2"];
    let one = results_to_qor_json(&run_suite_threaded(&names, &config, 1));
    let eight = results_to_qor_json(&run_suite_threaded(&names, &config, 8));
    assert_eq!(one, eight, "--threads 1 and --threads 8 must produce identical reports");
}
