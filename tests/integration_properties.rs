//! Property-style tests on the core invariants, driven by a deterministic
//! seeded sweep of random circuit configurations (the build container has
//! no crates.io access, so `proptest` is replaced by an explicit case loop
//! over the vendored `rand` — same invariants, same case count):
//!
//! * any non-inverting swap reported by the structural symmetry detector
//!   preserves the network function (Theorem 1 + Lemma 7/8),
//! * supergate extraction always partitions the logic gates,
//! * the BLIF round-trip and the technology mapper preserve functionality,
//! * pin-swap editing keeps the netlist internally consistent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rapids_circuits::generators::random_logic::{random_logic, RandomLogicConfig};
use rapids_circuits::map_to_library;
use rapids_core::supergate::extract_supergates;
use rapids_core::swap::{apply_swap, undo_swap};
use rapids_core::symmetry::swap_candidates;
use rapids_netlist::blif;
use rapids_sim::check_equivalence_random;

const CASES: usize = 24;

/// Mirrors the old proptest strategy: a random generator configuration plus
/// a circuit seed, both derived from one master seed so failures reproduce.
fn arbitrary_cases() -> Vec<(RandomLogicConfig, u64)> {
    let mut rng = StdRng::seed_from_u64(0xDAC2_2000);
    (0..CASES)
        .map(|_| {
            (
                RandomLogicConfig {
                    inputs: rng.gen_range(8..24usize),
                    outputs: rng.gen_range(3..10usize),
                    gates: rng.gen_range(40..160usize),
                    xor_fraction: rng.gen_range(0.0..0.4),
                    inverter_fraction: rng.gen_range(0.0..0.3),
                    max_fanin: rng.gen_range(2..5usize),
                    locality: 0.6,
                },
                rng.gen::<u64>(),
            )
        })
        .collect()
}

/// Every non-inverting swap candidate on every supergate of a random
/// circuit preserves functionality (checked with 256 random vectors).
#[test]
fn structural_swaps_preserve_function() {
    for (case, (config, seed)) in arbitrary_cases().into_iter().enumerate() {
        let reference = random_logic(&config, seed);
        let extraction = extract_supergates(&reference);
        let mut tested = 0usize;
        'supergates: for sg in extraction.supergates() {
            if sg.is_trivial() {
                continue;
            }
            for candidate in swap_candidates(sg, false).into_iter().take(3) {
                let mut network = reference.clone();
                apply_swap(&mut network, &candidate).unwrap();
                assert!(
                    check_equivalence_random(&reference, &network, 256, seed ^ 0x5eed)
                        .is_equivalent(),
                    "case {case}: swap {candidate:?} broke the function"
                );
                assert!(network.check_consistency().is_ok(), "case {case}");
                tested += 1;
                if tested > 20 {
                    break 'supergates;
                }
            }
        }
    }
}

/// Extraction partitions the logic gates of any random circuit.
#[test]
fn extraction_is_a_partition() {
    for (case, (config, seed)) in arbitrary_cases().into_iter().enumerate() {
        let network = random_logic(&config, seed);
        let extraction = extract_supergates(&network);
        let member_total: usize = extraction.supergates().iter().map(|sg| sg.size()).sum();
        assert_eq!(member_total, network.logic_gate_count(), "case {case}");
        let mut seen = std::collections::HashSet::new();
        for sg in extraction.supergates() {
            for &m in &sg.members {
                assert!(seen.insert(m), "case {case}: gate covered twice");
            }
        }
    }
}

/// BLIF round-trip and technology mapping preserve functionality.
#[test]
fn serialization_and_mapping_preserve_function() {
    for (case, (config, seed)) in arbitrary_cases().into_iter().enumerate() {
        let network = random_logic(&config, seed);
        let text = blif::write_string(&network);
        let parsed = blif::parse_string(&text).unwrap();
        assert!(
            check_equivalence_random(&network, &parsed, 256, seed).is_equivalent(),
            "case {case}: BLIF round-trip changed the function"
        );
        let mapped = map_to_library(&network, 4).unwrap();
        assert!(
            check_equivalence_random(&network, &mapped, 256, seed).is_equivalent(),
            "case {case}: mapping changed the function"
        );
    }
}

/// Applying and undoing a swap restores the exact original wiring.
#[test]
fn swap_undo_is_exact() {
    for (case, (config, seed)) in arbitrary_cases().into_iter().enumerate() {
        let reference = random_logic(&config, seed);
        let extraction = extract_supergates(&reference);
        let mut network = reference.clone();
        let mut applied = Vec::new();
        for sg in extraction.supergates() {
            if let Some(candidate) = swap_candidates(sg, false).first().copied() {
                if let Ok(record) = apply_swap(&mut network, &candidate) {
                    applied.push(record);
                }
            }
            if applied.len() >= 5 {
                break;
            }
        }
        for record in applied.iter().rev() {
            undo_swap(&mut network, record).unwrap();
        }
        for g in reference.iter_live() {
            assert_eq!(reference.fanins(g), network.fanins(g), "case {case}");
        }
    }
}
