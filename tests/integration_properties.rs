//! Property-based tests on the core invariants:
//!
//! * any non-inverting swap reported by the structural symmetry detector
//!   preserves the network function (Theorem 1 + Lemma 7/8),
//! * supergate extraction always partitions the logic gates,
//! * the BLIF round-trip and the technology mapper preserve functionality,
//! * pin-swap editing keeps the netlist internally consistent.

use proptest::prelude::*;

use rapids_circuits::generators::random_logic::{random_logic, RandomLogicConfig};
use rapids_circuits::map_to_library;
use rapids_core::supergate::extract_supergates;
use rapids_core::swap::{apply_swap, undo_swap};
use rapids_core::symmetry::swap_candidates;
use rapids_netlist::blif;
use rapids_sim::check_equivalence_random;

fn arbitrary_config() -> impl Strategy<Value = (RandomLogicConfig, u64)> {
    (
        8usize..24,
        3usize..10,
        40usize..160,
        0.0f64..0.4,
        0.0f64..0.3,
        2usize..5,
        any::<u64>(),
    )
        .prop_map(|(inputs, outputs, gates, xor_fraction, inverter_fraction, max_fanin, seed)| {
            (
                RandomLogicConfig {
                    inputs,
                    outputs,
                    gates,
                    xor_fraction,
                    inverter_fraction,
                    max_fanin,
                    locality: 0.6,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every non-inverting swap candidate on every supergate of a random
    /// circuit preserves functionality (checked with 256 random vectors).
    #[test]
    fn structural_swaps_preserve_function((config, seed) in arbitrary_config()) {
        let reference = random_logic(&config, seed);
        let extraction = extract_supergates(&reference);
        let mut tested = 0usize;
        for sg in extraction.supergates() {
            if sg.is_trivial() {
                continue;
            }
            for candidate in swap_candidates(sg, false).into_iter().take(3) {
                let mut network = reference.clone();
                apply_swap(&mut network, &candidate).unwrap();
                prop_assert!(
                    check_equivalence_random(&reference, &network, 256, seed ^ 0x5eed).is_equivalent(),
                    "swap {candidate:?} broke the function"
                );
                prop_assert!(network.check_consistency().is_ok());
                tested += 1;
                if tested > 20 {
                    return Ok(());
                }
            }
        }
    }

    /// Extraction partitions the logic gates of any random circuit.
    #[test]
    fn extraction_is_a_partition((config, seed) in arbitrary_config()) {
        let network = random_logic(&config, seed);
        let extraction = extract_supergates(&network);
        let member_total: usize = extraction.supergates().iter().map(|sg| sg.size()).sum();
        prop_assert_eq!(member_total, network.logic_gate_count());
        let mut seen = std::collections::HashSet::new();
        for sg in extraction.supergates() {
            for &m in &sg.members {
                prop_assert!(seen.insert(m), "gate covered twice");
            }
        }
    }

    /// BLIF round-trip and technology mapping preserve functionality.
    #[test]
    fn serialization_and_mapping_preserve_function((config, seed) in arbitrary_config()) {
        let network = random_logic(&config, seed);
        let text = blif::write_string(&network);
        let parsed = blif::parse_string(&text).unwrap();
        prop_assert!(check_equivalence_random(&network, &parsed, 256, seed).is_equivalent());
        let mapped = map_to_library(&network, 4).unwrap();
        prop_assert!(check_equivalence_random(&network, &mapped, 256, seed).is_equivalent());
    }

    /// Applying and undoing a swap restores the exact original wiring.
    #[test]
    fn swap_undo_is_exact((config, seed) in arbitrary_config()) {
        let reference = random_logic(&config, seed);
        let extraction = extract_supergates(&reference);
        let mut network = reference.clone();
        let mut applied = Vec::new();
        for sg in extraction.supergates() {
            if let Some(candidate) = swap_candidates(sg, false).first().copied() {
                if let Ok(record) = apply_swap(&mut network, &candidate) {
                    applied.push(record);
                }
            }
            if applied.len() >= 5 {
                break;
            }
        }
        for record in applied.iter().rev() {
            undo_swap(&mut network, record).unwrap();
        }
        for g in reference.iter_live() {
            prop_assert_eq!(reference.fanins(g), network.fanins(g));
        }
    }
}
