//! Integration tests of the unified [`Pipeline`] API: every optimizer kind
//! of the paper runs end to end through it, sources of every flavor are
//! accepted, and the flow preserves functional equivalence (checked
//! independently with `rapids-sim`, not just the pipeline's own safety net).

use rapids_circuits::generators::adder::ripple_carry_adder;
use rapids_core::OptimizerKind;
use rapids_flow::{CircuitSource, Pipeline, PipelineConfig, PipelineError};
use rapids_netlist::blif;
use rapids_sim::check_equivalence_random;

fn verified_fast_pipeline() -> Pipeline {
    Pipeline::new(PipelineConfig { verify_equivalence: true, ..PipelineConfig::fast() })
}

#[test]
fn gsg_runs_through_pipeline() {
    let report = verified_fast_pipeline()
        .run_kind(CircuitSource::suite("c432"), OptimizerKind::Rewiring)
        .unwrap();
    assert_eq!(report.kind, OptimizerKind::Rewiring);
    assert!(report.initial_delay_ns > 0.0);
    assert!(report.outcome.final_delay_ns <= report.initial_delay_ns + 1e-9);
    assert!(report.equivalence_verified);
    // gsg only swaps pins: gate count and area must be untouched.
    assert_eq!(report.outcome.initial_area_um2, report.outcome.final_area_um2);
}

#[test]
fn gs_runs_through_pipeline() {
    let report = verified_fast_pipeline()
        .run_kind(CircuitSource::suite("c432"), OptimizerKind::Sizing)
        .unwrap();
    assert_eq!(report.kind, OptimizerKind::Sizing);
    assert!(report.outcome.final_delay_ns <= report.initial_delay_ns + 1e-9);
    assert!(report.equivalence_verified);
}

#[test]
fn combined_runs_through_pipeline() {
    let report = verified_fast_pipeline()
        .run_kind(CircuitSource::suite("c432"), OptimizerKind::Combined)
        .unwrap();
    assert_eq!(report.kind, OptimizerKind::Combined);
    assert!(report.outcome.final_delay_ns <= report.initial_delay_ns + 1e-9);
    assert!(report.equivalence_verified);
}

#[test]
fn compare_optimizers_shares_one_placement() {
    let comparison = Pipeline::fast().compare_optimizers(CircuitSource::suite("alu2")).unwrap();
    assert_eq!(comparison.rewiring.initial_delay_ns, comparison.sizing.initial_delay_ns);
    assert_eq!(comparison.rewiring.initial_delay_ns, comparison.combined.initial_delay_ns);
    assert_eq!(comparison.initial_delay_ns, comparison.rewiring.initial_delay_ns);
    assert!(comparison.gate_count > 100);
    for kind in [OptimizerKind::Rewiring, OptimizerKind::Sizing, OptimizerKind::Combined] {
        assert_eq!(comparison.report(kind).kind, kind);
    }
}

/// Satellite smoke test: the full pipeline on a small ripple-carry adder
/// keeps the adder's function bit-identical, as witnessed by `rapids-sim`
/// on the pre- and post-flow networks (independent of the pipeline's own
/// internal verification).
#[test]
fn pipeline_preserves_adder_function() {
    let raw = ripple_carry_adder(8);
    let pipeline = Pipeline::fast();
    let reference = pipeline
        .build_network(CircuitSource::Unmapped { network: raw.clone(), max_fanin: 4 })
        .unwrap();
    for kind in [OptimizerKind::Rewiring, OptimizerKind::Sizing, OptimizerKind::Combined] {
        let report = pipeline
            .run_kind(CircuitSource::Unmapped { network: raw.clone(), max_fanin: 4 }, kind)
            .unwrap();
        assert!(
            check_equivalence_random(&reference, &report.network, 2048, 0xADDE).is_equivalent(),
            "{kind} broke the adder"
        );
        // ... and against the raw, pre-mapping adder too.
        assert!(
            check_equivalence_random(&raw, &report.network, 2048, 0xADDF).is_equivalent(),
            "{kind} diverged from the unmapped adder"
        );
    }
}

#[test]
fn blif_text_is_a_first_class_source() {
    let raw = ripple_carry_adder(4);
    let text = blif::write_string(&raw);
    let report = Pipeline::fast().run(CircuitSource::Blif { text, max_fanin: 4 }).unwrap();
    assert!(report.initial_delay_ns > 0.0);
}

#[test]
fn unknown_benchmark_is_a_typed_error() {
    let err = Pipeline::fast().run(CircuitSource::suite("mystery9000")).unwrap_err();
    match err {
        PipelineError::UnknownBenchmark(name) => assert_eq!(name, "mystery9000"),
        other => panic!("expected UnknownBenchmark, got {other:?}"),
    }
}

#[test]
fn stage_timings_are_populated() {
    let design = Pipeline::fast().prepare(CircuitSource::suite("c432")).unwrap();
    let t = design.timings;
    assert!(t.generate_s >= 0.0 && t.place_s > 0.0 && t.sta_s > 0.0);
    // Suite circuits arrive mapped; the map stage must not be charged.
    assert_eq!(t.map_s, 0.0);

    // An unmapped source books its mapping cost under map_s, not generate_s.
    let design = Pipeline::fast()
        .prepare(CircuitSource::Unmapped { network: ripple_carry_adder(8), max_fanin: 4 })
        .unwrap();
    assert!(design.timings.map_s > 0.0);
}
