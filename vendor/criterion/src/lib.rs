//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the slice of criterion's surface its benches use: `Criterion`,
//! `benchmark_group` / `BenchmarkGroup` (with `sample_size`, `throughput`,
//! `bench_with_input`, `bench_function`, `finish`), `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple — a short warm-up followed by
//! `sample_size` timed samples, reporting min / mean / max — because these
//! benches exist to track relative regressions of the RAPIDS claims
//! (linear-time extraction, STA cost), not to produce publication-quality
//! statistics.  Swapping the real criterion back in later only requires
//! changing the path dependency in the workspace manifest.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark (reported, not rate-normalized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark instance inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to the closure of `bench_with_input`.
pub struct Bencher {
    samples: usize,
    results_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `routine` through warm-up plus `samples` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed run (fills caches, triggers lazy init).
        black_box(routine());
        self.results_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: self.sample_size, results_ns: Vec::new() };
        routine(&mut bencher, input);
        self.report(&id, &bencher.results_ns);
        self
    }

    /// Benchmarks a routine with no external input.
    pub fn bench_function<R>(&mut self, id: BenchmarkId, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: self.sample_size, results_ns: Vec::new() };
        routine(&mut bencher);
        self.report(&id, &bencher.results_ns);
        self
    }

    fn report(&self, id: &BenchmarkId, results_ns: &[f64]) {
        if results_ns.is_empty() {
            println!("{}/{id}: no samples collected", self.name);
            return;
        }
        let min = results_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = results_ns.iter().copied().fold(0.0f64, f64::max);
        let mean = results_ns.iter().sum::<f64>() / results_ns.len() as f64;
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / (mean / 1e9))
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 / (mean / 1e9))
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: [{} {} {}]{throughput}",
            self.name,
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 { 20 } else { self.default_sample_size };
        BenchmarkGroup { name: name.into(), _criterion: self, sample_size, throughput: None }
    }

    /// Sets the default sample count for subsequent groups.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Configuration hook kept for compatibility; returns a default harness.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Final reporting hook (eager reporting makes this a no-op).
    pub fn final_summary(&mut self) {}
}

/// Kept for API compatibility with criterion's measurement duration setters.
pub fn measurement_time(_d: Duration) {}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $function(&mut criterion);
            )+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41u32, |b, &n| {
            b.iter(|| {
                runs += 1;
                n + 1
            });
        });
        group.finish();
        // 1 warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter("c432").to_string(), "c432");
        assert_eq!(BenchmarkId::new("extract", 7).to_string(), "extract/7");
    }
}
