//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of the `rand 0.8` surface the RAPIDS crates actually use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! for a given seed, which is all the placer / pattern generators / circuit
//! generators require (they never need cryptographic quality, only
//! reproducibility).  Swapping the real `rand` back in later only requires
//! changing the `[patch]`-free path dependency in the workspace manifest.

/// Random number generator types.
pub mod rngs {
    /// Deterministic 64-bit generator (xoshiro256** under the hood).
    ///
    /// Named `StdRng` for drop-in compatibility with `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeding interface; mirror of `rand::SeedableRng` restricted to the one
/// constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would lock xoshiro at zero forever.
        if state == [0, 0, 0, 0] {
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { state }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Uniform sampling from standard distributions (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i32);

impl SampleRange for core::ops::Range<i64> {
    type Output = i64;
    fn sample_from(self, rng: &mut StdRng) -> i64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Mirror of the `rand::Rng` extension trait over the methods the workspace
/// uses.
pub trait Rng {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T;

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool;

    /// Samples uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::sample(self) < p
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(2..=5usize);
            assert!((2..=5).contains(&j));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads));
    }
}
