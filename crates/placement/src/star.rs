//! The analytical star interconnect model of Riess & Ettl, as adopted by the
//! paper (§6):
//!
//! > *"Each net is modeled as a star: the center of the star is the center of
//! > gravity of all its terminals.  A net is divided into several segments:
//! > from source to the star center and from the star center to each sink."*
//!
//! Each segment is later modeled as a lumped RC by `rapids-timing`.

use rapids_netlist::{GateId, Network};

use crate::geometry::{Placement, Point};

/// One segment of a star net: either source→center or center→sink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarSegment {
    /// The sink gate this segment reaches (`None` for the source→center
    /// trunk segment).
    pub sink: Option<GateId>,
    /// Rectilinear length of the segment, µm.
    pub length_um: f64,
}

/// A net decomposed into star segments.
#[derive(Debug, Clone, PartialEq)]
pub struct StarNet {
    /// The driver gate of the net.
    pub driver: GateId,
    /// Center of gravity of all terminals.
    pub center: Point,
    /// The source→center trunk segment.
    pub trunk: StarSegment,
    /// One branch segment per sink, in fan-out order.
    pub branches: Vec<StarSegment>,
}

impl StarNet {
    /// Total wire length of the net (trunk plus all branches), µm.
    pub fn total_length_um(&self) -> f64 {
        self.trunk.length_um + self.branches.iter().map(|b| b.length_um).sum::<f64>()
    }

    /// Length of wire between the source and a given sink (trunk + that
    /// sink's branch), µm.  Returns `None` if the sink is not on this net.
    pub fn source_to_sink_length_um(&self, sink: GateId) -> Option<f64> {
        self.branches
            .iter()
            .find(|b| b.sink == Some(sink))
            .map(|b| self.trunk.length_um + b.length_um)
    }

    /// Number of sinks.
    pub fn sink_count(&self) -> usize {
        self.branches.len()
    }
}

/// Builds the star decomposition of the net driven by `driver` under the
/// given placement.  A net with no sinks yields a degenerate star with zero
/// lengths.
pub fn net_star(network: &Network, placement: &Placement, driver: GateId) -> StarNet {
    let source = placement.position(driver);
    let sinks: Vec<GateId> = network.fanouts(driver).to_vec();
    if sinks.is_empty() {
        return StarNet {
            driver,
            center: source,
            trunk: StarSegment { sink: None, length_um: 0.0 },
            branches: Vec::new(),
        };
    }
    // Center of gravity over all terminals (source + sinks).
    let mut sum_x = source.x_um;
    let mut sum_y = source.y_um;
    for &s in &sinks {
        let p = placement.position(s);
        sum_x += p.x_um;
        sum_y += p.y_um;
    }
    let count = (sinks.len() + 1) as f64;
    let center = Point::new(sum_x / count, sum_y / count);
    let trunk = StarSegment { sink: None, length_um: source.manhattan_distance_um(&center) };
    let branches = sinks
        .iter()
        .map(|&s| StarSegment {
            sink: Some(s),
            length_um: center.manhattan_distance_um(&placement.position(s)),
        })
        .collect();
    StarNet { driver, center, trunk, branches }
}

/// Builds star decompositions for every live gate's output net.
pub fn all_stars(network: &Network, placement: &Placement) -> Vec<StarNet> {
    network.iter_live().map(|g| net_star(network, placement, g)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Region;
    use rapids_netlist::{GateType, NetworkBuilder};

    fn placed_net() -> (Network, Placement) {
        let mut b = NetworkBuilder::new("star");
        b.inputs(["a"]);
        b.gate("s1", GateType::Inv, &["a"]);
        b.gate("s2", GateType::Buf, &["a"]);
        b.gate("s3", GateType::Inv, &["a"]);
        b.output("s1");
        b.output("s2");
        b.output("s3");
        let n = b.finish().unwrap();
        let region = Region { width_um: 100.0, height_um: 100.0, row_height_um: 10.0 };
        let mut p = Placement::new(region, n.gate_count());
        p.set_position(n.find_by_name("a").unwrap(), Point::new(0.0, 0.0));
        p.set_position(n.find_by_name("s1").unwrap(), Point::new(20.0, 0.0));
        p.set_position(n.find_by_name("s2").unwrap(), Point::new(0.0, 20.0));
        p.set_position(n.find_by_name("s3").unwrap(), Point::new(20.0, 20.0));
        (n, p)
    }

    #[test]
    fn center_of_gravity() {
        let (n, p) = placed_net();
        let a = n.find_by_name("a").unwrap();
        let star = net_star(&n, &p, a);
        assert!((star.center.x_um - 10.0).abs() < 1e-9);
        assert!((star.center.y_um - 10.0).abs() < 1e-9);
        assert_eq!(star.sink_count(), 3);
        // Trunk: (0,0) to (10,10) = 20; each branch = 20 or 20 or 20.
        assert!((star.trunk.length_um - 20.0).abs() < 1e-9);
        assert!((star.total_length_um() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn per_sink_lengths_vary() {
        let (n, mut p) = placed_net();
        let a = n.find_by_name("a").unwrap();
        let s1 = n.find_by_name("s1").unwrap();
        // Move s1 far away; its source-to-sink length must exceed the others.
        p.set_position(s1, Point::new(90.0, 90.0));
        let star = net_star(&n, &p, a);
        let d1 = star.source_to_sink_length_um(s1).unwrap();
        let d2 = star.source_to_sink_length_um(n.find_by_name("s2").unwrap()).unwrap();
        assert!(d1 > d2);
        assert!(star.source_to_sink_length_um(a).is_none());
    }

    #[test]
    fn degenerate_star_for_sinkless_net() {
        let (n, p) = placed_net();
        let s1 = n.find_by_name("s1").unwrap();
        let star = net_star(&n, &p, s1);
        assert_eq!(star.sink_count(), 0);
        assert_eq!(star.total_length_um(), 0.0);
    }

    #[test]
    fn all_stars_covers_live_gates() {
        let (n, p) = placed_net();
        let stars = all_stars(&n, &p);
        assert_eq!(stars.len(), n.live_gate_count());
    }
}
