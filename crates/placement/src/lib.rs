//! # rapids-placement
//!
//! Row-based standard-cell placement substrate.
//!
//! The paper's flow feeds a mapped netlist to a commercial timing-driven
//! placer and then *extracts cell locations*; the rewiring engine never moves
//! a cell afterwards.  This crate provides the equivalent substrate: a
//! simulated-annealing row placer that minimizes half-perimeter wire length
//! (optionally timing-weighted), the star-model net decomposition of
//! Riess/Ettl used by the paper's interconnect model, and a congestion map.
//!
//! ```
//! use rapids_celllib::Library;
//! use rapids_netlist::{GateType, NetworkBuilder};
//! use rapids_placement::{PlacerConfig, place};
//!
//! let mut b = NetworkBuilder::new("demo");
//! b.inputs(["a", "b", "c"]);
//! b.gate("n1", GateType::Nand, &["a", "b"]);
//! b.gate("f", GateType::Nand, &["n1", "c"]);
//! b.output("f");
//! let network = b.finish().unwrap();
//! let library = Library::standard_035um();
//! let placement = place(&network, &library, &PlacerConfig::default(), 42);
//! assert!(placement.total_hpwl_um(&network) >= 0.0);
//! ```

pub mod annealer;
pub mod congestion;
pub mod geometry;
pub mod star;

pub use annealer::{place, PlacerConfig};
pub use congestion::CongestionMap;
pub use geometry::{gate_width_sites, gate_width_um, Placement, Point, Region};
pub use star::{net_star, StarNet, StarSegment};
