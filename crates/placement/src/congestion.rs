//! A coarse congestion map: the placement region is divided into a grid of
//! bins and every net's bounding box contributes demand to the bins it
//! overlaps.  The paper motivates rewiring partly by congestion relief
//! ("Congestion can also be relieved"), and the experiment reports use this
//! map to show the effect of wire-length-driven swaps.

use rapids_netlist::Network;

use crate::geometry::Placement;

/// Routing-demand estimate over a regular grid of bins.
#[derive(Debug, Clone)]
pub struct CongestionMap {
    bins_x: usize,
    bins_y: usize,
    demand: Vec<f64>,
}

impl CongestionMap {
    /// Builds a congestion map with `bins_x × bins_y` bins.
    ///
    /// Every net adds `hpwl / covered_bins` demand to each bin its bounding
    /// box overlaps, a standard FLUTE-free estimate.
    pub fn build(network: &Network, placement: &Placement, bins_x: usize, bins_y: usize) -> Self {
        let bins_x = bins_x.max(1);
        let bins_y = bins_y.max(1);
        let mut demand = vec![0.0; bins_x * bins_y];
        let region = placement.region();
        let bin_w = region.width_um / bins_x as f64;
        let bin_h = region.height_um / bins_y as f64;
        for driver in network.iter_live() {
            let sinks = network.fanouts(driver);
            if sinks.is_empty() {
                continue;
            }
            let mut min_x = f64::INFINITY;
            let mut max_x = f64::NEG_INFINITY;
            let mut min_y = f64::INFINITY;
            let mut max_y = f64::NEG_INFINITY;
            for p in std::iter::once(placement.position(driver))
                .chain(sinks.iter().map(|&s| placement.position(s)))
            {
                min_x = min_x.min(p.x_um);
                max_x = max_x.max(p.x_um);
                min_y = min_y.min(p.y_um);
                max_y = max_y.max(p.y_um);
            }
            let hpwl = (max_x - min_x) + (max_y - min_y);
            let bx0 = ((min_x / bin_w).floor() as usize).min(bins_x - 1);
            let bx1 = ((max_x / bin_w).floor() as usize).min(bins_x - 1);
            let by0 = ((min_y / bin_h).floor() as usize).min(bins_y - 1);
            let by1 = ((max_y / bin_h).floor() as usize).min(bins_y - 1);
            let covered = ((bx1 - bx0 + 1) * (by1 - by0 + 1)) as f64;
            let share = if hpwl > 0.0 { hpwl / covered } else { 0.1 / covered };
            for bx in bx0..=bx1 {
                for by in by0..=by1 {
                    demand[by * bins_x + bx] += share;
                }
            }
        }
        CongestionMap { bins_x, bins_y, demand }
    }

    /// Demand of a specific bin.
    pub fn demand(&self, bin_x: usize, bin_y: usize) -> f64 {
        self.demand[bin_y * self.bins_x + bin_x]
    }

    /// Grid dimensions `(bins_x, bins_y)`.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.bins_x, self.bins_y)
    }

    /// Maximum bin demand (the congestion hot spot).
    pub fn peak_demand(&self) -> f64 {
        self.demand.iter().copied().fold(0.0, f64::max)
    }

    /// Mean bin demand.
    pub fn average_demand(&self) -> f64 {
        if self.demand.is_empty() {
            0.0
        } else {
            self.demand.iter().sum::<f64>() / self.demand.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annealer::{place, PlacerConfig};
    use rapids_celllib::Library;
    use rapids_netlist::{GateType, NetworkBuilder};

    fn net() -> Network {
        let mut b = NetworkBuilder::new("c");
        b.inputs(["a", "b", "c", "d"]);
        b.gate("n1", GateType::Nand, &["a", "b"]);
        b.gate("n2", GateType::Nand, &["c", "d"]);
        b.gate("f", GateType::Nor, &["n1", "n2"]);
        b.output("f");
        b.finish().unwrap()
    }

    #[test]
    fn congestion_map_has_positive_demand() {
        let n = net();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 3);
        let map = CongestionMap::build(&n, &p, 4, 4);
        assert_eq!(map.dimensions(), (4, 4));
        assert!(map.peak_demand() >= map.average_demand());
        assert!(map.average_demand() >= 0.0);
    }

    #[test]
    fn single_bin_grid_collects_everything() {
        let n = net();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 3);
        let map = CongestionMap::build(&n, &p, 1, 1);
        assert!((map.peak_demand() - map.average_demand()).abs() < 1e-9);
        assert!(map.demand(0, 0) > 0.0);
    }

    #[test]
    fn degenerate_bin_counts_are_clamped() {
        let n = net();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 3);
        let map = CongestionMap::build(&n, &p, 0, 0);
        assert_eq!(map.dimensions(), (1, 1));
    }
}
