//! Placement geometry: points, the placement region and the per-gate
//! location table.

use rapids_netlist::{GateId, Network};

/// A location in the placement region, in µm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate, µm.
    pub x_um: f64,
    /// Vertical coordinate, µm.
    pub y_um: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x_um: f64, y_um: f64) -> Self {
        Point { x_um, y_um }
    }

    /// Manhattan (rectilinear) distance to another point, in µm — the metric
    /// used for wire-length estimation throughout the flow.
    pub fn manhattan_distance_um(&self, other: &Point) -> f64 {
        (self.x_um - other.x_um).abs() + (self.y_um - other.y_um).abs()
    }
}

/// The rectangular placement region and its row structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Region width, µm.
    pub width_um: f64,
    /// Region height, µm.
    pub height_um: f64,
    /// Standard-cell row height, µm.
    pub row_height_um: f64,
}

impl Region {
    /// Number of standard-cell rows that fit in the region.
    pub fn row_count(&self) -> usize {
        (self.height_um / self.row_height_um).floor().max(1.0) as usize
    }

    /// The y coordinate of the center of row `row`.
    pub fn row_center_y_um(&self, row: usize) -> f64 {
        (row as f64 + 0.5) * self.row_height_um
    }

    /// Clamps a point into the region.
    pub fn clamp(&self, p: Point) -> Point {
        Point { x_um: p.x_um.clamp(0.0, self.width_um), y_um: p.y_um.clamp(0.0, self.height_um) }
    }
}

/// A placed netlist: one location per gate slot (indexed by `GateId`).
///
/// Primary inputs and outputs are placed too (as pad-like points), because
/// the star wire model needs coordinates for every net terminal.
///
/// The slot table can **grow** after the placer ran: rewiring moves that
/// insert inverters (the paper's ES swaps) host each new gate through
/// [`Placement::host_at`], which extends the table on demand.  The original
/// rows are never disturbed — the overlay is pure bookkeeping on top of the
/// frozen placement, matching the paper's constraint that the optimizer
/// moves no existing cell.
#[derive(Debug, Clone)]
pub struct Placement {
    region: Region,
    positions: Vec<Point>,
}

impl Placement {
    /// Creates a placement with every gate at the origin.
    pub fn new(region: Region, gate_slots: usize) -> Self {
        Placement { region, positions: vec![Point::default(); gate_slots] }
    }

    /// The placement region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Location of a gate.
    pub fn position(&self, gate: GateId) -> Point {
        self.positions[gate.index()]
    }

    /// Moves a gate (used only by the placer itself; the rewiring flow never
    /// calls this).
    pub fn set_position(&mut self, gate: GateId, p: Point) {
        self.positions[gate.index()] = self.region.clamp(p);
    }

    /// Number of gate slots covered.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if the placement has a slot for `gate`.
    pub fn covers(&self, gate: GateId) -> bool {
        gate.index() < self.positions.len()
    }

    /// Hosts a gate inserted after placement (e.g. an inverter added by an
    /// inverting swap) at `p`, growing the slot table as needed.  The
    /// canonical policy co-locates the new gate with its driver, so the
    /// driver→inverter net is (near) zero-length and the inverter→sink net
    /// inherits the original driver→sink geometry; a legalization nudge
    /// into a free row slot can refine this later without touching callers.
    pub fn host_at(&mut self, gate: GateId, p: Point) {
        if self.positions.len() <= gate.index() {
            self.positions.resize(gate.index() + 1, Point::default());
        }
        self.positions[gate.index()] = self.region.clamp(p);
    }

    /// Shrinks the slot table back to `len` slots (no-op if it is already
    /// that small).  Used to retire overlay slots after an inverting-swap
    /// probe or pass is undone, so the placement's length tracks the
    /// network's slot count exactly at every stable point.
    pub fn truncate_slots(&mut self, len: usize) {
        self.positions.truncate(len);
    }

    /// Returns `true` if the placement covers no gates.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Half-perimeter wire length of the net driven by `driver`, in µm.
    /// Returns 0 for nets with no sinks.
    pub fn net_hpwl_um(&self, network: &Network, driver: GateId) -> f64 {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut terminals = 0;
        let mut add = |p: Point| {
            min_x = min_x.min(p.x_um);
            max_x = max_x.max(p.x_um);
            min_y = min_y.min(p.y_um);
            max_y = max_y.max(p.y_um);
        };
        add(self.position(driver));
        terminals += 1;
        for &s in network.fanouts(driver) {
            add(self.position(s));
            terminals += 1;
        }
        if terminals <= 1 {
            return 0.0;
        }
        (max_x - min_x) + (max_y - min_y)
    }

    /// Total half-perimeter wire length of all nets, in µm.
    pub fn total_hpwl_um(&self, network: &Network) -> f64 {
        network.iter_live().map(|g| self.net_hpwl_um(network, g)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::{GateType, NetworkBuilder};

    #[test]
    fn manhattan_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.manhattan_distance_um(&b), 7.0);
        assert_eq!(b.manhattan_distance_um(&a), 7.0);
    }

    #[test]
    fn region_rows_and_clamp() {
        let r = Region { width_um: 100.0, height_um: 52.0, row_height_um: 13.0 };
        assert_eq!(r.row_count(), 4);
        assert_eq!(r.row_center_y_um(0), 6.5);
        let p = r.clamp(Point::new(-5.0, 200.0));
        assert_eq!(p.x_um, 0.0);
        assert_eq!(p.y_um, 52.0);
    }

    #[test]
    fn hpwl_of_simple_net() {
        let mut b = NetworkBuilder::new("n");
        b.inputs(["a", "b"]);
        b.gate("f", GateType::And, &["a", "b"]);
        b.output("f");
        let n = b.finish().unwrap();
        let region = Region { width_um: 100.0, height_um: 100.0, row_height_um: 10.0 };
        let mut p = Placement::new(region, n.gate_count());
        let a = n.find_by_name("a").unwrap();
        let bq = n.find_by_name("b").unwrap();
        let f = n.find_by_name("f").unwrap();
        p.set_position(a, Point::new(0.0, 0.0));
        p.set_position(bq, Point::new(10.0, 0.0));
        p.set_position(f, Point::new(5.0, 5.0));
        // Net a→f spans (0,0)-(5,5): HPWL 10; net b→f spans (10,0)-(5,5): 10.
        assert_eq!(p.net_hpwl_um(&n, a), 10.0);
        assert_eq!(p.net_hpwl_um(&n, bq), 10.0);
        // f has no sinks.
        assert_eq!(p.net_hpwl_um(&n, f), 0.0);
        assert_eq!(p.total_hpwl_um(&n), 20.0);
    }

    #[test]
    fn host_at_grows_and_truncate_retires_overlay_slots() {
        let region = Region { width_um: 50.0, height_um: 50.0, row_height_um: 10.0 };
        let mut p = Placement::new(region, 2);
        assert!(p.covers(GateId(1)));
        assert!(!p.covers(GateId(5)));
        // Hosting a late gate grows the table and clamps like set_position.
        p.host_at(GateId(5), Point::new(60.0, 10.0));
        assert_eq!(p.len(), 6);
        assert!(p.covers(GateId(5)));
        assert_eq!(p.position(GateId(5)), Point::new(50.0, 10.0));
        // Hosting an existing slot just moves it.
        p.host_at(GateId(0), Point::new(1.0, 2.0));
        assert_eq!(p.len(), 6);
        assert_eq!(p.position(GateId(0)), Point::new(1.0, 2.0));
        // Truncation retires the overlay but never the original rows.
        p.truncate_slots(2);
        assert_eq!(p.len(), 2);
        assert!(!p.covers(GateId(5)));
        p.truncate_slots(10);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn set_position_clamps_to_region() {
        let region = Region { width_um: 10.0, height_um: 10.0, row_height_um: 5.0 };
        let mut p = Placement::new(region, 1);
        p.set_position(GateId(0), Point::new(100.0, -3.0));
        let q = p.position(GateId(0));
        assert_eq!(q.x_um, 10.0);
        assert_eq!(q.y_um, 0.0);
        assert!(!p.is_empty());
        assert_eq!(p.len(), 1);
    }
}
