//! Placement geometry: points, the placement region and the per-gate
//! location table, plus the row/site quantization and footprint helpers
//! shared by the legalization subsystem (`rapids-legalize`).

use rapids_celllib::{Library, ROW_HEIGHT_UM, SITE_WIDTH_UM};
use rapids_netlist::{GateId, GateType, Network};

/// A location in the placement region, in µm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate, µm.
    pub x_um: f64,
    /// Vertical coordinate, µm.
    pub y_um: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x_um: f64, y_um: f64) -> Self {
        Point { x_um, y_um }
    }

    /// Manhattan (rectilinear) distance to another point, in µm — the metric
    /// used for wire-length estimation throughout the flow.
    pub fn manhattan_distance_um(&self, other: &Point) -> f64 {
        (self.x_um - other.x_um).abs() + (self.y_um - other.y_um).abs()
    }
}

/// The rectangular placement region and its row structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Region width, µm.
    pub width_um: f64,
    /// Region height, µm.
    pub height_um: f64,
    /// Standard-cell row height, µm.
    pub row_height_um: f64,
}

impl Region {
    /// Number of standard-cell rows that fit in the region.
    pub fn row_count(&self) -> usize {
        (self.height_um / self.row_height_um).floor().max(1.0) as usize
    }

    /// The y coordinate of the center of row `row`.
    pub fn row_center_y_um(&self, row: usize) -> f64 {
        (row as f64 + 0.5) * self.row_height_um
    }

    /// Clamps a point into the region.
    pub fn clamp(&self, p: Point) -> Point {
        Point { x_um: p.x_um.clamp(0.0, self.width_um), y_um: p.y_um.clamp(0.0, self.height_um) }
    }

    /// The row whose center is nearest to `y_um`, clamped into the region.
    pub fn nearest_row(&self, y_um: f64) -> usize {
        let raw = ((y_um / self.row_height_um) - 0.5).round();
        (raw.max(0.0) as usize).min(self.row_count().saturating_sub(1))
    }

    /// Number of placement sites ([`rapids_celllib::SITE_WIDTH_UM`] wide)
    /// that fit in one row.
    pub fn site_count(&self) -> usize {
        ((self.width_um / SITE_WIDTH_UM) + 1e-9).floor().max(1.0) as usize
    }

    /// The x coordinate of the left edge of site `site`.
    pub fn site_x_um(&self, site: usize) -> f64 {
        site as f64 * SITE_WIDTH_UM
    }

    /// The site whose left edge is nearest to `x_um`, clamped into the row.
    ///
    /// For site-aligned coordinates (everything the legalizer emits) this
    /// recovers the exact site index; the row-based occupancy model and
    /// [`Placement::check_legal`] both quantize through it, so legality is
    /// decided in exact integer-site arithmetic rather than accumulated
    /// floating-point widths.
    pub fn nearest_site(&self, x_um: f64) -> usize {
        let raw = (x_um / SITE_WIDTH_UM).round();
        (raw.max(0.0) as usize).min(self.site_count().saturating_sub(1))
    }
}

/// Footprint width of a gate in µm when it occupies a standard-cell row:
/// the library cell width for logic gates (nominal 25 µm² when the library
/// has no cell), a 4-site pad for primary inputs, and a single site for
/// constant sources (they exist only as netlist bookkeeping).
pub fn gate_width_um(network: &Network, library: &Library, gate: GateId) -> f64 {
    let g = network.gate(gate);
    match g.gtype {
        GateType::Input => 4.0 * SITE_WIDTH_UM,
        GateType::Const0 | GateType::Const1 => SITE_WIDTH_UM,
        _ => library.cell_for_gate(g).map(|c| c.width_um()).unwrap_or(25.0 / ROW_HEIGHT_UM),
    }
}

/// [`gate_width_um`] rounded up to whole placement sites (at least one).
pub fn gate_width_sites(network: &Network, library: &Library, gate: GateId) -> usize {
    ((gate_width_um(network, library, gate) / SITE_WIDTH_UM) - 1e-9).ceil().max(1.0) as usize
}

/// A placed netlist: one location per gate slot (indexed by `GateId`).
///
/// Primary inputs and outputs are placed too (as pad-like points), because
/// the star wire model needs coordinates for every net terminal.
///
/// The slot table can **grow** after the placer ran: rewiring moves that
/// insert inverters (the paper's ES swaps) host each new gate through
/// [`Placement::host_at`], which extends the table on demand.  The original
/// rows are never disturbed — the overlay is pure bookkeeping on top of the
/// frozen placement, matching the paper's constraint that the optimizer
/// moves no existing cell.
#[derive(Debug, Clone)]
pub struct Placement {
    region: Region,
    positions: Vec<Point>,
}

impl Placement {
    /// Creates a placement with every gate at the origin.
    pub fn new(region: Region, gate_slots: usize) -> Self {
        Placement { region, positions: vec![Point::default(); gate_slots] }
    }

    /// The placement region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Location of a gate.
    pub fn position(&self, gate: GateId) -> Point {
        self.positions[gate.index()]
    }

    /// Moves a gate (used only by the placer itself; the rewiring flow never
    /// calls this).
    pub fn set_position(&mut self, gate: GateId, p: Point) {
        self.positions[gate.index()] = self.region.clamp(p);
    }

    /// Number of gate slots covered.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if the placement has a slot for `gate`.
    pub fn covers(&self, gate: GateId) -> bool {
        gate.index() < self.positions.len()
    }

    /// Hosts a gate inserted after placement (e.g. an inverter added by an
    /// inverting swap) at `p`, growing the slot table as needed.  The
    /// canonical policy co-locates the new gate with its driver, so the
    /// driver→inverter net is (near) zero-length and the inverter→sink net
    /// inherits the original driver→sink geometry; a legalization nudge
    /// into a free row slot can refine this later without touching callers.
    pub fn host_at(&mut self, gate: GateId, p: Point) {
        if self.positions.len() <= gate.index() {
            self.positions.resize(gate.index() + 1, Point::default());
        }
        self.positions[gate.index()] = self.region.clamp(p);
    }

    /// Shrinks the slot table back to `len` slots (no-op if it is already
    /// that small).  Used to retire overlay slots after an inverting-swap
    /// probe or pass is undone, so the placement's length tracks the
    /// network's slot count exactly at every stable point.
    pub fn truncate_slots(&mut self, len: usize) {
        self.positions.truncate(len);
    }

    /// Returns `true` if the placement covers no gates.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Half-perimeter wire length of the net driven by `driver`, in µm.
    /// Returns 0 for nets with no sinks.
    pub fn net_hpwl_um(&self, network: &Network, driver: GateId) -> f64 {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut terminals = 0;
        let mut add = |p: Point| {
            min_x = min_x.min(p.x_um);
            max_x = max_x.max(p.x_um);
            min_y = min_y.min(p.y_um);
            max_y = max_y.max(p.y_um);
        };
        add(self.position(driver));
        terminals += 1;
        for &s in network.fanouts(driver) {
            add(self.position(s));
            terminals += 1;
        }
        if terminals <= 1 {
            return 0.0;
        }
        (max_x - min_x) + (max_y - min_y)
    }

    /// Total half-perimeter wire length of all nets, in µm.
    pub fn total_hpwl_um(&self, network: &Network) -> f64 {
        network.iter_live().map(|g| self.net_hpwl_um(network, g)).sum()
    }

    /// Checks that the placement is *legal*: every live gate sits on a slot,
    /// every footprint fits inside its row, and no two footprints in the
    /// same row overlap.  Footprints come from [`gate_width_sites`] and
    /// coordinates are quantized to the row/site grid
    /// ([`Region::nearest_row`] / [`Region::nearest_site`]), so the check is
    /// exact integer arithmetic on the grid the legalizer emits; raw
    /// annealed or overlay-stacked placements (inverters co-located with
    /// their drivers) report their collisions through the same quantization.
    ///
    /// # Errors
    ///
    /// A description of the first violation found (scan order: rows bottom
    /// to top, sites left to right).
    pub fn check_legal(&self, network: &Network, library: &Library) -> Result<(), String> {
        let region = self.region;
        let site_count = region.site_count();
        let mut rows: Vec<Vec<(usize, usize, GateId)>> = vec![Vec::new(); region.row_count()];
        for g in network.iter_live() {
            if !self.covers(g) {
                return Err(format!("gate {g} has no placement slot"));
            }
            let p = self.position(g);
            let site = region.nearest_site(p.x_um);
            let width = gate_width_sites(network, library, g);
            if site + width > site_count {
                return Err(format!(
                    "gate {g} overflows its row: sites {site}..{} of {site_count}",
                    site + width
                ));
            }
            rows[region.nearest_row(p.y_um)].push((site, site + width, g));
        }
        for (row, mut cells) in rows.into_iter().enumerate() {
            cells.sort_unstable();
            for pair in cells.windows(2) {
                let (_, end_a, a) = pair[0];
                let (start_b, _, b) = pair[1];
                if end_a > start_b {
                    return Err(format!(
                        "gates {a} and {b} overlap in row {row} (sites {start_b} < {end_a})"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Panics with the first violation if the placement is not legal — the
    /// loud form of [`Placement::check_legal`] used by the flow's safety
    /// nets and the legalizer's own test suite.
    pub fn assert_legal(&self, network: &Network, library: &Library) {
        if let Err(violation) = self.check_legal(network, library) {
            panic!("placement is not legal: {violation}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::{GateType, NetworkBuilder};

    #[test]
    fn manhattan_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.manhattan_distance_um(&b), 7.0);
        assert_eq!(b.manhattan_distance_um(&a), 7.0);
    }

    #[test]
    fn region_rows_and_clamp() {
        let r = Region { width_um: 100.0, height_um: 52.0, row_height_um: 13.0 };
        assert_eq!(r.row_count(), 4);
        assert_eq!(r.row_center_y_um(0), 6.5);
        let p = r.clamp(Point::new(-5.0, 200.0));
        assert_eq!(p.x_um, 0.0);
        assert_eq!(p.y_um, 52.0);
    }

    #[test]
    fn hpwl_of_simple_net() {
        let mut b = NetworkBuilder::new("n");
        b.inputs(["a", "b"]);
        b.gate("f", GateType::And, &["a", "b"]);
        b.output("f");
        let n = b.finish().unwrap();
        let region = Region { width_um: 100.0, height_um: 100.0, row_height_um: 10.0 };
        let mut p = Placement::new(region, n.gate_count());
        let a = n.find_by_name("a").unwrap();
        let bq = n.find_by_name("b").unwrap();
        let f = n.find_by_name("f").unwrap();
        p.set_position(a, Point::new(0.0, 0.0));
        p.set_position(bq, Point::new(10.0, 0.0));
        p.set_position(f, Point::new(5.0, 5.0));
        // Net a→f spans (0,0)-(5,5): HPWL 10; net b→f spans (10,0)-(5,5): 10.
        assert_eq!(p.net_hpwl_um(&n, a), 10.0);
        assert_eq!(p.net_hpwl_um(&n, bq), 10.0);
        // f has no sinks.
        assert_eq!(p.net_hpwl_um(&n, f), 0.0);
        assert_eq!(p.total_hpwl_um(&n), 20.0);
    }

    #[test]
    fn host_at_grows_and_truncate_retires_overlay_slots() {
        let region = Region { width_um: 50.0, height_um: 50.0, row_height_um: 10.0 };
        let mut p = Placement::new(region, 2);
        assert!(p.covers(GateId(1)));
        assert!(!p.covers(GateId(5)));
        // Hosting a late gate grows the table and clamps like set_position.
        p.host_at(GateId(5), Point::new(60.0, 10.0));
        assert_eq!(p.len(), 6);
        assert!(p.covers(GateId(5)));
        assert_eq!(p.position(GateId(5)), Point::new(50.0, 10.0));
        // Hosting an existing slot just moves it.
        p.host_at(GateId(0), Point::new(1.0, 2.0));
        assert_eq!(p.len(), 6);
        assert_eq!(p.position(GateId(0)), Point::new(1.0, 2.0));
        // Truncation retires the overlay but never the original rows.
        p.truncate_slots(2);
        assert_eq!(p.len(), 2);
        assert!(!p.covers(GateId(5)));
        p.truncate_slots(10);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn row_and_site_quantization() {
        let r = Region { width_um: 80.0, height_um: 52.0, row_height_um: 13.0 };
        assert_eq!(r.nearest_row(6.5), 0);
        assert_eq!(r.nearest_row(19.5), 1);
        assert_eq!(r.nearest_row(-4.0), 0);
        assert_eq!(r.nearest_row(1000.0), r.row_count() - 1);
        assert_eq!(r.site_count(), 100);
        assert_eq!(r.nearest_site(r.site_x_um(37)), 37);
        assert_eq!(r.nearest_site(-1.0), 0);
        assert_eq!(r.nearest_site(1000.0), 99);
    }

    #[test]
    fn footprints_cover_pads_cells_and_fallbacks() {
        let mut b = NetworkBuilder::new("w");
        b.inputs(["a", "b", "c", "d", "e", "f"]);
        b.gate("n", GateType::Nand, &["a", "b"]);
        b.gate("wide", GateType::And, &["a", "b", "c", "d", "e", "f"]);
        b.output("n");
        b.output("wide");
        let n = b.finish().unwrap();
        let lib = rapids_celllib::Library::standard_035um();
        let a = n.find_by_name("a").unwrap();
        let nand = n.find_by_name("n").unwrap();
        let wide = n.find_by_name("wide").unwrap();
        assert_eq!(gate_width_um(&n, &lib, a), 4.0 * SITE_WIDTH_UM);
        // NAND2 X1 cell width, rounded up to whole sites.
        let cell = lib.cell_for_gate(n.gate(nand)).unwrap();
        assert!((gate_width_um(&n, &lib, nand) - cell.width_um()).abs() < 1e-12);
        assert_eq!(
            gate_width_sites(&n, &lib, nand),
            (cell.width_um() / SITE_WIDTH_UM).ceil() as usize
        );
        // 6-input AND falls back to the AND4 cell via cell_for_gate.
        assert!(gate_width_sites(&n, &lib, wide) >= 1);
    }

    #[test]
    fn check_legal_flags_overlaps_and_overflow() {
        let mut b = NetworkBuilder::new("legal");
        b.inputs(["a", "b"]);
        b.gate("f", GateType::Nand, &["a", "b"]);
        b.output("f");
        let n = b.finish().unwrap();
        let lib = rapids_celllib::Library::standard_035um();
        let region = Region { width_um: 80.0, height_um: 26.0, row_height_um: 13.0 };
        let mut p = Placement::new(region, n.gate_count());
        let a = n.find_by_name("a").unwrap();
        let bq = n.find_by_name("b").unwrap();
        let f = n.find_by_name("f").unwrap();
        // Disjoint sites in the same row, plus one gate on its own row.
        p.set_position(a, Point::new(region.site_x_um(0), region.row_center_y_um(0)));
        p.set_position(bq, Point::new(region.site_x_um(10), region.row_center_y_um(0)));
        p.set_position(f, Point::new(region.site_x_um(0), region.row_center_y_um(1)));
        assert!(p.check_legal(&n, &lib).is_ok());
        p.assert_legal(&n, &lib);
        // Stacking b onto a (the pre-legalization overlay policy) is caught.
        p.set_position(bq, p.position(a));
        let err = p.check_legal(&n, &lib).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
        // A pad pushed past the row end overflows.
        p.set_position(bq, Point::new(region.width_um, region.row_center_y_um(0)));
        let err = p.check_legal(&n, &lib).unwrap_err();
        assert!(err.contains("overflow"), "{err}");
        // A live gate with no slot is reported too.
        let short = Placement::new(region, 1);
        assert!(short.check_legal(&n, &lib).unwrap_err().contains("no placement slot"));
    }

    #[test]
    fn set_position_clamps_to_region() {
        let region = Region { width_um: 10.0, height_um: 10.0, row_height_um: 5.0 };
        let mut p = Placement::new(region, 1);
        p.set_position(GateId(0), Point::new(100.0, -3.0));
        let q = p.position(GateId(0));
        assert_eq!(q.x_um, 10.0);
        assert_eq!(q.y_um, 0.0);
        assert!(!p.is_empty());
        assert_eq!(p.len(), 1);
    }
}
