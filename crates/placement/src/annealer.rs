//! The simulated-annealing row placer.
//!
//! Standing in for the commercial timing-driven placer of the paper's flow,
//! the placer:
//!
//! 1. sizes a near-square region from the total cell area and a target row
//!    utilization,
//! 2. seeds an initial placement by snaking the gates, in topological order,
//!    across the rows (which already gives decent locality), and
//! 3. improves it with simulated annealing over pairwise swap and single-cell
//!    displacement moves, minimizing total half-perimeter wire length with a
//!    criticality weight on nets close to the primary outputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rapids_celllib::{Library, ROW_HEIGHT_UM, SITE_WIDTH_UM};
use rapids_netlist::{GateId, Network};

use crate::geometry::{Placement, Point, Region};

/// Configuration of the annealing placer.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// Target row utilization (fraction of row length occupied by cells).
    pub utilization: f64,
    /// Number of annealing moves per gate.
    pub moves_per_gate: usize,
    /// Initial acceptance temperature as a fraction of the initial HPWL.
    pub initial_temperature_factor: f64,
    /// Geometric cooling factor applied each temperature step.
    pub cooling_factor: f64,
    /// Weight multiplier applied to nets whose driver feeds a primary output
    /// (a crude timing-driven bias).
    pub output_net_weight: f64,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            utilization: 0.7,
            moves_per_gate: 40,
            initial_temperature_factor: 0.05,
            cooling_factor: 0.9,
            output_net_weight: 2.0,
        }
    }
}

impl PlacerConfig {
    /// A fast low-effort configuration for large benchmarks and unit tests.
    pub fn fast() -> Self {
        PlacerConfig { moves_per_gate: 8, ..Self::default() }
    }
}

/// Places the network and returns fixed cell locations.
///
/// The result always covers every gate slot of the network (including
/// primary inputs, which are treated as zero-area pad cells).
pub fn place(network: &Network, library: &Library, config: &PlacerConfig, seed: u64) -> Placement {
    let region = size_region(network, library, config);
    let mut placement = initial_placement(network, region);
    anneal(network, &mut placement, config, seed);
    placement
}

/// Computes the placement region from the total cell area.
fn size_region(network: &Network, library: &Library, config: &PlacerConfig) -> Region {
    let mut total_area = 0.0;
    for g in network.iter_logic() {
        let gate = network.gate(g);
        if let Some(cell) = library.cell_for_gate(gate) {
            total_area += cell.area_um2;
        } else {
            total_area += 25.0;
        }
    }
    // Pads for the primary inputs.
    total_area += network.inputs().len() as f64 * 4.0 * SITE_WIDTH_UM * ROW_HEIGHT_UM;
    let utilization = config.utilization.clamp(0.05, 1.0);
    let needed = (total_area / utilization).max(ROW_HEIGHT_UM * ROW_HEIGHT_UM);
    let side = needed.sqrt();
    // Round the height to an integral number of rows.
    let rows = (side / ROW_HEIGHT_UM).ceil().max(1.0);
    Region {
        width_um: side.max(4.0 * SITE_WIDTH_UM),
        height_um: rows * ROW_HEIGHT_UM,
        row_height_um: ROW_HEIGHT_UM,
    }
}

/// Seeds the placement by snaking gates in topological order across rows.
fn initial_placement(network: &Network, region: Region) -> Placement {
    let mut placement = Placement::new(region, network.gate_count());
    let order = rapids_netlist::topo::topological_order(network)
        .expect("placement requires an acyclic network");
    let rows = region.row_count();
    let per_row = order.len().div_ceil(rows.max(1)).max(1);
    for (i, g) in order.iter().enumerate() {
        let row = i / per_row;
        let pos_in_row = i % per_row;
        // Snake: odd rows run right-to-left for locality between rows.
        let frac = (pos_in_row as f64 + 0.5) / per_row as f64;
        let x = if row.is_multiple_of(2) { frac } else { 1.0 - frac } * region.width_um;
        let y = region.row_center_y_um(row.min(rows.saturating_sub(1)));
        placement.set_position(*g, Point::new(x, y));
    }
    placement
}

/// Weighted HPWL of the nets incident to a gate (the only nets a move can
/// change).
fn incident_cost(network: &Network, placement: &Placement, gate: GateId, weight: &[f64]) -> f64 {
    let mut cost = weight[gate.index()] * placement.net_hpwl_um(network, gate);
    for &d in network.fanins(gate) {
        cost += weight[d.index()] * placement.net_hpwl_um(network, d);
    }
    cost
}

fn anneal(network: &Network, placement: &mut Placement, config: &PlacerConfig, seed: u64) {
    let gates: Vec<GateId> = network.iter_live().collect();
    if gates.len() < 2 {
        return;
    }
    let mut weight = vec![1.0f64; network.gate_count()];
    for g in network.iter_live() {
        if network.drives_output(g) {
            weight[g.index()] = config.output_net_weight;
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let region = placement.region();
    let initial_hpwl = placement.total_hpwl_um(network).max(1.0);
    let mut temperature = config.initial_temperature_factor * initial_hpwl / gates.len() as f64;
    let total_moves = config.moves_per_gate * gates.len();
    let moves_per_step = gates.len().max(64);
    let mut moves_done = 0usize;
    while moves_done < total_moves {
        for _ in 0..moves_per_step {
            moves_done += 1;
            let a = gates[rng.gen_range(0..gates.len())];
            if rng.gen_bool(0.5) {
                // Pairwise swap.
                let b = gates[rng.gen_range(0..gates.len())];
                if a == b {
                    continue;
                }
                let before = incident_cost(network, placement, a, &weight)
                    + incident_cost(network, placement, b, &weight);
                let pa = placement.position(a);
                let pb = placement.position(b);
                placement.set_position(a, pb);
                placement.set_position(b, pa);
                let after = incident_cost(network, placement, a, &weight)
                    + incident_cost(network, placement, b, &weight);
                if !accept(after - before, temperature, &mut rng) {
                    placement.set_position(a, pa);
                    placement.set_position(b, pb);
                }
            } else {
                // Displacement within a window.
                let before = incident_cost(network, placement, a, &weight);
                let pa = placement.position(a);
                let window = (region.width_um * 0.1).max(2.0 * ROW_HEIGHT_UM);
                let rows = region.row_count();
                let new_row = rng.gen_range(0..rows);
                let candidate = Point::new(
                    pa.x_um + rng.gen_range(-window..window),
                    region.row_center_y_um(new_row),
                );
                placement.set_position(a, candidate);
                let after = incident_cost(network, placement, a, &weight);
                if !accept(after - before, temperature, &mut rng) {
                    placement.set_position(a, pa);
                }
            }
        }
        temperature *= config.cooling_factor;
        if temperature < 1e-6 {
            temperature = 1e-6;
        }
    }
}

fn accept(delta: f64, temperature: f64, rng: &mut StdRng) -> bool {
    if delta <= 0.0 {
        return true;
    }
    if temperature <= 0.0 {
        return false;
    }
    let p = (-delta / temperature).exp();
    rng.gen_bool(p.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::{GateType, NetworkBuilder};

    fn ripple(bits: usize) -> Network {
        let mut b = NetworkBuilder::new("ripple");
        b.input("cin");
        for i in 0..bits {
            b.input(format!("a{i}"));
            b.input(format!("b{i}"));
        }
        let mut carry = "cin".to_string();
        for i in 0..bits {
            let a = format!("a{i}");
            let bb = format!("b{i}");
            b.gate(format!("p{i}"), GateType::Xor, &[&a, &bb]);
            b.gate(format!("g{i}"), GateType::And, &[&a, &bb]);
            b.gate(format!("s{i}"), GateType::Xor, &[&format!("p{i}"), &carry]);
            b.gate(format!("t{i}"), GateType::And, &[&format!("p{i}"), &carry]);
            b.gate(format!("c{i}"), GateType::Or, &[&format!("g{i}"), &format!("t{i}")]);
            b.output(format!("s{i}"));
            carry = format!("c{i}");
        }
        b.output(carry);
        b.finish().unwrap()
    }

    #[test]
    fn placement_covers_all_gates_within_region() {
        let n = ripple(8);
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 1);
        let region = p.region();
        for g in n.iter_live() {
            let pt = p.position(g);
            assert!(pt.x_um >= 0.0 && pt.x_um <= region.width_um);
            assert!(pt.y_um >= 0.0 && pt.y_um <= region.height_um);
        }
    }

    #[test]
    fn annealing_does_not_increase_wirelength_dramatically() {
        let n = ripple(8);
        let lib = Library::standard_035um();
        let region = size_region(&n, &lib, &PlacerConfig::default());
        let initial = initial_placement(&n, region);
        let initial_hpwl = initial.total_hpwl_um(&n);
        let placed = place(&n, &lib, &PlacerConfig::default(), 1);
        let final_hpwl = placed.total_hpwl_um(&n);
        // Annealing from a reasonable seed should not blow up wire length.
        assert!(final_hpwl <= initial_hpwl * 1.25, "{final_hpwl} vs {initial_hpwl}");
        assert!(final_hpwl > 0.0);
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let n = ripple(4);
        let lib = Library::standard_035um();
        let p1 = place(&n, &lib, &PlacerConfig::fast(), 7);
        let p2 = place(&n, &lib, &PlacerConfig::fast(), 7);
        for g in n.iter_live() {
            assert_eq!(p1.position(g).x_um, p2.position(g).x_um);
            assert_eq!(p1.position(g).y_um, p2.position(g).y_um);
        }
    }

    #[test]
    fn region_grows_with_circuit_size() {
        let lib = Library::standard_035um();
        let small = size_region(&ripple(2), &lib, &PlacerConfig::default());
        let large = size_region(&ripple(16), &lib, &PlacerConfig::default());
        assert!(large.width_um * large.height_um > small.width_um * small.height_um);
        assert!(small.row_count() >= 1);
    }

    #[test]
    fn tiny_network_places_without_panicking() {
        let mut b = NetworkBuilder::new("one");
        b.input("a");
        b.gate("f", GateType::Inv, &["a"]);
        b.output("f");
        let n = b.finish().unwrap();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::default(), 0);
        assert_eq!(p.len(), n.gate_count());
    }
}
