//! The occupancy row model: who sits where, in integer sites.
//!
//! A [`RowModel`] is derived from a **legal** placement (every footprint on
//! the row/site grid, no overlaps — see
//! [`rapids_placement::Placement::check_legal`]) and then kept current by
//! whoever moves gates: the refinement pass releases and re-occupies slots
//! as it relocates gates, and the optimizer's inverting-swap path occupies a
//! slot for every accepted inverter ([`RowModel::nudge_occupy`]).
//!
//! All queries are deterministic: rows and gaps are visited in a fixed
//! order and ties are broken toward the nearer row, then the lower row,
//! then the smaller site, so two runs (and any thread count, since the
//! optimizer only consults the model on the main thread at accept time)
//! agree exactly.

use std::collections::{BTreeMap, HashMap};

use rapids_celllib::Library;
use rapids_netlist::{GateId, Network};
use rapids_placement::{gate_width_sites, Placement, Point, Region};

/// Integer-site occupancy of every standard-cell row.
#[derive(Debug, Clone, PartialEq)]
pub struct RowModel {
    region: Region,
    site_count: usize,
    /// Per row: start site → (width in sites, occupant).  Keys are interval
    /// starts; intervals never overlap (guaranteed by the legal-placement
    /// precondition and checked on every occupy in debug builds).
    rows: Vec<BTreeMap<usize, (usize, GateId)>>,
    /// Reverse index for release: occupant → (row, start site, width).
    gates: HashMap<GateId, (usize, usize, usize)>,
    /// How many [`RowModel::nudge_occupy`] calls found no free slot and
    /// fell back to the caller's default policy.
    nudge_misses: usize,
}

impl RowModel {
    /// Builds the model from a legal placement: every live gate occupies
    /// `gate_width_sites` sites starting at its quantized position.
    ///
    /// # Panics
    ///
    /// Debug builds panic if two footprints collide — i.e. if the placement
    /// was not legal (run [`crate::legalize`] first).
    pub fn build(network: &Network, library: &Library, placement: &Placement) -> Self {
        let region = placement.region();
        let mut model = RowModel {
            region,
            site_count: region.site_count(),
            rows: vec![BTreeMap::new(); region.row_count()],
            gates: HashMap::new(),
            nudge_misses: 0,
        };
        for g in network.iter_live() {
            let p = placement.position(g);
            model.occupy(
                g,
                region.nearest_row(p.y_um),
                region.nearest_site(p.x_um),
                gate_width_sites(network, library, g),
            );
        }
        model
    }

    /// The placement region the model quantizes against.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Number of gates currently occupying a slot.
    pub fn occupied_gates(&self) -> usize {
        self.gates.len()
    }

    /// How many nudge requests found no free slot (the caller then falls
    /// back to stacking the inverter on its driver, which may leave the
    /// grown placement illegal).
    pub fn nudge_misses(&self) -> usize {
        self.nudge_misses
    }

    /// The (row, start site, width) a gate currently occupies, if any.
    pub fn slot_of(&self, gate: GateId) -> Option<(usize, usize, usize)> {
        self.gates.get(&gate).copied()
    }

    /// The placement point of a slot: the left edge of `site`, on the
    /// center line of `row`.
    pub fn slot_point(&self, row: usize, site: usize) -> Point {
        Point::new(self.region.site_x_um(site), self.region.row_center_y_um(row))
    }

    /// `true` when sites `site..site + width` of `row` are inside the row
    /// and free.
    pub fn is_free(&self, row: usize, site: usize, width: usize) -> bool {
        if row >= self.rows.len() || site + width > self.site_count {
            return false;
        }
        let occupied = &self.rows[row];
        // The predecessor interval must end at or before `site` …
        if let Some((&start, &(w, _))) = occupied.range(..site + width).next_back() {
            if start + w > site && start < site + width {
                return false;
            }
        }
        // … and by the range bound above no interval starts inside the
        // candidate, so one backward probe decides it.
        true
    }

    /// Marks `width` sites of `row` starting at `site` as occupied by
    /// `gate`.  The gate must not already hold a slot.
    pub fn occupy(&mut self, gate: GateId, row: usize, site: usize, width: usize) {
        debug_assert!(self.is_free(row, site, width), "occupy of a non-free slot for {gate}");
        debug_assert!(!self.gates.contains_key(&gate), "{gate} already occupies a slot");
        self.rows[row].insert(site, (width, gate));
        self.gates.insert(gate, (row, site, width));
    }

    /// Frees the slot held by `gate`.  Returns `false` (and does nothing)
    /// when the gate holds none — undo paths call this unconditionally.
    pub fn release(&mut self, gate: GateId) -> bool {
        match self.gates.remove(&gate) {
            Some((row, site, _)) => {
                self.rows[row].remove(&site);
                true
            }
            None => false,
        }
    }

    /// The free slot of `width` sites nearest to `desired` (Manhattan
    /// distance from the slot's left edge / row center), or `None` when no
    /// row has a wide-enough gap.  Ties break toward the nearer row, then
    /// the lower row, then the smaller site — a fixed total order, so the
    /// answer depends only on the occupancy state.
    ///
    /// This runs once per accepted ES inverter and per refinement move, so
    /// like the legalizer's row search it walks rows outward from the
    /// desired one and stops as soon as a whole distance ring's y cost
    /// already matches the best slot found — no full-die scan per nudge.
    pub fn nearest_free_slot(&self, desired: Point, width: usize) -> Option<(usize, usize)> {
        let desired_site = self.region.nearest_site(desired.x_um);
        let desired_row = self.region.nearest_row(desired.y_um);
        let row_count = self.rows.len();
        let mut best: Option<(f64, usize, usize)> = None;
        for distance in 0..row_count {
            let below = desired_row.checked_sub(distance);
            let above =
                (distance > 0).then_some(desired_row + distance).filter(|&row| row < row_count);
            if below.is_none() && above.is_none() {
                break;
            }
            let mut ring_min_y_cost = f64::INFINITY;
            for row in [below, above].into_iter().flatten() {
                let y_cost = (self.region.row_center_y_um(row) - desired.y_um).abs();
                ring_min_y_cost = ring_min_y_cost.min(y_cost);
                if best.as_ref().is_some_and(|&(cost, _, _)| y_cost >= cost) {
                    continue;
                }
                if let Some(site) = self.best_gap_in_row(row, width, desired_site) {
                    let cost = y_cost + (self.region.site_x_um(site) - desired.x_um).abs();
                    if best.as_ref().is_none_or(|&(c, _, _)| cost < c) {
                        best = Some((cost, row, site));
                    }
                }
            }
            if best.as_ref().is_some_and(|&(cost, _, _)| ring_min_y_cost >= cost) {
                break;
            }
        }
        best.map(|(_, row, site)| (row, site))
    }

    /// Finds the nearest free slot to `desired`, occupies it for `gate`,
    /// and returns its placement point.  On a miss (no gap anywhere wide
    /// enough) the miss counter is bumped and the caller keeps its default
    /// policy.
    pub fn nudge_occupy(&mut self, gate: GateId, desired: Point, width: usize) -> Option<Point> {
        match self.nearest_free_slot(desired, width) {
            Some((row, site)) => {
                self.occupy(gate, row, site, width);
                rapids_obs::metrics::counter("legalize.nudges").inc();
                Some(self.slot_point(row, site))
            }
            None => {
                self.nudge_misses += 1;
                rapids_obs::metrics::counter("legalize.nudge_fallbacks").inc();
                None
            }
        }
    }

    /// The start site, within one row, of the free gap of at least `width`
    /// sites whose clamped position is nearest to `desired_site`.
    fn best_gap_in_row(&self, row: usize, width: usize, desired_site: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (site distance, site)
        let consider = |gap_start: usize, gap_end: usize, best: &mut Option<(usize, usize)>| {
            if gap_end >= gap_start + width {
                let site = desired_site.clamp(gap_start, gap_end - width);
                let key = (site.abs_diff(desired_site), site);
                if best.is_none_or(|b| key < b) {
                    *best = Some(key);
                }
            }
        };
        let mut frontier = 0usize;
        for (&start, &(w, _)) in &self.rows[row] {
            if start > frontier {
                consider(frontier, start, &mut best);
            }
            frontier = frontier.max(start + w);
        }
        consider(frontier, self.site_count, &mut best);
        best.map(|(_, site)| site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::{GateType, NetworkBuilder};

    fn tiny() -> (Network, Library) {
        let mut b = NetworkBuilder::new("rows");
        b.inputs(["a", "b"]);
        b.gate("f", GateType::Nand, &["a", "b"]);
        b.output("f");
        (b.finish().unwrap(), Library::standard_035um())
    }

    fn empty_model(width_um: f64, rows: usize) -> RowModel {
        let region = Region { width_um, height_um: rows as f64 * 13.0, row_height_um: 13.0 };
        RowModel {
            region,
            site_count: region.site_count(),
            rows: vec![BTreeMap::new(); rows],
            gates: HashMap::new(),
            nudge_misses: 0,
        }
    }

    #[test]
    fn build_reflects_the_placement() {
        let (n, lib) = tiny();
        let region = Region { width_um: 80.0, height_um: 26.0, row_height_um: 13.0 };
        let mut p = Placement::new(region, n.gate_count());
        let ids: Vec<GateId> = n.iter_live().collect();
        for (i, &g) in ids.iter().enumerate() {
            p.set_position(g, Point::new(region.site_x_um(i * 10), region.row_center_y_um(0)));
        }
        let model = RowModel::build(&n, &lib, &p);
        assert_eq!(model.occupied_gates(), ids.len());
        let (row, site, w) = model.slot_of(ids[1]).unwrap();
        assert_eq!((row, site), (0, 10));
        assert!(w >= 1);
    }

    #[test]
    fn occupy_release_round_trips_exactly() {
        let mut model = empty_model(40.0, 2);
        let before = model.clone();
        model.occupy(GateId(7), 1, 12, 6);
        assert!(!model.is_free(1, 10, 4), "tail of the candidate is taken");
        assert!(!model.is_free(1, 14, 2), "middle of the interval is taken");
        assert!(model.is_free(1, 6, 6));
        assert!(model.is_free(1, 18, 6));
        assert!(model.release(GateId(7)));
        assert!(!model.release(GateId(7)), "double release is a no-op");
        assert_eq!(model, before, "occupy → release must round-trip the state exactly");
    }

    #[test]
    fn nearest_slot_prefers_same_row_and_clamps_into_gaps() {
        let mut model = empty_model(40.0, 3); // 50 sites per row
                                              // Row 1 is blocked at sites 20..30; desired lands inside the block.
        model.occupy(GateId(1), 1, 20, 10);
        let desired = model.slot_point(1, 24);
        let (row, site) = model.nearest_free_slot(desired, 4).unwrap();
        // The nearest gap edge in the same row wins over a row change.
        assert_eq!(row, 1);
        assert!(site == 16 || site == 30, "clamped against the blocked interval, got {site}");
        // A slot wider than any gap in row 1 must fit elsewhere.
        model.occupy(GateId(2), 1, 0, 20);
        model.occupy(GateId(3), 1, 30, 20);
        let (row, _) = model.nearest_free_slot(desired, 4).unwrap();
        assert_ne!(row, 1);
    }

    #[test]
    fn nudge_occupies_and_counts_misses() {
        let mut model = empty_model(8.0, 1); // 10 sites, one row
        let p = model.nudge_occupy(GateId(4), Point::new(0.0, 6.5), 6).unwrap();
        assert_eq!(model.slot_of(GateId(4)), Some((0, 0, 6)));
        assert_eq!(model.region().nearest_site(p.x_um), 0);
        // Only 4 sites remain: a 6-site request misses and is counted.
        assert!(model.nudge_occupy(GateId(5), Point::new(0.0, 6.5), 6).is_none());
        assert_eq!(model.nudge_misses(), 1);
        // A 4-site request still fits.
        assert!(model.nudge_occupy(GateId(5), Point::new(0.0, 6.5), 4).is_some());
        assert_eq!(model.occupied_gates(), 2);
    }

    #[test]
    fn ties_break_toward_the_nearer_row_then_lower_then_smaller_site() {
        let model = empty_model(40.0, 4);
        // Desired exactly between rows 1 and 2: both cost 6.5 µm in y, and
        // the search starts from the quantized nearest row (2, rounding
        // half up), so the distance-0 ring wins the tie deterministically.
        let desired = Point::new(model.region().site_x_um(5), 2.0 * 13.0);
        let (row, site) = model.nearest_free_slot(desired, 4).unwrap();
        assert_eq!((row, site), (2, 5));
        // On the center line of a row there is no tie at all.
        let centered = Point::new(model.region().site_x_um(5), model.region().row_center_y_um(1));
        assert_eq!(model.nearest_free_slot(centered, 4), Some((1, 5)));
        // Within one ring the lower row wins: block row 2 so rows 1 and 3
        // (equidistant from `desired`'s ring-0 row) compete at distance 1.
        let mut blocked = model.clone();
        blocked.occupy(GateId(9), 2, 0, 50);
        let (row, site) = blocked.nearest_free_slot(desired, 4).unwrap();
        assert_eq!((row, site), (1, 5));
    }
}
