//! # rapids-legalize
//!
//! Row-based legalization and detailed placement for the RAPIDS flow.
//!
//! The paper's optimizer scores every rewiring and sizing decision against
//! real gate positions, but the annealing placer emits continuous x
//! coordinates (cells overlap freely) and the inverting-swap path used to
//! stack inserted inverters directly on their drivers.  This crate makes the
//! physical side of the flow trustworthy with three engines over one shared
//! row model:
//!
//! * [`RowModel`] — integer-site occupancy per standard-cell row, derived
//!   from [`Placement`] geometry and library footprints
//!   ([`rapids_placement::gate_width_sites`]), with a deterministic
//!   nearest-free-slot query;
//! * [`legalize`] — an Abacus-style full legalizer: overlap-free result,
//!   per-row cluster collapse toward minimal displacement, stable
//!   tie-breaks (lower row, then smaller site, then
//!   [`rapids_netlist::GateId`]);
//! * [`refine_worst_slack`] — a timing-driven detailed-placement pass that
//!   relocates the K worst-slack gates toward their star-optimal point
//!   within a displacement budget, validating every move with
//!   [`rapids_timing::IncrementalSta`] and reverting moves that hurt the
//!   critical path.
//!
//! Everything is sequential and deterministic: the legalizer and the
//! refinement pass run once per design in the pipeline's `legalize` stage,
//! and the nudger's accept-time-only use by the optimizer keeps decisions
//! thread-count invariant (see `rapids_sizing::parallel`, the `threads`
//! determinism contract).
//!
//! ```
//! use rapids_celllib::Library;
//! use rapids_netlist::{GateType, NetworkBuilder};
//! use rapids_placement::{place, PlacerConfig};
//! use rapids_legalize::{legalize, RowModel};
//!
//! let mut b = NetworkBuilder::new("demo");
//! b.inputs(["a", "b", "c"]);
//! b.gate("n1", GateType::Nand, &["a", "b"]);
//! b.gate("f", GateType::Nand, &["n1", "c"]);
//! b.output("f");
//! let network = b.finish().unwrap();
//! let library = Library::standard_035um();
//! let mut placement = place(&network, &library, &PlacerConfig::fast(), 42);
//! let outcome = legalize(&network, &library, &mut placement);
//! placement.assert_legal(&network, &library);
//! let rows = RowModel::build(&network, &library, &placement);
//! assert_eq!(outcome.unplaced_gates, 0);
//! assert!(rows.occupied_gates() >= 5);
//! ```

pub mod abacus;
pub mod refine;
pub mod rows;

pub use abacus::{legalize, LegalizeOutcome};
pub use refine::{refine_worst_slack, RefineConfig, RefineOutcome};
pub use rows::RowModel;

use rapids_placement::Placement;

/// Flow-level knobs of the legalization subsystem (carried by
/// `rapids_flow::PipelineConfig::legalize`).
///
/// With `enabled == false` (the default) the subsystem is completely inert:
/// no placement is touched, no row model is built, and the flow's output is
/// bit-identical to the pre-legalization behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct LegalizeConfig {
    /// Run the legalize stage (full legalization + optional refinement)
    /// after placement, and hand the optimizer a row model.
    pub enabled: bool,
    /// Let the optimizer's inverting-swap path place each *accepted*
    /// inverter in the nearest genuinely free row slot instead of stacking
    /// it on its driver (only meaningful while `enabled`).
    pub nudge_es: bool,
    /// How many worst-slack gates the timing-driven refinement pass may
    /// relocate (0 disables the pass).
    pub refine_worst_k: usize,
    /// Maximum Manhattan displacement the refinement pass may apply to one
    /// gate, µm.
    pub refine_budget_um: f64,
}

impl Default for LegalizeConfig {
    fn default() -> Self {
        LegalizeConfig {
            enabled: false,
            nudge_es: true,
            refine_worst_k: 8,
            // Three row heights: far enough to escape a crowded stretch,
            // close enough that the star/Elmore estimates stay local.
            refine_budget_um: 3.0 * rapids_celllib::ROW_HEIGHT_UM,
        }
    }
}

impl LegalizeConfig {
    /// The default knob set with the stage switched on.
    pub fn enabled() -> Self {
        LegalizeConfig { enabled: true, ..Self::default() }
    }
}

/// Convenience used by tests and the flow's safety nets: `true` when the
/// placement is legal for the network under the library's footprints.
pub fn is_legal(
    placement: &Placement,
    network: &rapids_netlist::Network,
    library: &rapids_celllib::Library,
) -> bool {
    placement.check_legal(network, library).is_ok()
}
