//! Timing-driven detailed-placement refinement.
//!
//! After full legalization the K worst-slack logic gates are offered one
//! relocation each: toward the star-optimal point of their incident nets
//! (the coordinate-wise median of fan-in drivers and fan-out sinks),
//! clamped into a displacement budget, and snapped into the nearest
//! genuinely free row slot.  Every move is validated with a dirty-cone
//! [`IncrementalSta`] update; a move that degrades the critical path is
//! reverted on the spot, so the pass is monotone on the design's delay.
//!
//! The pass runs once per design inside the pipeline's legalize stage,
//! sequentially and deterministically (slack ties break on [`GateId`]).

use rapids_celllib::Library;
use rapids_netlist::{GateId, Network};
use rapids_placement::{gate_width_sites, Placement, Point};
use rapids_timing::{IncrementalSta, TimingConfig};

use crate::rows::RowModel;

/// Knobs of the refinement pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineConfig {
    /// How many worst-slack gates to visit.
    pub worst_k: usize,
    /// Maximum Manhattan displacement per relocated gate, µm.
    pub displacement_budget_um: f64,
}

/// What the refinement pass did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOutcome {
    /// Gates visited (≤ `worst_k`).
    pub attempted: usize,
    /// Gates actually relocated (move kept after re-timing).
    pub moved_gates: usize,
    /// Critical-path delay before the pass, ns.
    pub delay_before_ns: f64,
    /// Critical-path delay after the pass, ns (never worse than before).
    pub delay_after_ns: f64,
}

/// The coordinate-wise median of a gate's neighbor positions — the point
/// minimizing total Manhattan wire length to them (ties to the lower
/// median, a fixed deterministic choice).
fn star_optimal_point(network: &Network, placement: &Placement, gate: GateId) -> Option<Point> {
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for &neighbor in network.fanins(gate).iter().chain(network.fanouts(gate)) {
        let p = placement.position(neighbor);
        xs.push(p.x_um);
        ys.push(p.y_um);
    }
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    Some(Point::new(xs[(xs.len() - 1) / 2], ys[(ys.len() - 1) / 2]))
}

/// Relocates up to `config.worst_k` worst-slack gates within the
/// displacement budget, keeping `placement` and `rows` coherent and legal.
/// The placement must be legal and `rows` must reflect it (build the model
/// with [`RowModel::build`] after [`crate::legalize`]).
pub fn refine_worst_slack(
    network: &Network,
    library: &Library,
    placement: &mut Placement,
    rows: &mut RowModel,
    timing: &TimingConfig,
    config: &RefineConfig,
) -> RefineOutcome {
    let mut inc = IncrementalSta::new(network, library, placement, timing);
    let delay_before_ns = inc.report().critical_delay_ns();
    let mut outcome = RefineOutcome {
        attempted: 0,
        moved_gates: 0,
        delay_before_ns,
        delay_after_ns: delay_before_ns,
    };
    if config.worst_k == 0 {
        return outcome;
    }

    // The K worst-slack logic gates (sources are pad-like and stay put);
    // ties break on the id so the visit order is reproducible.
    let mut targets: Vec<GateId> = network.iter_logic().collect();
    let report = inc.report();
    targets.sort_by(|&a, &b| report.slack(a).total_cmp(&report.slack(b)).then(a.cmp(&b)));
    targets.truncate(config.worst_k);

    let budget = config.displacement_budget_um;
    for gate in targets {
        outcome.attempted += 1;
        let Some(star) = star_optimal_point(network, placement, gate) else {
            continue;
        };
        let current = placement.position(gate);
        // Aim at the star point, clamped into the budget box around the
        // current location so the slot search cannot wander off.
        let desired = Point::new(
            star.x_um.clamp(current.x_um - budget, current.x_um + budget),
            star.y_um.clamp(current.y_um - budget, current.y_um + budget),
        );
        let width = gate_width_sites(network, library, gate);
        let Some((old_row, old_site, _)) = rows.slot_of(gate) else {
            continue;
        };
        // Free the gate's own slot first so "stay in place" is always an
        // available answer to the query.
        rows.release(gate);
        let slot = rows.nearest_free_slot(desired, width);
        let target = match slot {
            Some((row, site)) => rows.slot_point(row, site),
            None => current,
        };
        if target == current || current.manhattan_distance_um(&target) > budget {
            rows.occupy(gate, old_row, old_site, width);
            continue;
        }
        let (row, site) = slot.expect("a distinct target implies a found slot");
        rows.occupy(gate, row, site, width);
        placement.set_position(gate, target);
        let before = inc.report().critical_delay_ns();
        inc.update(network, library, placement, &[gate]);
        if inc.report().critical_delay_ns() > before + 1e-9 {
            // The move hurt the critical path: put everything back.
            rows.release(gate);
            rows.occupy(gate, old_row, old_site, width);
            placement.set_position(gate, current);
            inc.update(network, library, placement, &[gate]);
        } else {
            outcome.moved_gates += 1;
        }
    }
    outcome.delay_after_ns = inc.report().critical_delay_ns();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legalize;
    use rapids_circuits::benchmark;
    use rapids_placement::{place, PlacerConfig};

    fn legalized(name: &str, seed: u64) -> (Network, Library, Placement, RowModel) {
        let network = benchmark(name).unwrap();
        let library = Library::standard_035um();
        let mut placement = place(&network, &library, &PlacerConfig::fast(), seed);
        legalize(&network, &library, &mut placement);
        let rows = RowModel::build(&network, &library, &placement);
        (network, library, placement, rows)
    }

    #[test]
    fn refinement_never_degrades_delay_and_stays_legal() {
        let (network, library, mut placement, mut rows) = legalized("c432", 7);
        let config = RefineConfig { worst_k: 16, displacement_budget_um: 40.0 };
        let outcome = refine_worst_slack(
            &network,
            &library,
            &mut placement,
            &mut rows,
            &TimingConfig::default(),
            &config,
        );
        assert_eq!(outcome.attempted, 16);
        assert!(outcome.delay_after_ns <= outcome.delay_before_ns + 1e-9);
        placement.assert_legal(&network, &library);
        // The row model still mirrors the placement exactly.
        assert_eq!(rows, RowModel::build(&network, &library, &placement));
    }

    #[test]
    fn moves_respect_the_displacement_budget() {
        let (network, library, mut placement, mut rows) = legalized("alu2", 3);
        let frozen = placement.clone();
        let budget = 26.0;
        let config = RefineConfig { worst_k: 12, displacement_budget_um: budget };
        refine_worst_slack(
            &network,
            &library,
            &mut placement,
            &mut rows,
            &TimingConfig::default(),
            &config,
        );
        for g in network.iter_live() {
            let moved = frozen.position(g).manhattan_distance_um(&placement.position(g));
            assert!(moved <= budget + 1e-9, "{g} moved {moved} µm > budget {budget}");
        }
    }

    #[test]
    fn zero_k_is_a_no_op() {
        let (network, library, mut placement, mut rows) = legalized("c432", 7);
        let frozen = placement.clone();
        let config = RefineConfig { worst_k: 0, displacement_budget_um: 40.0 };
        let outcome = refine_worst_slack(
            &network,
            &library,
            &mut placement,
            &mut rows,
            &TimingConfig::default(),
            &config,
        );
        assert_eq!((outcome.attempted, outcome.moved_gates), (0, 0));
        for g in network.iter_live() {
            assert_eq!(placement.position(g), frozen.position(g));
        }
    }
}
