//! Abacus-style full legalization.
//!
//! Cells are visited in order of increasing x (ties on [`GateId`]) and
//! inserted into the row minimizing their displacement.  Inside a row the
//! classic Abacus cluster machinery keeps the result optimal for the cells
//! already placed: each cell joins a fresh cluster at its desired site, and
//! overlapping clusters collapse into one whose position is the mean of its
//! cells' desired positions (clamped into the row) — cells are pushed just
//! far enough apart to remove every overlap while the cluster's total
//! quadratic displacement stays minimal.
//!
//! All positions are integer **sites** ([`rapids_celllib::SITE_WIDTH_UM`]
//! wide), so the emitted placement is exactly on the grid that
//! [`rapids_placement::Placement::check_legal`] and the
//! [`crate::RowModel`] quantize against, and every comparison is exact.
//! The pass is sequential and fully deterministic.

use rapids_celllib::Library;
use rapids_netlist::{GateId, Network};
use rapids_placement::{gate_width_sites, Placement, Point};

/// What the legalizer did to the placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegalizeOutcome {
    /// Gates whose position changed.
    pub moved_gates: usize,
    /// Sum of the per-gate Manhattan displacements, µm.
    pub total_displacement_um: f64,
    /// Largest single-gate Manhattan displacement, µm.
    pub max_displacement_um: f64,
    /// Total half-perimeter wire length before, µm.
    pub hpwl_before_um: f64,
    /// Total half-perimeter wire length after, µm.
    pub hpwl_after_um: f64,
    /// Gates no row could host (die over capacity); they keep their
    /// original position and the result is *not* legal.  Always 0 for the
    /// utilizations the flow's placer produces.
    pub unplaced_gates: usize,
}

/// One Abacus cluster: a maximal run of touching cells in a row.
#[derive(Debug, Clone, Copy)]
struct Cluster {
    /// Left edge, sites (valid after the final collapse).
    site: i64,
    /// Number of member cells.
    weight: i64,
    /// Σ (desired site − offset inside the cluster) over member cells; the
    /// optimal cluster position is `q / weight`.
    q: i64,
    /// Total width, sites.
    width: i64,
    /// Index of the cluster's first cell in the row's `cells` list.
    start: usize,
}

/// Per-row state: cells in insertion (= x) order plus the cluster chain.
#[derive(Debug, Clone, Default)]
struct Row {
    cells: Vec<(GateId, i64)>,
    clusters: Vec<Cluster>,
    used_sites: i64,
}

fn clamp_position(q: i64, weight: i64, width: i64, capacity: i64) -> i64 {
    let ideal = (q as f64 / weight as f64).round() as i64;
    ideal.clamp(0, capacity - width)
}

/// Simulates inserting a cell of `width` sites at `desired` into the row
/// and returns the site the cell itself would land on, without mutating
/// anything.  `None` when the row is out of capacity.
fn trial(row: &Row, capacity: i64, width: i64, desired: i64) -> Option<i64> {
    if row.used_sites + width > capacity {
        return None;
    }
    let (mut weight, mut q, mut total_width) = (1i64, desired, width);
    let mut position = clamp_position(q, weight, total_width, capacity);
    for predecessor in row.clusters.iter().rev() {
        if predecessor.site + predecessor.width <= position {
            break;
        }
        // Collapse into the predecessor: the current cells' offsets all
        // shift right by the predecessor's width.
        q = predecessor.q + (q - weight * predecessor.width);
        weight += predecessor.weight;
        total_width += predecessor.width;
        position = clamp_position(q, weight, total_width, capacity);
    }
    Some(position + total_width - width)
}

/// Commits the insertion [`trial`] simulated (same math, mutating).
fn commit(row: &mut Row, capacity: i64, gate: GateId, width: i64, desired: i64) {
    let start = row.cells.len();
    row.cells.push((gate, width));
    row.used_sites += width;
    let mut current = Cluster { site: 0, weight: 1, q: desired, width, start };
    loop {
        let position = clamp_position(current.q, current.weight, current.width, capacity);
        match row.clusters.last() {
            Some(p) if p.site + p.width > position => {
                let p = row.clusters.pop().expect("last cluster exists");
                current = Cluster {
                    site: 0,
                    weight: p.weight + current.weight,
                    q: p.q + (current.q - current.weight * p.width),
                    width: p.width + current.width,
                    start: p.start,
                };
            }
            _ => {
                current.site = position;
                row.clusters.push(current);
                return;
            }
        }
    }
}

/// Legalizes the placement in place: every live gate ends on the row/site
/// grid, overlap-free, near its original position.  Returns the
/// displacement and wire-length deltas.  Primary inputs are legalized like
/// cells (they are pad-like rows entries in this flow, not fixed periphery
/// IO), so the whole result is grid-clean.
pub fn legalize(
    network: &Network,
    library: &Library,
    placement: &mut Placement,
) -> LegalizeOutcome {
    let region = placement.region();
    let capacity = region.site_count() as i64;
    let row_count = region.row_count();
    let hpwl_before_um = placement.total_hpwl_um(network);

    // Visit order: increasing x, ties on the id — the Abacus sweep order,
    // which keeps each row's cells sorted without ever reordering them.
    let mut cells: Vec<(GateId, Point, i64)> = network
        .iter_live()
        .map(|g| (g, placement.position(g), gate_width_sites(network, library, g) as i64))
        .collect();
    cells.sort_by(|a, b| a.1.x_um.total_cmp(&b.1.x_um).then(a.0.cmp(&b.0)));

    let mut rows: Vec<Row> = vec![Row::default(); row_count];
    let mut unplaced_gates = 0usize;
    for &(gate, origin, width) in &cells {
        let desired_site = region.nearest_site(origin.x_um) as i64;
        let desired_row = region.nearest_row(origin.y_um);
        // Walk rows outward from the desired one (lower row first at each
        // distance — the deterministic tie-break order) without
        // materializing an order vector; y cost grows monotonically with
        // the distance on each side, so once both rows of a distance ring
        // cost at least the best found, no farther row can win.
        let mut best: Option<(f64, usize, i64)> = None;
        for distance in 0..row_count {
            let below = desired_row.checked_sub(distance);
            let above =
                (distance > 0).then_some(desired_row + distance).filter(|&row| row < row_count);
            if below.is_none() && above.is_none() {
                break;
            }
            let mut ring_min_y_cost = f64::INFINITY;
            for row in [below, above].into_iter().flatten() {
                let y_cost = (region.row_center_y_um(row) - origin.y_um).abs();
                ring_min_y_cost = ring_min_y_cost.min(y_cost);
                if best.as_ref().is_some_and(|&(cost, _, _)| y_cost >= cost) {
                    continue;
                }
                if let Some(site) = trial(&rows[row], capacity, width, desired_site) {
                    let cost = y_cost + (region.site_x_um(site as usize) - origin.x_um).abs();
                    if best.as_ref().is_none_or(|&(c, _, _)| cost < c) {
                        best = Some((cost, row, site));
                    }
                }
            }
            if best.as_ref().is_some_and(|&(cost, _, _)| ring_min_y_cost >= cost) {
                break;
            }
        }
        match best {
            Some((_, row, _)) => commit(&mut rows[row], capacity, gate, width, desired_site),
            None => unplaced_gates += 1,
        }
    }

    // Emit final positions: each cluster's cells at consecutive offsets.
    let mut moved_gates = 0usize;
    let mut total_displacement_um = 0.0f64;
    let mut max_displacement_um = 0.0f64;
    for (r, row) in rows.iter().enumerate() {
        let y_um = region.row_center_y_um(r);
        for (c, cluster) in row.clusters.iter().enumerate() {
            let end = row.clusters.get(c + 1).map_or(row.cells.len(), |next| next.start);
            let mut site = cluster.site;
            for &(gate, width) in &row.cells[cluster.start..end] {
                let target = Point::new(region.site_x_um(site as usize), y_um);
                let displacement = placement.position(gate).manhattan_distance_um(&target);
                if displacement > 0.0 {
                    moved_gates += 1;
                    total_displacement_um += displacement;
                    max_displacement_um = max_displacement_um.max(displacement);
                    placement.set_position(gate, target);
                }
                site += width;
            }
        }
    }

    LegalizeOutcome {
        moved_gates,
        total_displacement_um,
        max_displacement_um,
        hpwl_before_um,
        hpwl_after_um: placement.total_hpwl_um(network),
        unplaced_gates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_circuits::benchmark;
    use rapids_placement::{place, PlacerConfig};

    #[test]
    fn legalized_suite_design_is_overlap_free() {
        let network = benchmark("c432").unwrap();
        let library = Library::standard_035um();
        let mut placement = place(&network, &library, &PlacerConfig::fast(), 7);
        assert!(
            placement.check_legal(&network, &library).is_err(),
            "the annealed placement overlaps — otherwise this test is vacuous"
        );
        let outcome = legalize(&network, &library, &mut placement);
        placement.assert_legal(&network, &library);
        assert_eq!(outcome.unplaced_gates, 0);
        assert!(outcome.moved_gates > 0);
        assert!(outcome.max_displacement_um <= outcome.total_displacement_um);
        assert!(outcome.hpwl_after_um > 0.0);
    }

    #[test]
    fn legalization_is_idempotent() {
        let network = benchmark("alu2").unwrap();
        let library = Library::standard_035um();
        let mut placement = place(&network, &library, &PlacerConfig::fast(), 3);
        legalize(&network, &library, &mut placement);
        let frozen = placement.clone();
        let again = legalize(&network, &library, &mut placement);
        assert_eq!(again.moved_gates, 0, "a legal placement must be a fixpoint");
        assert_eq!(again.total_displacement_um, 0.0);
        for g in network.iter_live() {
            assert_eq!(placement.position(g), frozen.position(g));
        }
    }

    #[test]
    fn legalization_is_deterministic() {
        let network = benchmark("c499").unwrap();
        let library = Library::standard_035um();
        let run = || {
            let mut placement = place(&network, &library, &PlacerConfig::fast(), 11);
            let outcome = legalize(&network, &library, &mut placement);
            let coords: Vec<(f64, f64)> = network
                .iter_live()
                .map(|g| (placement.position(g).x_um, placement.position(g).y_um))
                .collect();
            (outcome, coords)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn displacement_stays_local_on_a_low_utilization_die() {
        // The flow's default die is pad-limited (15% rows utilization):
        // resolving overlaps must only push cells around locally, not
        // across the die.
        let network = benchmark("alu4").unwrap();
        let library = Library::standard_035um();
        let mut placement = place(
            &network,
            &library,
            &PlacerConfig { utilization: 0.15, ..PlacerConfig::fast() },
            5,
        );
        let region = placement.region();
        let outcome = legalize(&network, &library, &mut placement);
        placement.assert_legal(&network, &library);
        assert!(
            outcome.max_displacement_um <= (region.width_um + region.height_um) / 4.0,
            "max displacement {} is not local for a {}x{} die",
            outcome.max_displacement_um,
            region.width_um,
            region.height_um
        );
    }
}
