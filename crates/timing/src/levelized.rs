//! Levelized struct-of-arrays STA kernel: batched per-level sweeps over a
//! compiled view of the network.
//!
//! [`Sta::analyze`](crate::Sta::analyze) historically walked the network
//! gate by gate — every fan-in visit chased a `Vec<GateId>` allocation, every
//! wire-delay lookup linearly scanned the driver's sink list, and the net
//! parasitics of each gate were star-decomposed **twice** (once for the net
//! delays, once more inside the cell-delay load query).  This module
//! restructures the full analysis into per-level batched sweeps over flat
//! arrays:
//!
//! * [`LevelizedView`] is a one-time **compiled view** of the network:
//!   the live gates in level-major order (level buckets delimited by a flat
//!   offsets array), CSR-style fan-in/fan-out edge arrays
//!   ([`rapids_netlist::FlatAdjacency`]), a per-slot polarity class, the
//!   output-driver mask, and per-edge wire-delay slots filled once per sweep;
//! * `full` analysis becomes: one parasitic pass in level order (each star
//!   built **once**, the cell delay derived from the same Elmore total), one
//!   wire-delay scatter (each sink list walked once instead of once per
//!   lookup), one forward level sweep for arrivals and one backward level
//!   sweep for raw required times.
//!
//! Gates within a level are independent by construction — arrivals read only
//! strictly lower levels, required times only strictly higher levels, and
//! every gate writes its own slot — so within-level chunks parallelize with
//! **bit-identical results for any thread count**: there is no reduction
//! across gates whose order could vary.  Workers write disjoint chunks of a
//! per-level scratch buffer that is scattered back serially.
//!
//! On top of the compiled view, the forward sweep structurally hashes each
//! mapped gate (polarity kind + ordered leaf-driver set + wire/load bit
//! signature): two gates with identical hash keys provably compute identical
//! arrivals, so the evaluation runs once and is broadcast
//! ([`SweepStats::dedup_reused`] counts the reuses).
//!
//! # Compiled-view lifecycle
//!
//! A view is valid for the structure it was built from.  The rules, asserted
//! in debug builds by the consumers:
//!
//! * **full analysis** ([`analyze`],
//!   [`IncrementalSta::full`](crate::IncrementalSta::full)) always
//!   rebuilds the view — structure,
//!   levels and edges are all fresh;
//! * **growth** (inverting swaps appended gates) rebuilds the view in place
//!   with no parasitic work, exactly like the cached topological order it
//!   replaces;
//! * **local edits** (pin swaps, resizes) leave the view's *levels* usable as
//!   a schedule — the incremental engine verifies `level(fanin) <
//!   level(gate)` for every touched gate and falls back to a full rebuild on
//!   violation — but its CSR edge and wire arrays are stale, so dirty-cone
//!   updates read the live network adjacency instead
//!   ([`crate::incremental`]).
//!
//! Every value this kernel produces is bit-identical to the reference
//! analyzer ([`Sta::analyze_reference`](crate::Sta::analyze_reference)): the
//! per-gate fold orders (pin order forward, fan-out list order backward) are
//! preserved exactly, and the wire-delay scatter replicates the historical
//! first-match lookup semantics for multi-pin sinks.

use rapids_celllib::{cell_delay, CellDelay, Library};
use rapids_netlist::{topo, FlatAdjacency, GateId, Network};
use rapids_placement::{net_star, Placement};

use crate::elmore::{net_delays, NetDelays};
use crate::rc::TimingConfig;
use crate::sta::{clamp_required, output_driver_mask, ArrivalTime, TimingReport};

/// Polarity class of a gate, precomputed so the sweep kernels never touch
/// the gate table.
const KIND_SOURCE: u8 = 0;
const KIND_XOR: u8 = 1;
const KIND_INVERTING: u8 = 2;
const KIND_PLAIN: u8 = 3;

/// Below this many gates a level (or the whole parasitic pass) runs
/// serially: spawning threads costs more than the sweep itself.
pub(crate) const MIN_PARALLEL_ITEMS: usize = 64;

/// Work counters of one full levelized sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Arrival evaluations answered by the structural-hash dedup (the gate's
    /// kind, ordered driver set and wire/load signature matched an earlier
    /// gate of the same level, so its arrival was broadcast, not computed).
    pub dedup_reused: usize,
}

/// Compiled struct-of-arrays view of a network for level-batched sweeps.
///
/// See the [module docs](self) for the lifecycle rules.
#[derive(Debug, Clone)]
pub struct LevelizedView {
    /// Gate-slot count of the network this view was compiled from.
    slots: usize,
    /// Live gates in level-major order (level 0 first); within a level,
    /// gates keep their Kahn-order relative sequence, so the order is
    /// deterministic.
    order: Vec<GateId>,
    /// `level_offsets[l]..level_offsets[l + 1]` delimits level `l` in
    /// `order`; length `num_levels + 1`.
    level_offsets: Vec<u32>,
    /// Logic level per slot; `u32::MAX` for tomb-stoned slots.
    level: Vec<u32>,
    /// Polarity class per slot (`KIND_*`).
    kind: Vec<u8>,
    /// `true` per slot for gates driving a primary-output port.
    drives_output: Vec<bool>,
    /// CSR fan-in/fan-out snapshot (pin order / fan-out list order).
    adjacency: FlatAdjacency,
    /// Wire delay per fan-in edge (driver → this pin), filled by
    /// [`LevelizedView::scatter_wire_delays`]; 0.0 where the driver's net
    /// has no entry, matching the historical `unwrap_or(0.0)`.
    fanin_wire: Vec<f64>,
    /// Wire delay per fan-out edge (this gate → sink pin), first-match
    /// semantics per sink gate.
    fanout_wire: Vec<f64>,
}

impl LevelizedView {
    /// Compiles the view for the network's current structure, or `None` if
    /// the network is cyclic.
    pub fn build(network: &Network) -> Option<Self> {
        let slots = network.gate_count();
        let kahn = topo::topological_order(network)?;
        let levels = topo::levels_from_order(network, &kahn);
        let mut level = vec![u32::MAX; slots];
        let mut num_levels = 0usize;
        for &g in &kahn {
            let l = levels[g.index()];
            level[g.index()] = l as u32;
            num_levels = num_levels.max(l + 1);
        }
        // Counting sort of the Kahn order by level: stable, so the
        // within-level sequence is deterministic.
        let mut offsets = vec![0u32; num_levels + 1];
        for &g in &kahn {
            offsets[levels[g.index()] + 1] += 1;
        }
        for l in 1..offsets.len() {
            offsets[l] += offsets[l - 1];
        }
        let mut cursor = offsets.clone();
        let mut order = vec![GateId(0); kahn.len()];
        for &g in &kahn {
            let l = levels[g.index()];
            order[cursor[l] as usize] = g;
            cursor[l] += 1;
        }
        let kind = (0..slots)
            .map(|s| {
                let id = GateId(s as u32);
                if !network.is_live(id) {
                    return KIND_SOURCE;
                }
                let t = network.gate(id).gtype;
                if t.is_source() {
                    KIND_SOURCE
                } else if t.is_xor_family() {
                    KIND_XOR
                } else if t.output_inverted() {
                    KIND_INVERTING
                } else {
                    KIND_PLAIN
                }
            })
            .collect();
        let adjacency = FlatAdjacency::build(network);
        let fanin_wire = vec![0.0; adjacency.fanin_edge_count()];
        let fanout_wire = vec![0.0; adjacency.fanout_edge_count()];
        Some(LevelizedView {
            slots,
            order,
            level_offsets: offsets,
            level,
            kind,
            drives_output: output_driver_mask(network),
            adjacency,
            fanin_wire,
            fanout_wire,
        })
    }

    /// Gate-slot count of the compiled structure (the invalidation check of
    /// every consumer: a network that grew or shrank past this no longer
    /// matches the view).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of levels (0 for an empty network).
    pub fn num_levels(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// The live gates in level-major order — a valid topological order.
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Logic level of a slot (`u32::MAX` for tomb-stoned slots).
    pub fn level_of(&self, gate: GateId) -> u32 {
        self.level[gate.index()]
    }

    /// `true` if `gate` drives a primary-output port (as of compile time).
    pub(crate) fn drives_output(&self, gate: GateId) -> bool {
        self.drives_output[gate.index()]
    }

    /// Fills the per-edge wire-delay arrays from freshly computed net
    /// parasitics.  Each driver's sink list is walked exactly once; the
    /// first entry per sink gate wins, replicating
    /// [`NetDelays::delay_to_ns`]'s first-match semantics for sinks that
    /// appear once per driven pin.
    fn scatter_wire_delays(&mut self, nets: &[Option<NetDelays>]) {
        self.fanin_wire.fill(0.0);
        self.fanout_wire.fill(0.0);
        // `seen[s] == f.0` marks that sink s's first-match delay for driver
        // f is already in `first[s]` (each driver is visited once, so the
        // driver id is a free epoch marker).
        let mut seen = vec![u32::MAX; self.slots];
        let mut first = vec![0.0f64; self.slots];
        for &f in &self.order {
            let Some(nd) = nets[f.index()].as_ref() else { continue };
            let fo_range = self.adjacency.fanout_range(f.index());
            debug_assert_eq!(
                fo_range.len(),
                nd.sink_delays_ns.len(),
                "net parasitics must match the compiled fan-out edges"
            );
            for (k, &(s, d)) in nd.sink_delays_ns.iter().enumerate() {
                if seen[s.index()] != f.0 {
                    seen[s.index()] = f.0;
                    first[s.index()] = d;
                    let fi_range = self.adjacency.fanin_range(s.index());
                    for (j, &driver) in self.adjacency.fanins_of(s.index()).iter().enumerate() {
                        if driver == f.0 {
                            self.fanin_wire[fi_range.start + j] = d;
                        }
                    }
                }
                self.fanout_wire[fo_range.start + k] = first[s.index()];
            }
        }
    }

    /// Forward kernel over the flat arrays: bit-identical to
    /// [`crate::sta::arrival_of`] (same pin order, same operation sequence,
    /// wire delays resolved through the scattered first-match values).
    fn arrival_of_flat(
        &self,
        gate: usize,
        gate_delays: &[CellDelay],
        arrival: &[ArrivalTime],
    ) -> ArrivalTime {
        let kind = self.kind[gate];
        if kind == KIND_SOURCE {
            return ArrivalTime::default();
        }
        let d = gate_delays[gate];
        let range = self.adjacency.fanin_range(gate);
        let wires = &self.fanin_wire[range.clone()];
        let mut out = ArrivalTime { rise_ns: 0.0, fall_ns: 0.0 };
        for (&f, &wire) in self.adjacency.fanins_of(gate).iter().zip(wires) {
            let a = arrival[f as usize];
            let in_rise = a.rise_ns + wire;
            let in_fall = a.fall_ns + wire;
            let (cand_rise, cand_fall) = match kind {
                KIND_XOR => {
                    let worst_in = in_rise.max(in_fall);
                    (worst_in + d.rise_ns, worst_in + d.fall_ns)
                }
                KIND_INVERTING => (in_fall + d.rise_ns, in_rise + d.fall_ns),
                _ => (in_rise + d.rise_ns, in_fall + d.fall_ns),
            };
            out.rise_ns = out.rise_ns.max(cand_rise);
            out.fall_ns = out.fall_ns.max(cand_fall);
        }
        out
    }

    /// Backward kernel over the flat arrays: bit-identical to
    /// [`crate::sta::required_raw_of`].
    fn required_raw_of_flat(
        &self,
        gate: usize,
        gate_delays: &[CellDelay],
        required_raw: &[f64],
        required_time_ns: f64,
    ) -> f64 {
        let mut required = if self.drives_output[gate] { required_time_ns } else { f64::INFINITY };
        let range = self.adjacency.fanout_range(gate);
        let wires = &self.fanout_wire[range.clone()];
        for (&s, &wire) in self.adjacency.fanouts_of(gate).iter().zip(wires) {
            required =
                required.min(required_raw[s as usize] - gate_delays[s as usize].worst() - wire);
        }
        required
    }

    /// Structural-hash key of a gate's arrival evaluation: polarity kind,
    /// own cell delay, and the ordered (driver, wire-delay) pin list.  Two
    /// gates with equal keys read the same arrivals through the same delays
    /// with the same fold, so their results are bit-identical.
    fn dedup_hash(&self, gate: usize, d: CellDelay) -> u64 {
        // FNV-1a over the structural signature.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(self.kind[gate] as u64);
        mix(d.rise_ns.to_bits());
        mix(d.fall_ns.to_bits());
        let range = self.adjacency.fanin_range(gate);
        for (&f, &w) in self.adjacency.fanins_of(gate).iter().zip(&self.fanin_wire[range]) {
            mix(f as u64);
            mix(w.to_bits());
        }
        h
    }

    /// `true` if the two gates' arrival evaluations are structurally
    /// identical (hash-collision guard: full component comparison).
    fn dedup_equal(&self, a: usize, b: usize, gate_delays: &[CellDelay]) -> bool {
        self.kind[a] == self.kind[b]
            && gate_delays[a] == gate_delays[b]
            && self.adjacency.fanins_of(a) == self.adjacency.fanins_of(b)
            && self.fanin_wire[self.adjacency.fanin_range(a)]
                == self.fanin_wire[self.adjacency.fanin_range(b)]
    }
}

/// Computes the net parasitics and cell delay of one gate with a **single**
/// star decomposition: the cell delay is derived from the same Elmore total
/// load the net delays carry, which is bit-identical to re-deriving it
/// through [`crate::gate_delay::gate_output_delay`] (both are pure functions
/// of the same placed net).
pub(crate) fn refresh_parasitics_fast(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    gate: GateId,
    nets: &mut [Option<NetDelays>],
    gate_delays: &mut [CellDelay],
) {
    let (nd, cd) = parasitics_of(network, library, placement, config, gate);
    nets[gate.index()] = Some(nd);
    gate_delays[gate.index()] = cd;
}

/// The single-evaluation parasitic kernel behind
/// [`refresh_parasitics_fast`], returned by value so the threaded sweep can
/// write into scratch chunks.
fn parasitics_of(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    gate: GateId,
) -> (NetDelays, CellDelay) {
    let star = net_star(network, placement, gate);
    let nd = net_delays(network, library, &star, config);
    let g = network.gate(gate);
    let cd = if g.gtype.is_source() {
        CellDelay::default()
    } else {
        match library.cell_for_gate(g) {
            Some(cell) => cell_delay(cell, nd.total_load_pf),
            None => CellDelay { rise_ns: 0.1, fall_ns: 0.1 },
        }
    };
    (nd, cd)
}

/// Runs a full levelized analysis, compiling a fresh view.
pub fn analyze(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    threads: usize,
) -> TimingReport {
    analyze_with_stats(network, library, placement, config, threads).0
}

/// [`analyze`] with the sweep's work counters (dedup hits).
pub fn analyze_with_stats(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    threads: usize,
) -> (TimingReport, SweepStats) {
    let mut view =
        LevelizedView::build(network).expect("timing analysis requires an acyclic network");
    let report = analyze_with_view(&mut view, network, library, placement, config, threads);
    (report, view_stats(&view))
}

// The dedup counter of the last sweep is carried on the side so the public
// report type stays unchanged; stash it in a thread local written by
// `propagate_arrivals`.
std::thread_local! {
    static LAST_DEDUP_REUSED: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn view_stats(_view: &LevelizedView) -> SweepStats {
    SweepStats { dedup_reused: LAST_DEDUP_REUSED.with(|c| c.get()) }
}

/// Runs a full analysis over an already-compiled view.  The view **must**
/// have been built from this exact network structure (asserted in debug
/// builds); the wire-delay arrays are refilled here, so a view can be
/// reused across placements or drive-strength changes as long as the
/// structure is unchanged.
pub(crate) fn analyze_with_view(
    view: &mut LevelizedView,
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    threads: usize,
) -> TimingReport {
    debug_assert_eq!(
        view.slots(),
        network.gate_count(),
        "compiled view is stale: network slot count changed since build"
    );
    let slots = view.slots();
    let threads = threads.max(1);

    // 1. Net parasitics + cell delays, one star evaluation per gate.  The
    //    kernel is a pure per-slot function, so the whole pass chunks freely.
    let parasitics_span = rapids_obs::span("sta.parasitics");
    let mut nets: Vec<Option<NetDelays>> = vec![None; slots];
    let mut gate_delays: Vec<CellDelay> = vec![CellDelay::default(); slots];
    if threads <= 1 || view.order.len() < MIN_PARALLEL_ITEMS {
        for &g in &view.order {
            refresh_parasitics_fast(
                network,
                library,
                placement,
                config,
                g,
                &mut nets,
                &mut gate_delays,
            );
        }
    } else {
        let chunk = view.order.len().div_ceil(threads);
        let mut scratch: Vec<Option<(NetDelays, CellDelay)>> = vec![None; view.order.len()];
        std::thread::scope(|s| {
            for (gates, out) in view.order.chunks(chunk).zip(scratch.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (&g, slot) in gates.iter().zip(out.iter_mut()) {
                        *slot = Some(parasitics_of(network, library, placement, config, g));
                    }
                });
            }
        });
        for (&g, slot) in view.order.iter().zip(scratch) {
            let (nd, cd) = slot.expect("every chunk slot is written by its worker");
            nets[g.index()] = Some(nd);
            gate_delays[g.index()] = cd;
        }
    }

    // 2. Per-edge wire delays: every sink list walked once.
    view.scatter_wire_delays(&nets);
    drop(parasitics_span);

    // 3. Forward level sweep (arrivals).
    let forward_span = rapids_obs::span("sta.forward");
    let mut arrival = vec![ArrivalTime::default(); slots];
    propagate_arrivals(view, &gate_delays, &mut arrival, threads);
    drop(forward_span);

    // 4. Critical delay and required-time budget: same fold as the
    //    reference analyzer.
    let critical_delay_ns =
        network.outputs().iter().map(|o| arrival[o.driver.index()].worst()).fold(0.0, f64::max);
    let required_time_ns = config.required_time_ns.unwrap_or(critical_delay_ns);

    // 5. Backward level sweep (raw required times), then the servable clamp.
    let backward_span = rapids_obs::span("sta.backward");
    let mut required_raw = vec![f64::INFINITY; slots];
    propagate_required(view, &gate_delays, &mut required_raw, required_time_ns, threads);
    let required: Vec<f64> =
        required_raw.iter().map(|&r| clamp_required(r, required_time_ns)).collect();
    drop(backward_span);

    TimingReport {
        arrival,
        required,
        gate_delays,
        net_delays: nets,
        required_raw,
        critical_delay_ns,
        required_time_ns,
    }
}

/// Forward sweep: one batched pass per level, lowest first.  Serial levels
/// run the structural-hash dedup; parallel levels split into per-worker
/// chunks of a scratch buffer (per-slot writes, so any thread count is
/// bit-identical — dedup changes *work*, never values, and is skipped on
/// the parallel path where hash-table sharing would serialize the chunks).
fn propagate_arrivals(
    view: &LevelizedView,
    gate_delays: &[CellDelay],
    arrival: &mut [ArrivalTime],
    threads: usize,
) {
    let mut dedup_reused = 0usize;
    let mut table: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    for l in 0..view.num_levels() {
        let range = view.level_offsets[l] as usize..view.level_offsets[l + 1] as usize;
        let slice = &view.order[range];
        if threads <= 1 || slice.len() < MIN_PARALLEL_ITEMS {
            table.clear();
            for &g in slice {
                let slot = g.index();
                if l > 0 && view.kind[slot] != KIND_SOURCE {
                    let key = view.dedup_hash(slot, gate_delays[slot]);
                    match table.entry(key) {
                        std::collections::hash_map::Entry::Occupied(rep) => {
                            let rep = *rep.get() as usize;
                            if view.dedup_equal(slot, rep, gate_delays) {
                                arrival[slot] = arrival[rep];
                                dedup_reused += 1;
                                continue;
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(slot as u32);
                        }
                    }
                }
                arrival[slot] = view.arrival_of_flat(slot, gate_delays, arrival);
            }
        } else {
            let chunk = slice.len().div_ceil(threads);
            let mut scratch = vec![ArrivalTime::default(); slice.len()];
            let frozen: &[ArrivalTime] = arrival;
            std::thread::scope(|s| {
                for (gates, out) in slice.chunks(chunk).zip(scratch.chunks_mut(chunk)) {
                    s.spawn(move || {
                        let _chunk_span = rapids_obs::span("sta.level_chunk");
                        for (&g, slot) in gates.iter().zip(out.iter_mut()) {
                            *slot = view.arrival_of_flat(g.index(), gate_delays, frozen);
                        }
                    });
                }
            });
            for (&g, a) in slice.iter().zip(scratch) {
                arrival[g.index()] = a;
            }
        }
    }
    LAST_DEDUP_REUSED.with(|c| c.set(dedup_reused));
    // Mirror into the global registry (one lookup per full sweep, which is
    // rare next to incremental updates).
    rapids_obs::metrics::counter("timing.dedup_reused").add(dedup_reused as u64);
}

/// Backward sweep: one batched pass per level, highest first, mirroring
/// [`propagate_arrivals`]'s chunking.
fn propagate_required(
    view: &LevelizedView,
    gate_delays: &[CellDelay],
    required_raw: &mut [f64],
    required_time_ns: f64,
    threads: usize,
) {
    for l in (0..view.num_levels()).rev() {
        let range = view.level_offsets[l] as usize..view.level_offsets[l + 1] as usize;
        let slice = &view.order[range];
        if threads <= 1 || slice.len() < MIN_PARALLEL_ITEMS {
            for &g in slice {
                required_raw[g.index()] = view.required_raw_of_flat(
                    g.index(),
                    gate_delays,
                    required_raw,
                    required_time_ns,
                );
            }
        } else {
            let chunk = slice.len().div_ceil(threads);
            let mut scratch = vec![f64::INFINITY; slice.len()];
            let frozen: &[f64] = required_raw;
            std::thread::scope(|s| {
                for (gates, out) in slice.chunks(chunk).zip(scratch.chunks_mut(chunk)) {
                    s.spawn(move || {
                        let _chunk_span = rapids_obs::span("sta.level_chunk");
                        for (&g, slot) in gates.iter().zip(out.iter_mut()) {
                            *slot = view.required_raw_of_flat(
                                g.index(),
                                gate_delays,
                                frozen,
                                required_time_ns,
                            );
                        }
                    });
                }
            });
            for (&g, r) in slice.iter().zip(scratch) {
                required_raw[g.index()] = r;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sta::Sta;
    use rapids_celllib::Library;
    use rapids_netlist::{GateType, NetworkBuilder};
    use rapids_placement::{place, PlacerConfig, Point};

    fn mesh() -> Network {
        let mut b = NetworkBuilder::new("mesh");
        b.inputs(["a", "b", "c", "d"]);
        b.gate("n1", GateType::Nand, &["a", "b"]);
        b.gate("n2", GateType::Nor, &["c", "d"]);
        b.gate("x1", GateType::Xor, &["n1", "n2"]);
        b.gate("m1", GateType::And, &["n1", "x1"]);
        b.gate("m2", GateType::Or, &["x1", "n2"]);
        b.gate("f", GateType::Nand, &["m1", "m2"]);
        b.output("f");
        b.output("m2");
        b.finish().unwrap()
    }

    fn setup(n: &Network) -> (rapids_placement::Placement, Library, TimingConfig) {
        let lib = Library::standard_035um();
        let p = place(n, &lib, &PlacerConfig::fast(), 23);
        (p, lib, TimingConfig::default())
    }

    fn assert_reports_identical(a: &TimingReport, b: &TimingReport, n: &Network) {
        assert_eq!(a.critical_delay_ns, b.critical_delay_ns);
        assert_eq!(a.required_time_ns, b.required_time_ns);
        for g in n.iter_live() {
            assert_eq!(a.arrival[g.index()], b.arrival[g.index()], "arrival at {g}");
            assert_eq!(a.required[g.index()], b.required[g.index()], "required at {g}");
            assert_eq!(a.gate_delays[g.index()], b.gate_delays[g.index()], "cell delay at {g}");
        }
    }

    #[test]
    fn view_levels_are_consistent() {
        let n = mesh();
        let view = LevelizedView::build(&n).unwrap();
        assert_eq!(view.slots(), n.gate_count());
        assert_eq!(view.order().len(), n.live_gate_count());
        for g in n.iter_live() {
            for &f in n.fanins(g) {
                assert!(
                    view.level_of(f) < view.level_of(g),
                    "level must strictly increase along every edge"
                );
            }
        }
        // The level-major order is a topological order.
        let mut seen = vec![false; n.gate_count()];
        for &g in view.order() {
            for &f in n.fanins(g) {
                assert!(seen[f.index()], "driver {f} must precede {g}");
            }
            seen[g.index()] = true;
        }
    }

    #[test]
    fn levelized_matches_reference_bit_for_bit() {
        let n = mesh();
        let (p, lib, cfg) = setup(&n);
        let reference = Sta::analyze_reference(&n, &lib, &p, &cfg);
        let fast = analyze(&n, &lib, &p, &cfg, 1);
        assert_reports_identical(&fast, &reference, &n);
    }

    #[test]
    fn thread_count_does_not_change_a_single_bit() {
        let n = mesh();
        let (p, lib, cfg) = setup(&n);
        let one = analyze(&n, &lib, &p, &cfg, 1);
        for threads in [2, 3, 8] {
            let t = analyze(&n, &lib, &p, &cfg, threads);
            assert_reports_identical(&one, &t, &n);
        }
    }

    #[test]
    fn multi_pin_sinks_keep_first_match_wire_delays() {
        // A sink using the same driver on two pins exercises the
        // first-match scatter path.
        let mut b = NetworkBuilder::new("mp");
        b.inputs(["a", "b"]);
        b.gate("x", GateType::Xor, &["a", "a"]);
        b.gate("f", GateType::Nand, &["x", "b"]);
        b.output("f");
        let n = b.finish().unwrap();
        let (p, lib, cfg) = setup(&n);
        let reference = Sta::analyze_reference(&n, &lib, &p, &cfg);
        let fast = analyze(&n, &lib, &p, &cfg, 1);
        assert_reports_identical(&fast, &reference, &n);
    }

    #[test]
    fn structural_dedup_fires_on_identical_twins_and_keeps_values() {
        // Two identical gates on the same drivers, placed at the same spot,
        // see identical wire delays and loads: the second evaluation must
        // be answered by the dedup table.
        let mut b = NetworkBuilder::new("twins");
        b.inputs(["a", "b"]);
        b.gate("t1", GateType::Nand, &["a", "b"]);
        b.gate("t2", GateType::Nand, &["a", "b"]);
        b.gate("f", GateType::And, &["t1", "t2"]);
        b.output("f");
        let n = b.finish().unwrap();
        let lib = Library::standard_035um();
        let mut p = place(&n, &lib, &PlacerConfig::fast(), 23);
        let t1 = n.find_by_name("t1").unwrap();
        let t2 = n.find_by_name("t2").unwrap();
        p.set_position(t2, p.position(t1));
        let cfg = TimingConfig::default();
        let (fast, stats) = analyze_with_stats(&n, &lib, &p, &cfg, 1);
        // Co-located twins share branch geometry only if the star centers
        // coincide; the twins drive the same single sink from the same
        // point, so they do.
        assert!(stats.dedup_reused >= 1, "identical twins must dedup, got {stats:?}");
        let reference = Sta::analyze_reference(&n, &lib, &p, &cfg);
        assert_reports_identical(&fast, &reference, &n);
    }

    #[test]
    fn fast_parasitics_match_reference_kernel() {
        let n = mesh();
        let (p, lib, cfg) = setup(&n);
        let slots = n.gate_count();
        let (mut nets_a, mut delays_a) = (vec![None; slots], vec![CellDelay::default(); slots]);
        let (mut nets_b, mut delays_b) = (vec![None; slots], vec![CellDelay::default(); slots]);
        for g in n.iter_live() {
            crate::sta::refresh_parasitics(&n, &lib, &p, &cfg, g, &mut nets_a, &mut delays_a);
            refresh_parasitics_fast(&n, &lib, &p, &cfg, g, &mut nets_b, &mut delays_b);
        }
        assert_eq!(nets_a, nets_b);
        assert_eq!(delays_a, delays_b);
    }

    #[test]
    fn separated_twins_do_not_dedup_but_still_match() {
        let mut b = NetworkBuilder::new("apart");
        b.inputs(["a", "b"]);
        b.gate("t1", GateType::Nand, &["a", "b"]);
        b.gate("t2", GateType::Nand, &["a", "b"]);
        b.gate("f", GateType::And, &["t1", "t2"]);
        b.output("f");
        let n = b.finish().unwrap();
        let lib = Library::standard_035um();
        let mut p = place(&n, &lib, &PlacerConfig::fast(), 23);
        let t2 = n.find_by_name("t2").unwrap();
        let far = Point::new(p.position(t2).x_um + 800.0, p.position(t2).y_um);
        p.set_position(t2, far);
        let cfg = TimingConfig::default();
        let fast = analyze(&n, &lib, &p, &cfg, 1);
        let reference = Sta::analyze_reference(&n, &lib, &p, &cfg);
        assert_reports_identical(&fast, &reference, &n);
    }
}
