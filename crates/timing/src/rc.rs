//! Wire parasitics: converting star-segment lengths to lumped RC values
//! using the paper's unit constants.

use rapids_celllib::{UNIT_CAPACITANCE_PF_PER_CM, UNIT_RESISTANCE_KOHM_PER_CM};

/// Interconnect technology constants used by timing analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Wire capacitance per centimeter, pF/cm (paper: 2 pF/cm).
    pub unit_capacitance_pf_per_cm: f64,
    /// Wire resistance per centimeter, kΩ/cm (paper: 2.4 kΩ/cm).
    pub unit_resistance_kohm_per_cm: f64,
    /// Required arrival time at every primary output, ns.  `None` means the
    /// analysis uses the critical delay itself as the required time (zero
    /// worst slack), which is how the min-slack optimizers are driven.
    pub required_time_ns: Option<f64>,
    /// Load presented by a primary-output pad, pF.
    pub output_load_pf: f64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            unit_capacitance_pf_per_cm: UNIT_CAPACITANCE_PF_PER_CM,
            unit_resistance_kohm_per_cm: UNIT_RESISTANCE_KOHM_PER_CM,
            required_time_ns: None,
            output_load_pf: 0.02,
        }
    }
}

const UM_PER_CM: f64 = 10_000.0;

/// Capacitance of a wire segment of `length_um` micrometers, in pF.
pub fn segment_capacitance_pf(length_um: f64, config: &TimingConfig) -> f64 {
    config.unit_capacitance_pf_per_cm * (length_um.max(0.0) / UM_PER_CM)
}

/// Resistance of a wire segment of `length_um` micrometers, in kΩ.
pub fn segment_resistance_kohm(length_um: f64, config: &TimingConfig) -> f64 {
    config.unit_resistance_kohm_per_cm * (length_um.max(0.0) / UM_PER_CM)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_centimeter_wire_matches_unit_constants() {
        let cfg = TimingConfig::default();
        assert!((segment_capacitance_pf(10_000.0, &cfg) - 2.0).abs() < 1e-12);
        assert!((segment_resistance_kohm(10_000.0, &cfg) - 2.4).abs() < 1e-12);
    }

    #[test]
    fn scaling_is_linear() {
        let cfg = TimingConfig::default();
        let c1 = segment_capacitance_pf(100.0, &cfg);
        let c2 = segment_capacitance_pf(200.0, &cfg);
        assert!((c2 - 2.0 * c1).abs() < 1e-15);
        let r1 = segment_resistance_kohm(100.0, &cfg);
        let r2 = segment_resistance_kohm(300.0, &cfg);
        assert!((r2 - 3.0 * r1).abs() < 1e-15);
    }

    #[test]
    fn negative_lengths_clamped() {
        let cfg = TimingConfig::default();
        assert_eq!(segment_capacitance_pf(-5.0, &cfg), 0.0);
        assert_eq!(segment_resistance_kohm(-5.0, &cfg), 0.0);
    }

    #[test]
    fn custom_config() {
        let cfg = TimingConfig {
            unit_capacitance_pf_per_cm: 4.0,
            unit_resistance_kohm_per_cm: 1.2,
            ..TimingConfig::default()
        };
        assert!((segment_capacitance_pf(10_000.0, &cfg) - 4.0).abs() < 1e-12);
        assert!((segment_resistance_kohm(10_000.0, &cfg) - 1.2).abs() < 1e-12);
    }
}
