//! # rapids-timing
//!
//! Post-placement static timing analysis with the paper's interconnect and
//! gate-delay models (§6):
//!
//! * every net is decomposed by the **star model** (`rapids-placement::star`),
//! * every segment is a **lumped RC** with 2 pF/cm and 2.4 kΩ/cm,
//! * sink delays use the **Elmore** formula, so different sinks of the same
//!   net see different delays,
//! * gate delays come from the **pin-to-pin load-dependent** cell model with
//!   rise and fall parameters (`rapids-celllib`).
//!
//! [`Sta::analyze`] produces arrival times, required times and slacks for
//! every gate, plus the critical path, which is what both the rewiring
//! optimizer and the gate sizer consume.
//!
//! ```
//! use rapids_celllib::Library;
//! use rapids_netlist::{GateType, NetworkBuilder};
//! use rapids_placement::{place, PlacerConfig};
//! use rapids_timing::{Sta, TimingConfig};
//!
//! let mut b = NetworkBuilder::new("demo");
//! b.inputs(["a", "b"]);
//! b.gate("f", GateType::Nand, &["a", "b"]);
//! b.output("f");
//! let network = b.finish().unwrap();
//! let library = Library::standard_035um();
//! let placement = place(&network, &library, &PlacerConfig::fast(), 1);
//! let report = Sta::analyze(&network, &library, &placement, &TimingConfig::default());
//! assert!(report.critical_delay_ns() > 0.0);
//! ```

pub mod cache;
pub mod elmore;
pub mod gate_delay;
pub mod incremental;
pub mod levelized;
pub mod rc;
pub mod sta;

pub use cache::NetCache;
pub use elmore::{net_delays, NetDelays};
pub use gate_delay::{gate_load_pf, gate_output_delay};
pub use incremental::{IncrementalSta, IncrementalStats};
pub use levelized::{LevelizedView, SweepStats};
pub use rc::{segment_capacitance_pf, segment_resistance_kohm, TimingConfig};
pub use sta::{ArrivalTime, Sta, TimingReport};
