//! Gate-delay evaluation: combines the library's pin-to-pin load-dependent
//! model with the net load computed by the Elmore star model.

use rapids_celllib::{cell_delay, CellDelay, Library};
use rapids_netlist::{GateId, Network};
use rapids_placement::{net_star, Placement};

use crate::elmore::net_delays;
use crate::rc::TimingConfig;

/// Total load (pF) seen by the output of `gate`: wire capacitance of its net
/// plus the input-pin capacitances of its sinks plus any output-pad load.
pub fn gate_load_pf(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    gate: GateId,
) -> f64 {
    let star = net_star(network, placement, gate);
    net_delays(network, library, &star, config).total_load_pf
}

/// Pin-to-pin delay (rise/fall) of `gate` driving its placed net.
///
/// Primary inputs and constants have no cell; they are reported with zero
/// delay (their wire delay is still accounted for by the net model).
pub fn gate_output_delay(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    gate: GateId,
) -> CellDelay {
    let g = network.gate(gate);
    if g.gtype.is_source() {
        return CellDelay::default();
    }
    let load = gate_load_pf(network, library, placement, config, gate);
    match library.cell_for_gate(g) {
        Some(cell) => cell_delay(cell, load),
        None => CellDelay { rise_ns: 0.1, fall_ns: 0.1 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_celllib::{DriveStrength, Library};
    use rapids_netlist::{GateType, NetworkBuilder};
    use rapids_placement::{place, PlacerConfig};

    fn build() -> (Network, Placement, Library) {
        let mut b = NetworkBuilder::new("gd");
        b.inputs(["a", "b"]);
        b.gate("n1", GateType::Nand, &["a", "b"]);
        b.gate("f", GateType::Inv, &["n1"]);
        b.output("f");
        let n = b.finish().unwrap();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 5);
        (n, p, lib)
    }

    #[test]
    fn sources_have_zero_cell_delay() {
        let (n, p, lib) = build();
        let a = n.find_by_name("a").unwrap();
        let d = gate_output_delay(&n, &lib, &p, &TimingConfig::default(), a);
        assert_eq!(d.rise_ns, 0.0);
        assert_eq!(d.fall_ns, 0.0);
    }

    #[test]
    fn logic_gates_have_positive_delay() {
        let (n, p, lib) = build();
        let n1 = n.find_by_name("n1").unwrap();
        let d = gate_output_delay(&n, &lib, &p, &TimingConfig::default(), n1);
        assert!(d.rise_ns > 0.0);
        assert!(d.fall_ns > 0.0);
    }

    #[test]
    fn upsizing_reduces_delay_under_load() {
        let (mut n, p, lib) = build();
        let cfg = TimingConfig::default();
        let n1 = n.find_by_name("n1").unwrap();
        let slow = gate_output_delay(&n, &lib, &p, &cfg, n1).worst();
        n.gate_mut(n1).size_class = DriveStrength::X8.size_class();
        let fast = gate_output_delay(&n, &lib, &p, &cfg, n1).worst();
        assert!(fast < slow);
    }

    #[test]
    fn load_is_positive_and_grows_with_fanout() {
        let mut b = NetworkBuilder::new("fan");
        b.input("a");
        b.gate("root", GateType::Inv, &["a"]);
        for i in 0..4 {
            b.gate(format!("s{i}"), GateType::Inv, &["root"]);
            b.output(format!("s{i}"));
        }
        let n = b.finish().unwrap();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 9);
        let cfg = TimingConfig::default();
        let root = n.find_by_name("root").unwrap();
        let s0 = n.find_by_name("s0").unwrap();
        let load_root = gate_load_pf(&n, &lib, &p, &cfg, root);
        let load_leaf = gate_load_pf(&n, &lib, &p, &cfg, s0);
        assert!(load_root > load_leaf);
    }
}
