//! Incremental (dirty-cone) static timing analysis.
//!
//! The paper's optimization loops apply long sequences of local moves — pin
//! swaps and drive-strength changes — and between moves only the timing of
//! the affected fan-out cone (arrivals) and fan-in cone (required times)
//! changes.  [`IncrementalSta`] owns the arrival/required/parasitic arrays
//! plus a compiled [`LevelizedView`] of the network (level-bucketed gate
//! order and level map), and re-times exactly those cones:
//!
//! * [`IncrementalSta::full`] recompiles the view and runs the batched
//!   level sweeps of [`crate::levelized`] over the whole network;
//! * [`IncrementalSta::update`] takes the set of gates whose connectivity or
//!   drive strength changed, refreshes their parasitics, and drains a
//!   **level-bucketed dirty frontier**: dirty gates land in per-level
//!   buckets, levels drain lowest-first for arrivals and highest-first for
//!   required times, and each frontier is pruned as soon as a recomputed
//!   value is bit-identical to the stored one.  Because a gate's sinks sit
//!   at strictly higher levels (and its drivers at strictly lower ones), a
//!   bucket can never grow while it drains, and every dirty gate is
//!   evaluated exactly once — no priority queue needed.  Large buckets
//!   evaluate their slice in parallel chunks (per-slot scratch writes,
//!   serial scatter), bit-identical for any thread count.
//!
//! # Compiled-view lifecycle (invalidation rules)
//!
//! The view is a point-in-time snapshot; `update` enforces the rules and
//! debug-asserts them:
//!
//! * **growth** (inverting swaps appended gates): the view is recompiled in
//!   place — an O(V+E) sort, no parasitic work — and the update stays
//!   incremental;
//! * **shrink** (a rolled-back pass popped trailing slots): full fallback;
//! * **local rewires**: the cached *levels* stay usable as a schedule as
//!   long as every touched gate still sees all its fan-ins at strictly
//!   lower levels; a violation falls back to a full analysis.  The view's
//!   flat edge arrays may be stale after a swap, so the dirty-cone kernels
//!   deliberately read the live network adjacency, never the snapshot.
//!
//! Because the kernels and fold orders are shared, an update converges to
//! **bit-identical** state to a from-scratch analysis of the same network —
//! a property cheap enough to check on the fly: a seeded self-check mode
//! re-runs the full *reference* analysis ([`Sta::analyze_reference`]) on a
//! random subset of updates and asserts equality (see
//! [`IncrementalSta::enable_self_check`]), so a defect in the levelized
//! kernel cannot validate itself.

use rapids_celllib::Library;
use rapids_netlist::{GateId, Network};
use rapids_placement::Placement;

use crate::levelized::{
    analyze_with_view, refresh_parasitics_fast, LevelizedView, MIN_PARALLEL_ITEMS,
};
use crate::rc::TimingConfig;
use crate::sta::{arrival_of, clamp_required, required_raw_of, ArrivalTime, Sta, TimingReport};

/// Counters describing how much work the engine has done (useful for tests
/// and perf reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Number of from-scratch analyses (constructor, explicit `full` calls
    /// and automatic fallbacks).
    pub full_refreshes: usize,
    /// Number of dirty-cone updates that ran incrementally.
    pub incremental_updates: usize,
    /// Total gates whose arrival was recomputed by incremental updates.
    pub gates_retimed: usize,
}

/// Handles into the process-global metrics registry mirroring
/// [`IncrementalStats`].  The per-engine struct stays the public API (it
/// isolates one engine's work, which `merged` and the bench JSON rely
/// on); the global counters aggregate every engine in the process for
/// the `rapids-obs` snapshot.  Mirroring at the increment site — rather
/// than making the struct fields registry views — keeps per-engine
/// equality assertions (`serial.stats() == threaded.stats()`) exact.
#[derive(Debug, Clone)]
struct TimingCounters {
    full_refreshes: rapids_obs::Counter,
    incremental_updates: rapids_obs::Counter,
    gates_retimed: rapids_obs::Counter,
}

impl TimingCounters {
    fn from_global() -> Self {
        let registry = rapids_obs::global();
        TimingCounters {
            full_refreshes: registry.counter("timing.full_refreshes"),
            incremental_updates: registry.counter("timing.incremental_updates"),
            gates_retimed: registry.counter("timing.gates_retimed"),
        }
    }
}

/// Seeded self-check state: every update draws from a small LCG and one in
/// `one_in` updates is verified against a full analysis.
#[derive(Debug, Clone, Copy)]
struct SelfCheck {
    state: u64,
    one_in: u32,
}

impl SelfCheck {
    fn fires(&mut self) -> bool {
        // Numerical Recipes LCG; plenty for sampling a check probability.
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.one_in <= 1 || ((self.state >> 33) as u32).is_multiple_of(self.one_in)
    }
}

/// Incremental static timing engine.
///
/// Holds a [`TimingReport`] that is kept current across updates; consumers
/// that score candidates against a frozen report can keep borrowing
/// [`IncrementalSta::report`] between updates exactly as they borrowed the
/// result of a full analysis before.
#[derive(Debug, Clone)]
pub struct IncrementalSta {
    config: TimingConfig,
    threads: usize,
    report: TimingReport,
    /// Compiled level-bucketed view; see the module docs for when it is
    /// recompiled versus reused.
    view: LevelizedView,
    stats: IncrementalStats,
    counters: TimingCounters,
    self_check: Option<SelfCheck>,
}

impl IncrementalSta {
    /// Builds the engine by running a full analysis (single-threaded
    /// sweeps; see [`IncrementalSta::new_with_threads`]).
    pub fn new(
        network: &Network,
        library: &Library,
        placement: &Placement,
        config: &TimingConfig,
    ) -> Self {
        Self::new_with_threads(network, library, placement, config, 1)
    }

    /// Builds the engine with within-level parallelism for its sweeps.  The
    /// thread count never changes a single bit of any result — it only
    /// splits per-level work into per-slot chunks (see [`crate::levelized`]).
    pub fn new_with_threads(
        network: &Network,
        library: &Library,
        placement: &Placement,
        config: &TimingConfig,
        threads: usize,
    ) -> Self {
        let mut view =
            LevelizedView::build(network).expect("incremental timing requires an acyclic network");
        let threads = threads.max(1);
        let counters = TimingCounters::from_global();
        let report = {
            let _span = rapids_obs::span("sta.full");
            analyze_with_view(&mut view, network, library, placement, config, threads)
        };
        counters.full_refreshes.inc();
        IncrementalSta {
            config: *config,
            threads,
            report,
            view,
            stats: IncrementalStats { full_refreshes: 1, ..IncrementalStats::default() },
            counters,
            self_check: None,
        }
    }

    /// Enables the seeded self-check: roughly one in `one_in` updates is
    /// cross-verified against a full reference analysis (panicking on
    /// drift).
    pub fn enable_self_check(&mut self, seed: u64, one_in: u32) {
        self.self_check = Some(SelfCheck { state: seed, one_in });
    }

    /// The current timing state.  Valid until the next `update`/`full` call.
    pub fn report(&self) -> &TimingReport {
        &self.report
    }

    /// Consumes the engine, yielding the final timing state.
    pub fn into_report(self) -> TimingReport {
        self.report
    }

    /// Work counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// The cached topological order of the live gates (level-major: all of
    /// level 0, then level 1, …, which is a valid topological order).
    pub fn topo_order(&self) -> &[GateId] {
        self.view.order()
    }

    /// The cached logic level of a gate (0 for sources).
    pub fn level(&self, gate: GateId) -> u32 {
        self.view.level_of(gate)
    }

    /// Recompiles the view for the network's current structure (levels,
    /// order, flat edges, output mask) without any parasitic work.
    fn rebuild_view(&mut self, network: &Network) {
        self.view =
            LevelizedView::build(network).expect("incremental timing requires an acyclic network");
        debug_assert_eq!(
            self.view.slots(),
            network.gate_count(),
            "recompiled view must cover every slot of the grown network"
        );
    }

    /// Re-times the whole network from scratch (recompiling the view and
    /// running the batched level sweeps).  Use after structural edits too
    /// large or too irregular to describe as a touched set (e.g. redirected
    /// output ports).
    pub fn full(&mut self, network: &Network, library: &Library, placement: &Placement) {
        let _span = rapids_obs::span("sta.full");
        self.rebuild_view(network);
        self.report = analyze_with_view(
            &mut self.view,
            network,
            library,
            placement,
            &self.config,
            self.threads,
        );
        self.stats.full_refreshes += 1;
        self.counters.full_refreshes.inc();
    }

    /// `true` if the compiled levels are still a valid schedule around the
    /// touched gates: every touched gate is covered and sees all its
    /// fan-ins at strictly lower levels.  (Level validity at the touched
    /// gates implies the level-major order is still a topological order —
    /// untouched edges kept their compile-time levels.)
    fn view_still_valid(&self, network: &Network, touched: &[GateId]) -> bool {
        touched.iter().all(|&g| {
            if !network.is_live(g) {
                return true;
            }
            let lg = self.view.level_of(g);
            lg != u32::MAX
                && network.fanins(g).iter().all(|f| {
                    let lf = self.view.level_of(*f);
                    lf != u32::MAX && lf < lg
                })
        })
    }

    /// Dirty-cone update after a batch of local moves.
    ///
    /// `touched` must contain every gate whose fan-in list, fan-out set or
    /// drive strength changed since the last `update`/`full` call.  A pin
    /// swap touches the two pins' gates (their old and new drivers are then
    /// covered automatically, because both remain fan-ins of the touched
    /// pair); a resize touches the resized gate; an inverting swap
    /// additionally touches the inserted inverters (their fan-ins — the
    /// exchanged drivers, whose sink sets changed — are then covered
    /// automatically too).  Duplicates and tomb-stoned ids are fine.
    ///
    /// A network that **grew** since the last refresh (inverting swaps
    /// inserted inverters) stays on the incremental path: the per-slot
    /// arrays are extended with neutral values, the view is recompiled (an
    /// O(V+E) sort, no parasitic work), and the new gates are timed by the
    /// ordinary dirty-cone sweeps.  Only a network that *shrank* (a
    /// rolled-back pass popped its inverters) or an edit that invalidated
    /// the compiled levels around the touched gates falls back to a full
    /// analysis.
    pub fn update(
        &mut self,
        network: &Network,
        library: &Library,
        placement: &Placement,
        touched: &[GateId],
    ) {
        if touched.is_empty() {
            return;
        }
        if network.gate_count() > self.view.slots() {
            self.report.ensure_slots(network.gate_count());
            self.rebuild_view(network);
        } else if network.gate_count() < self.view.slots()
            || !self.view_still_valid(network, touched)
        {
            self.full(network, library, placement);
            return;
        }
        debug_assert!(
            self.view_still_valid(network, touched),
            "compiled view must be valid on the incremental path"
        );
        self.stats.incremental_updates += 1;
        self.counters.incremental_updates.inc();
        let slots = self.view.slots();

        // Seeds: the touched gates plus their fan-in drivers, whose nets see
        // a different pin load (resize) or sink set (swap).
        let mut seed_flag = vec![false; slots];
        let mut seeds: Vec<GateId> = Vec::new();
        let push_seed = |g: GateId, seeds: &mut Vec<GateId>, flag: &mut Vec<bool>| {
            if network.is_live(g) && !flag[g.index()] {
                flag[g.index()] = true;
                seeds.push(g);
            }
        };
        for &g in touched {
            if !network.is_live(g) {
                continue;
            }
            push_seed(g, &mut seeds, &mut seed_flag);
            for &f in network.fanins(g) {
                push_seed(f, &mut seeds, &mut seed_flag);
            }
        }

        // 1. Refresh parasitics of every seed (single star evaluation per
        //    gate; bit-identical to the historical double-compute kernel).
        for &g in &seeds {
            refresh_parasitics_fast(
                network,
                library,
                placement,
                &self.config,
                g,
                &mut self.report.net_delays,
                &mut self.report.gate_delays,
            );
        }

        // 2. Forward arrival propagation over the dirty fan-out cone, as a
        //    level-bucketed frontier (lowest level first).  The initial
        //    frontier is the seeds plus their sinks (whose input wire delays
        //    changed even if the driving arrival did not).  Sinks sit at
        //    strictly higher levels, so a bucket never grows while it
        //    drains.
        let mut buckets: Vec<Vec<GateId>> = vec![Vec::new(); self.view.num_levels()];
        let mut queued = vec![false; slots];
        let enqueue = |g: GateId,
                       buckets: &mut Vec<Vec<GateId>>,
                       queued: &mut Vec<bool>,
                       view: &LevelizedView| {
            let l = view.level_of(g);
            if !queued[g.index()] && l != u32::MAX {
                queued[g.index()] = true;
                buckets[l as usize].push(g);
            }
        };
        for &g in &seeds {
            enqueue(g, &mut buckets, &mut queued, &self.view);
            for &s in network.fanouts(g) {
                enqueue(s, &mut buckets, &mut queued, &self.view);
            }
        }
        let mut scratch: Vec<ArrivalTime> = Vec::new();
        for l in 0..buckets.len() {
            let bucket = std::mem::take(&mut buckets[l]);
            if bucket.is_empty() {
                continue;
            }
            // Evaluate the dirty slice of this level (in parallel chunks
            // when it is large: per-slot scratch writes, serial scatter, so
            // any thread count is bit-identical), then prune and seed the
            // next levels serially.
            scratch.clear();
            if self.threads > 1 && bucket.len() >= MIN_PARALLEL_ITEMS {
                scratch.resize(bucket.len(), ArrivalTime::default());
                let chunk = bucket.len().div_ceil(self.threads);
                let nets = &self.report.net_delays;
                let delays = &self.report.gate_delays;
                let arrival = &self.report.arrival;
                std::thread::scope(|s| {
                    for (gates, out) in bucket.chunks(chunk).zip(scratch.chunks_mut(chunk)) {
                        s.spawn(move || {
                            for (&g, slot) in gates.iter().zip(out.iter_mut()) {
                                *slot = arrival_of(network, g, nets, delays, arrival);
                            }
                        });
                    }
                });
            } else {
                scratch.extend(bucket.iter().map(|&g| {
                    arrival_of(
                        network,
                        g,
                        &self.report.net_delays,
                        &self.report.gate_delays,
                        &self.report.arrival,
                    )
                }));
            }
            self.stats.gates_retimed += bucket.len();
            self.counters.gates_retimed.add(bucket.len() as u64);
            for (&g, &fresh) in bucket.iter().zip(&scratch) {
                let slot = &mut self.report.arrival[g.index()];
                if fresh != *slot {
                    *slot = fresh;
                    for &s in network.fanouts(g) {
                        enqueue(s, &mut buckets, &mut queued, &self.view);
                    }
                }
            }
        }

        // 3. Critical delay and the (possibly floating) required-time budget.
        let critical = network
            .outputs()
            .iter()
            .map(|o| self.report.arrival[o.driver.index()].worst())
            .fold(0.0, f64::max);
        let old_required_time = self.report.required_time_ns;
        self.report.critical_delay_ns = critical;
        self.report.required_time_ns = self.config.required_time_ns.unwrap_or(critical);

        // 4. Backward required-time min-propagation.  When the floating
        //    budget moved, every required time shifts, so replay the whole
        //    arithmetic backward pass over the cached order — the expensive
        //    parasitic extraction above stays dirty-cone either way, and the
        //    replay reproduces the full analysis bit for bit.  With the
        //    budget unchanged, only the dirty fan-in cone is re-propagated,
        //    again as level buckets (highest level first; drivers sit at
        //    strictly lower levels, so a bucket never grows while draining).
        let t = self.report.required_time_ns;
        if t != old_required_time {
            for &g in self.view.order().iter().rev() {
                let fresh = required_raw_of(
                    network,
                    g,
                    &self.report.net_delays,
                    &self.report.gate_delays,
                    &self.report.required_raw,
                    self.view.drives_output(g),
                    t,
                );
                self.report.required_raw[g.index()] = fresh;
            }
            for (r, &raw) in self.report.required.iter_mut().zip(&self.report.required_raw) {
                *r = clamp_required(raw, t);
            }
        } else {
            // Initial frontier: the seeds (their outgoing wire delays
            // changed) plus their fan-ins (their sinks' cell delays changed).
            let mut buckets: Vec<Vec<GateId>> = vec![Vec::new(); self.view.num_levels()];
            let mut queued = vec![false; slots];
            for &g in &seeds {
                enqueue(g, &mut buckets, &mut queued, &self.view);
                for &f in network.fanins(g) {
                    enqueue(f, &mut buckets, &mut queued, &self.view);
                }
            }
            let mut scratch: Vec<f64> = Vec::new();
            for l in (0..buckets.len()).rev() {
                let bucket = std::mem::take(&mut buckets[l]);
                if bucket.is_empty() {
                    continue;
                }
                scratch.clear();
                if self.threads > 1 && bucket.len() >= MIN_PARALLEL_ITEMS {
                    scratch.resize(bucket.len(), f64::INFINITY);
                    let chunk = bucket.len().div_ceil(self.threads);
                    let nets = &self.report.net_delays;
                    let delays = &self.report.gate_delays;
                    let required_raw = &self.report.required_raw;
                    let view = &self.view;
                    std::thread::scope(|s| {
                        for (gates, out) in bucket.chunks(chunk).zip(scratch.chunks_mut(chunk)) {
                            s.spawn(move || {
                                for (&g, slot) in gates.iter().zip(out.iter_mut()) {
                                    *slot = required_raw_of(
                                        network,
                                        g,
                                        nets,
                                        delays,
                                        required_raw,
                                        view.drives_output(g),
                                        t,
                                    );
                                }
                            });
                        }
                    });
                } else {
                    scratch.extend(bucket.iter().map(|&g| {
                        required_raw_of(
                            network,
                            g,
                            &self.report.net_delays,
                            &self.report.gate_delays,
                            &self.report.required_raw,
                            self.view.drives_output(g),
                            t,
                        )
                    }));
                }
                for (&g, &fresh) in bucket.iter().zip(&scratch) {
                    let slot = &mut self.report.required_raw[g.index()];
                    // NaN-free domain: raw values are +INF or finite chains
                    // of finite delays, so bitwise comparison is a sound
                    // prune.
                    if fresh != *slot {
                        *slot = fresh;
                        self.report.required[g.index()] = clamp_required(fresh, t);
                        for &f in network.fanins(g) {
                            enqueue(f, &mut buckets, &mut queued, &self.view);
                        }
                    }
                }
            }
        }

        if let Some(check) = &mut self.self_check {
            if check.fires() {
                self.verify_matches_full(network, library, placement)
                    .expect("incremental timing drifted from the full analysis");
            }
        }
    }

    /// Cross-checks the incremental state against a from-scratch analysis
    /// by the *reference* engine ([`Sta::analyze_reference`]) — the one
    /// implementation that shares no code with the levelized kernel, so a
    /// kernel bug cannot validate itself.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatching gate, if any.  All
    /// comparisons are exact: the engines share their fold orders, so
    /// agreement is bit-for-bit, not merely approximate.
    pub fn verify_matches_full(
        &self,
        network: &Network,
        library: &Library,
        placement: &Placement,
    ) -> Result<(), String> {
        let full = Sta::analyze_reference(network, library, placement, &self.config);
        if full.critical_delay_ns != self.report.critical_delay_ns {
            return Err(format!(
                "critical delay drifted: incremental {} vs full {}",
                self.report.critical_delay_ns, full.critical_delay_ns
            ));
        }
        if full.required_time_ns != self.report.required_time_ns {
            return Err(format!(
                "required time drifted: incremental {} vs full {}",
                self.report.required_time_ns, full.required_time_ns
            ));
        }
        for g in network.iter_live() {
            if full.arrival[g.index()] != self.report.arrival[g.index()] {
                return Err(format!(
                    "arrival drifted at {g}: incremental {:?} vs full {:?}",
                    self.report.arrival[g.index()],
                    full.arrival[g.index()]
                ));
            }
            let (fr, ir) = (full.required[g.index()], self.report.required[g.index()]);
            if fr != ir {
                return Err(format!("required drifted at {g}: incremental {ir} vs full {fr}"));
            }
            let (fraw, iraw) = (full.required_raw[g.index()], self.report.required_raw[g.index()]);
            if fraw != iraw && !(fraw.is_infinite() && iraw.is_infinite()) {
                return Err(format!(
                    "raw required drifted at {g}: incremental {iraw} vs full {fraw}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_celllib::{DriveStrength, Library};
    use rapids_netlist::{GateType, NetworkBuilder, PinRef};
    use rapids_placement::{place, PlacerConfig};

    fn diamond() -> Network {
        let mut b = NetworkBuilder::new("diamond");
        b.inputs(["a", "b", "c", "d"]);
        b.gate("n1", GateType::Nand, &["a", "b"]);
        b.gate("n2", GateType::Nor, &["c", "d"]);
        b.gate("m1", GateType::And, &["n1", "n2"]);
        b.gate("m2", GateType::Or, &["n1", "n2"]);
        b.gate("f", GateType::Nand, &["m1", "m2"]);
        b.output("f");
        b.finish().unwrap()
    }

    fn setup(n: &Network) -> (Placement, Library, TimingConfig) {
        let lib = Library::standard_035um();
        let p = place(n, &lib, &PlacerConfig::fast(), 17);
        (p, lib, TimingConfig::default())
    }

    #[test]
    fn fresh_engine_matches_full_analysis() {
        let n = diamond();
        let (p, lib, cfg) = setup(&n);
        let inc = IncrementalSta::new(&n, &lib, &p, &cfg);
        assert!(inc.verify_matches_full(&n, &lib, &p).is_ok());
        assert_eq!(inc.stats().full_refreshes, 1);
        assert_eq!(inc.topo_order().len(), n.live_gate_count());
    }

    #[test]
    fn resize_update_matches_full_analysis() {
        let mut n = diamond();
        let (p, lib, cfg) = setup(&n);
        let mut inc = IncrementalSta::new(&n, &lib, &p, &cfg);
        let m1 = n.find_by_name("m1").unwrap();
        n.gate_mut(m1).size_class = DriveStrength::X8.size_class();
        inc.update(&n, &lib, &p, &[m1]);
        assert_eq!(inc.stats().incremental_updates, 1);
        inc.verify_matches_full(&n, &lib, &p).unwrap();
    }

    #[test]
    fn swap_update_matches_full_analysis() {
        let mut n = diamond();
        let (p, lib, cfg) = setup(&n);
        n.refresh_topo_hint();
        let mut inc = IncrementalSta::new(&n, &lib, &p, &cfg);
        let m1 = n.find_by_name("m1").unwrap();
        let m2 = n.find_by_name("m2").unwrap();
        // Swap the n1-pin of m1 with the n2-pin of m2.
        n.swap_pin_drivers(PinRef::new(m1, 0), PinRef::new(m2, 1)).unwrap();
        inc.update(&n, &lib, &p, &[m1, m2]);
        assert_eq!(inc.stats().incremental_updates, 1);
        inc.verify_matches_full(&n, &lib, &p).unwrap();
    }

    #[test]
    fn update_tracks_critical_delay_changes() {
        let mut n = diamond();
        let (p, lib, cfg) = setup(&n);
        let mut inc = IncrementalSta::new(&n, &lib, &p, &cfg);
        let before = inc.report().critical_delay_ns();
        let f = n.find_by_name("f").unwrap();
        n.gate_mut(f).size_class = DriveStrength::X8.size_class();
        inc.update(&n, &lib, &p, &[f]);
        let after = inc.report().critical_delay_ns();
        assert!(
            (after - before).abs() > 1e-12,
            "resizing the output driver must move the critical delay"
        );
        assert_eq!(inc.report().required_time_ns(), after);
        // The floating budget moved, so every required time moved with it.
        inc.verify_matches_full(&n, &lib, &p).unwrap();
    }

    #[test]
    fn empty_touched_set_is_a_no_op() {
        let n = diamond();
        let (p, lib, cfg) = setup(&n);
        let mut inc = IncrementalSta::new(&n, &lib, &p, &cfg);
        inc.update(&n, &lib, &p, &[]);
        assert_eq!(inc.stats().incremental_updates, 0);
    }

    #[test]
    fn grown_network_stays_incremental_and_matches_full() {
        let mut n = diamond();
        let (mut p, lib, cfg) = setup(&n);
        let mut inc = IncrementalSta::new(&n, &lib, &p, &cfg);
        let m1 = n.find_by_name("m1").unwrap();
        let driver = n.fanins(m1)[0];
        let inv = n.insert_inverter(PinRef::new(m1, 0), "late_inv").unwrap();
        // Host the inverter on top of its driver (the inverting-swap policy).
        p.host_at(inv, p.position(driver));
        inc.update(&n, &lib, &p, &[m1, inv]);
        assert_eq!(inc.stats().full_refreshes, 1, "growth must not force a full analysis");
        assert_eq!(inc.stats().incremental_updates, 1);
        inc.verify_matches_full(&n, &lib, &p).unwrap();
    }

    #[test]
    fn shrunk_network_falls_back_to_full() {
        let mut n = diamond();
        let (mut p, lib, cfg) = setup(&n);
        let mut inc = IncrementalSta::new(&n, &lib, &p, &cfg);
        let m1 = n.find_by_name("m1").unwrap();
        let driver = n.fanins(m1)[0];
        let inv = n.insert_inverter(PinRef::new(m1, 0), "late_inv").unwrap();
        p.host_at(inv, p.position(driver));
        inc.update(&n, &lib, &p, &[m1, inv]);
        // Undo the insertion and pop the slot: the arrays are now longer
        // than the network, which must trigger the full fallback.
        n.replace_pin_driver(PinRef::new(m1, 0), driver).unwrap();
        assert!(n.remove_if_dangling(inv));
        assert!(n.pop_trailing_tombstone());
        p.truncate_slots(n.gate_count());
        inc.update(&n, &lib, &p, &[m1, inv]);
        assert_eq!(inc.stats().full_refreshes, 2);
        inc.verify_matches_full(&n, &lib, &p).unwrap();
    }

    #[test]
    fn self_check_passes_over_random_resizes() {
        let mut n = diamond();
        let (p, lib, cfg) = setup(&n);
        let mut inc = IncrementalSta::new(&n, &lib, &p, &cfg);
        inc.enable_self_check(0xfeed, 1);
        let classes = [DriveStrength::X1, DriveStrength::X2, DriveStrength::X4, DriveStrength::X8];
        let gates: Vec<_> = n.iter_logic().collect();
        let mut rng = 0x12345u64;
        for step in 0..24 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let g = gates[(rng >> 33) as usize % gates.len()];
            let c = classes[(step as usize) % classes.len()];
            n.gate_mut(g).size_class = c.size_class();
            inc.update(&n, &lib, &p, &[g]);
        }
    }

    #[test]
    fn threaded_engine_is_bit_identical_to_serial() {
        let mut n = diamond();
        let (p, lib, cfg) = setup(&n);
        let mut serial = IncrementalSta::new(&n, &lib, &p, &cfg);
        let mut threaded = IncrementalSta::new_with_threads(&n, &lib, &p, &cfg, 4);
        let classes = [DriveStrength::X8, DriveStrength::X2, DriveStrength::X4];
        let gates: Vec<_> = n.iter_logic().collect();
        for (step, &g) in gates.iter().enumerate() {
            n.gate_mut(g).size_class = classes[step % classes.len()].size_class();
            serial.update(&n, &lib, &p, &[g]);
            threaded.update(&n, &lib, &p, &[g]);
        }
        for g in n.iter_live() {
            assert_eq!(serial.report().arrival(g), threaded.report().arrival(g));
            assert_eq!(serial.report().required(g), threaded.report().required(g));
        }
        assert_eq!(serial.stats(), threaded.stats());
    }
}
