//! Elmore delay of star-decomposed nets.
//!
//! For a net with trunk segment (R_t, C_t) and branch segments (R_i, C_i)
//! feeding sink pins with capacitance Cp_i, the Elmore delay from the
//! source pin to sink *k* is
//!
//! ```text
//! D_k = R_t · (C_t/2 + Σ_i (C_i + Cp_i))  +  R_k · (C_k/2 + Cp_k)
//! ```
//!
//! (the driver's own resistance is accounted for separately by the gate-delay
//! model, which sees the total net capacitance as its load).  Because branch
//! lengths differ, each sink sees a different delay — exactly the property
//! the paper exploits when swapping a critical sink onto a shorter branch.

use rapids_celllib::Library;
use rapids_netlist::{GateId, Network};
use rapids_placement::StarNet;

use crate::rc::{segment_capacitance_pf, segment_resistance_kohm, TimingConfig};

/// Wire delays and loads of one net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDelays {
    /// Driver of the net.
    pub driver: GateId,
    /// Total capacitance of the net seen by the driver (wire + sink pins +
    /// primary-output pad load if the net feeds one), in pF.
    pub total_load_pf: f64,
    /// Per-sink Elmore wire delay in ns, in the same order as the star's
    /// branches.
    pub sink_delays_ns: Vec<(GateId, f64)>,
}

impl NetDelays {
    /// Wire delay to a specific sink, if it is on this net.
    pub fn delay_to_ns(&self, sink: GateId) -> Option<f64> {
        self.sink_delays_ns.iter().find(|(s, _)| *s == sink).map(|(_, d)| *d)
    }

    /// The largest sink wire delay (0 for sink-less nets).
    pub fn worst_sink_delay_ns(&self) -> f64 {
        self.sink_delays_ns.iter().map(|(_, d)| *d).fold(0.0, f64::max)
    }
}

/// Capacitance presented by the in-pins of `sink` that are driven by
/// `driver` (a sink driving two pins of the same gate counts twice).
fn sink_pin_capacitance_pf(
    network: &Network,
    library: &Library,
    driver: GateId,
    sink: GateId,
) -> f64 {
    let gate = network.gate(sink);
    let per_pin = library.cell_for_gate(gate).map(|c| c.input_capacitance_pf).unwrap_or(0.01);
    let pin_count = gate.fanins.iter().filter(|&&d| d == driver).count().max(1);
    per_pin * pin_count as f64
}

/// Computes the Elmore wire delays and the total driver load of a net given
/// its star decomposition.
pub fn net_delays(
    network: &Network,
    library: &Library,
    star: &StarNet,
    config: &TimingConfig,
) -> NetDelays {
    let driver = star.driver;
    let trunk_c = segment_capacitance_pf(star.trunk.length_um, config);
    let trunk_r = segment_resistance_kohm(star.trunk.length_um, config);

    // Per-branch parasitics and sink pin loads.
    let mut branch_data = Vec::with_capacity(star.branches.len());
    let mut downstream_cap = trunk_c;
    for b in &star.branches {
        let sink = b.sink.expect("branch segments always have a sink");
        let c = segment_capacitance_pf(b.length_um, config);
        let r = segment_resistance_kohm(b.length_um, config);
        let pin = sink_pin_capacitance_pf(network, library, driver, sink);
        downstream_cap += c + pin;
        branch_data.push((sink, r, c, pin));
    }
    let pad_load = if network.drives_output(driver) { config.output_load_pf } else { 0.0 };
    let total_load_pf = downstream_cap + pad_load;

    // Capacitance hanging below the star center (everything except the trunk
    // wire itself): used for the trunk term of the Elmore sum.
    let below_center: f64 = branch_data.iter().map(|(_, _, c, p)| c + p).sum();
    let sink_delays_ns = branch_data
        .iter()
        .map(|&(sink, r, c, pin)| {
            let d = trunk_r * (trunk_c / 2.0 + below_center) + r * (c / 2.0 + pin);
            (sink, d)
        })
        .collect();
    NetDelays { driver, total_load_pf, sink_delays_ns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_celllib::Library;
    use rapids_netlist::{GateType, NetworkBuilder};
    use rapids_placement::{net_star, Placement, Point, Region};

    fn setup() -> (Network, Placement, Library) {
        let mut b = NetworkBuilder::new("elmore");
        b.input("a");
        b.gate("near", GateType::Inv, &["a"]);
        b.gate("far", GateType::Inv, &["a"]);
        b.output("near");
        b.output("far");
        let n = b.finish().unwrap();
        let region = Region { width_um: 10_000.0, height_um: 10_000.0, row_height_um: 13.0 };
        let mut p = Placement::new(region, n.gate_count());
        p.set_position(n.find_by_name("a").unwrap(), Point::new(0.0, 0.0));
        p.set_position(n.find_by_name("near").unwrap(), Point::new(100.0, 0.0));
        p.set_position(n.find_by_name("far").unwrap(), Point::new(5_000.0, 0.0));
        (n, p, Library::standard_035um())
    }

    #[test]
    fn farther_sink_has_larger_delay() {
        let (n, p, lib) = setup();
        let a = n.find_by_name("a").unwrap();
        let star = net_star(&n, &p, a);
        let delays = net_delays(&n, &lib, &star, &TimingConfig::default());
        let near = delays.delay_to_ns(n.find_by_name("near").unwrap()).unwrap();
        let far = delays.delay_to_ns(n.find_by_name("far").unwrap()).unwrap();
        assert!(far > near, "far={far} near={near}");
        assert_eq!(delays.worst_sink_delay_ns(), far);
    }

    #[test]
    fn load_includes_wire_and_pins() {
        let (n, p, lib) = setup();
        let a = n.find_by_name("a").unwrap();
        let star = net_star(&n, &p, a);
        let delays = net_delays(&n, &lib, &star, &TimingConfig::default());
        let wire_cap = segment_capacitance_pf(star.total_length_um(), &TimingConfig::default());
        let inv = lib.cell(GateType::Inv, 1, rapids_celllib::DriveStrength::X1).unwrap();
        let expected_min = wire_cap + 2.0 * inv.input_capacitance_pf;
        assert!(delays.total_load_pf >= expected_min * 0.999);
    }

    #[test]
    fn output_pad_load_added() {
        let (n, p, lib) = setup();
        let near = n.find_by_name("near").unwrap();
        let star = net_star(&n, &p, near);
        let cfg = TimingConfig::default();
        let delays = net_delays(&n, &lib, &star, &cfg);
        // "near" drives a primary output but no gate sinks: load is the pad.
        assert!((delays.total_load_pf - cfg.output_load_pf).abs() < 1e-12);
        assert!(delays.sink_delays_ns.is_empty());
        assert!(delays.delay_to_ns(n.find_by_name("far").unwrap()).is_none());
    }

    #[test]
    fn zero_length_net_has_zero_wire_delay() {
        let mut b = NetworkBuilder::new("z");
        b.input("a");
        b.gate("f", GateType::Inv, &["a"]);
        b.output("f");
        let n = b.finish().unwrap();
        let region = Region { width_um: 100.0, height_um: 100.0, row_height_um: 13.0 };
        let p = Placement::new(region, n.gate_count());
        let a = n.find_by_name("a").unwrap();
        let star = net_star(&n, &p, a);
        let lib = Library::standard_035um();
        let d = net_delays(&n, &lib, &star, &TimingConfig::default());
        assert!(d.worst_sink_delay_ns() < 1e-12);
        assert!(d.total_load_pf > 0.0);
    }

    #[test]
    fn multi_pin_sink_counts_each_pin() {
        let mut b = NetworkBuilder::new("mp");
        b.input("a");
        b.gate("f", GateType::Xor, &["a", "a"]);
        b.output("f");
        let n = b.finish().unwrap();
        let region = Region { width_um: 100.0, height_um: 100.0, row_height_um: 13.0 };
        let p = Placement::new(region, n.gate_count());
        let lib = Library::standard_035um();
        let a = n.find_by_name("a").unwrap();
        let star = net_star(&n, &p, a);
        let d = net_delays(&n, &lib, &star, &TimingConfig::default());
        let xor = lib.cell(GateType::Xor, 2, rapids_celllib::DriveStrength::X1).unwrap();
        // Two sink entries (one per pin), each contributing a pin cap.
        assert!(d.total_load_pf >= 2.0 * xor.input_capacitance_pf * 0.999);
    }
}
