//! Memoized net parasitics for candidate-scoring hot loops.
//!
//! The neighborhood metrics re-derive star geometry and Elmore delays from
//! the *current* network state on every probe, which makes one sizing or
//! rewiring pass recompute the same unchanged nets thousands of times.
//! [`NetCache`] memoizes both layers per driver with explicit, two-level
//! invalidation:
//!
//! * [`NetCache::invalidate_topology`] — the net's sink set changed (a pin
//!   swap): star geometry *and* delays are dropped;
//! * [`NetCache::invalidate_loads`] — a sink's drive strength changed (its
//!   pin capacitance): the star geometry survives, only the delays are
//!   recomputed.
//!
//! Values are computed by the same `net_star`/`net_delays`/`cell_delay`
//! code as the uncached paths, so a cache hit is bit-identical to a fresh
//! evaluation — callers only have to be complete about invalidation.

use rapids_celllib::{cell_delay, CellDelay, Library};
use rapids_netlist::{GateId, Network};
use rapids_placement::{net_star, Placement, StarNet};

use crate::elmore::{net_delays, NetDelays};
use crate::rc::TimingConfig;

/// Per-driver memo of star decompositions and Elmore delays.
#[derive(Debug, Clone)]
pub struct NetCache {
    stars: Vec<Option<StarNet>>,
    delays: Vec<Option<NetDelays>>,
}

impl NetCache {
    /// An empty cache with one slot per gate.
    pub fn new(slots: usize) -> Self {
        NetCache { stars: vec![None; slots], delays: vec![None; slots] }
    }

    /// An empty cache sized for `network`.
    pub fn for_network(network: &Network) -> Self {
        Self::new(network.gate_count())
    }

    /// Grows the cache to cover at least `slots` gate slots (new entries are
    /// cold).  Call after edits that add gates, e.g. inverting swaps.
    pub fn ensure_slots(&mut self, slots: usize) {
        if self.stars.len() < slots {
            self.stars.resize(slots, None);
            self.delays.resize(slots, None);
        }
    }

    /// Drops everything known about the net driven by `gate` (its sink set
    /// changed).
    pub fn invalidate_topology(&mut self, gate: GateId) {
        self.stars[gate.index()] = None;
        self.delays[gate.index()] = None;
    }

    /// Drops the delays of the net driven by `gate` but keeps its geometry
    /// (a sink's pin capacitance changed; the placement did not).
    pub fn invalidate_loads(&mut self, gate: GateId) {
        self.delays[gate.index()] = None;
    }

    /// The Elmore delays and total load of the net driven by `driver`,
    /// computed on miss from the current network state.
    pub fn net_delays(
        &mut self,
        network: &Network,
        library: &Library,
        placement: &Placement,
        config: &TimingConfig,
        driver: GateId,
    ) -> &NetDelays {
        let i = driver.index();
        if self.delays[i].is_none() {
            if self.stars[i].is_none() {
                self.stars[i] = Some(net_star(network, placement, driver));
            }
            let star = self.stars[i].as_ref().expect("star computed above");
            self.delays[i] = Some(net_delays(network, library, star, config));
        }
        self.delays[i].as_ref().expect("delays computed above")
    }

    /// The pin-to-pin delay of `gate` driving its placed net, using the
    /// cached load.  Bit-identical to [`crate::gate_output_delay`].
    pub fn gate_output_delay(
        &mut self,
        network: &Network,
        library: &Library,
        placement: &Placement,
        config: &TimingConfig,
        gate: GateId,
    ) -> CellDelay {
        let g = network.gate(gate);
        if g.gtype.is_source() {
            return CellDelay::default();
        }
        let load = self.net_delays(network, library, placement, config, gate).total_load_pf;
        match library.cell_for_gate(g) {
            Some(cell) => cell_delay(cell, load),
            None => CellDelay { rise_ns: 0.1, fall_ns: 0.1 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate_delay::gate_output_delay;
    use rapids_celllib::{DriveStrength, Library};
    use rapids_netlist::{GateType, NetworkBuilder, PinRef};
    use rapids_placement::{place, PlacerConfig};

    fn setup() -> (Network, Placement, Library, TimingConfig) {
        let mut b = NetworkBuilder::new("cache");
        b.inputs(["a", "b", "c"]);
        b.gate("n1", GateType::Nand, &["a", "b"]);
        b.gate("n2", GateType::Nand, &["b", "c"]);
        b.gate("f", GateType::Nor, &["n1", "n2"]);
        b.output("f");
        let n = b.finish().unwrap();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 23);
        (n, p, lib, TimingConfig::default())
    }

    #[test]
    fn cached_values_match_fresh_computation() {
        let (n, p, lib, cfg) = setup();
        let mut cache = NetCache::for_network(&n);
        for g in n.iter_live() {
            let fresh = gate_output_delay(&n, &lib, &p, &cfg, g);
            let cached = cache.gate_output_delay(&n, &lib, &p, &cfg, g);
            assert_eq!(fresh, cached, "mismatch at {g}");
            // Second probe hits the memo and must agree too.
            assert_eq!(cache.gate_output_delay(&n, &lib, &p, &cfg, g), fresh);
        }
    }

    #[test]
    fn load_invalidation_tracks_resizes() {
        let (mut n, p, lib, cfg) = setup();
        let mut cache = NetCache::for_network(&n);
        let b = n.find_by_name("b").unwrap();
        let n1 = n.find_by_name("n1").unwrap();
        let before = cache.net_delays(&n, &lib, &p, &cfg, b).total_load_pf;
        n.gate_mut(n1).size_class = DriveStrength::X8.size_class();
        cache.invalidate_loads(b);
        let after = cache.net_delays(&n, &lib, &p, &cfg, b).total_load_pf;
        assert!(after > before, "a larger sink cell must present more load");
        // The recomputed entry must equal a fully fresh evaluation.
        let fresh = net_delays(&n, &lib, &net_star(&n, &p, b), &cfg);
        assert_eq!(after, fresh.total_load_pf);
        assert_eq!(cache.net_delays(&n, &lib, &p, &cfg, b), &fresh);
    }

    #[test]
    fn topology_invalidation_tracks_swaps() {
        let (mut n, p, lib, cfg) = setup();
        let mut cache = NetCache::for_network(&n);
        let n1 = n.find_by_name("n1").unwrap();
        let n2 = n.find_by_name("n2").unwrap();
        let f = n.find_by_name("f").unwrap();
        let _ = cache.net_delays(&n, &lib, &p, &cfg, n1);
        let _ = cache.net_delays(&n, &lib, &p, &cfg, n2);
        n.swap_pin_drivers(PinRef::new(f, 0), PinRef::new(f, 1)).unwrap();
        cache.invalidate_topology(n1);
        cache.invalidate_topology(n2);
        for d in [n1, n2] {
            let fresh = gate_output_delay(&n, &lib, &p, &cfg, d);
            assert_eq!(cache.gate_output_delay(&n, &lib, &p, &cfg, d), fresh);
        }
    }
}
