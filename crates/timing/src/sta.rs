//! Static timing analysis over the placed netlist.
//!
//! The analysis propagates rise/fall arrival times forward through the
//! network (inverting cells exchange the polarities), computes required
//! times backward from the primary outputs, and reports per-gate slacks and
//! the critical path.  The per-gate propagation kernels live here and are
//! shared with the dirty-cone engine in [`crate::incremental`]:
//! [`crate::IncrementalSta::update`] runs them over the affected
//! fan-out/fan-in cones.  `Sta::analyze` routes through the batched
//! levelized kernel ([`crate::levelized`]); the pointer-chasing full sweep
//! is preserved as [`Sta::analyze_reference`], the executable specification
//! everything else is verified against.  All three produce bit-identical
//! [`TimingReport`]s.
//!
//! Required times keep the textbook min-propagation form (so results are
//! bit-identical to the historical analyzer), stored twice: the *raw* value
//! (`+INF` for gates reaching no primary output) drives the backward
//! propagation, and the clamped value is what [`TimingReport::required`]
//! serves.  When the default required-time budget floats with the critical
//! delay, an incremental update replays only the O(E) arithmetic backward
//! pass — the expensive parasitic extraction stays dirty-cone.

use rapids_celllib::{CellDelay, Library};
use rapids_netlist::{GateId, Network};
use rapids_placement::{net_star, Placement};

use crate::elmore::{net_delays, NetDelays};
use crate::gate_delay::gate_output_delay;
use crate::rc::TimingConfig;

/// Rise/fall arrival time at a gate output, in ns.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ArrivalTime {
    /// Arrival of the rising transition, ns.
    pub rise_ns: f64,
    /// Arrival of the falling transition, ns.
    pub fall_ns: f64,
}

impl ArrivalTime {
    /// The later (worst) of the two arrivals.
    pub fn worst(&self) -> f64 {
        self.rise_ns.max(self.fall_ns)
    }
}

/// Result of a full static timing analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    pub(crate) arrival: Vec<ArrivalTime>,
    pub(crate) required: Vec<f64>,
    pub(crate) gate_delays: Vec<CellDelay>,
    pub(crate) net_delays: Vec<Option<NetDelays>>,
    /// Unclamped required times (`+INF` for gates that reach no primary
    /// output): the propagation form of `required`, kept so the incremental
    /// engine can continue the backward min-propagation exactly.
    pub(crate) required_raw: Vec<f64>,
    pub(crate) critical_delay_ns: f64,
    pub(crate) required_time_ns: f64,
}

impl TimingReport {
    /// Arrival time at a gate's output.
    pub fn arrival(&self, gate: GateId) -> ArrivalTime {
        self.arrival[gate.index()]
    }

    /// Required time at a gate's output (worst over transitions), ns.
    pub fn required(&self, gate: GateId) -> f64 {
        self.required[gate.index()]
    }

    /// Slack of a gate: required − worst arrival, ns.
    pub fn slack(&self, gate: GateId) -> f64 {
        self.required[gate.index()] - self.arrival[gate.index()].worst()
    }

    /// The cell (pin-to-pin) delay used for a gate in this analysis.
    pub fn gate_delay(&self, gate: GateId) -> CellDelay {
        self.gate_delays[gate.index()]
    }

    /// Wire delays of the net driven by `gate`, if the gate is live.
    pub fn net(&self, gate: GateId) -> Option<&NetDelays> {
        self.net_delays[gate.index()].as_ref()
    }

    /// Worst (smallest) slack over all live gates, ns.
    pub fn worst_slack_ns(&self) -> f64 {
        self.arrival
            .iter()
            .zip(&self.required)
            .filter(|(a, r)| !(a.worst() == 0.0 && **r == f64::INFINITY))
            .map(|(a, r)| r - a.worst())
            .fold(f64::INFINITY, f64::min)
    }

    /// Critical path delay: the latest arrival over all primary outputs, ns.
    pub fn critical_delay_ns(&self) -> f64 {
        self.critical_delay_ns
    }

    /// The required time used at the primary outputs, ns.
    pub fn required_time_ns(&self) -> f64 {
        self.required_time_ns
    }

    /// Returns `true` if this report has a slot for `gate`.  Gates inserted
    /// *after* the analysis ran (e.g. inverters added by an inverting swap)
    /// are not covered until the incremental engine extends the report;
    /// consumers that score candidates against a frozen report use this to
    /// fall back to a local estimate for such gates.
    pub fn covers(&self, gate: GateId) -> bool {
        gate.index() < self.arrival.len()
    }

    /// Extends every per-slot array to cover at least `slots` gate slots.
    /// New slots hold the neutral values a from-scratch analysis would start
    /// from (zero arrivals, `+INF` raw required times, empty parasitics);
    /// the incremental engine then times them like any other dirty gate.
    pub(crate) fn ensure_slots(&mut self, slots: usize) {
        if self.arrival.len() >= slots {
            return;
        }
        self.arrival.resize(slots, ArrivalTime::default());
        self.required.resize(slots, self.required_time_ns);
        self.required_raw.resize(slots, f64::INFINITY);
        self.gate_delays.resize(slots, CellDelay::default());
        self.net_delays.resize(slots, None);
    }
}

// ----------------------------------------------------------------------
// Shared propagation kernels (used by `Sta::analyze` and `IncrementalSta`)
// ----------------------------------------------------------------------

/// `true` per slot for gates that drive a primary-output port.
pub(crate) fn output_driver_mask(network: &Network) -> Vec<bool> {
    let mut mask = vec![false; network.gate_count()];
    for o in network.outputs() {
        mask[o.driver.index()] = true;
    }
    mask
}

/// Recomputes the net parasitics and the cell delay of one gate from the
/// current connectivity, placement and drive strength.
pub(crate) fn refresh_parasitics(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    gate: GateId,
    nets: &mut [Option<NetDelays>],
    gate_delays: &mut [CellDelay],
) {
    let star = net_star(network, placement, gate);
    nets[gate.index()] = Some(net_delays(network, library, &star, config));
    gate_delays[gate.index()] = gate_output_delay(network, library, placement, config, gate);
}

/// Forward kernel: the arrival time of one gate from the arrivals of its
/// fan-ins, with polarity handling.  Fold order over the fan-in list is part
/// of the contract (it fixes the floating-point result).
pub(crate) fn arrival_of(
    network: &Network,
    gate: GateId,
    nets: &[Option<NetDelays>],
    gate_delays: &[CellDelay],
    arrival: &[ArrivalTime],
) -> ArrivalTime {
    let g = network.gate(gate);
    if g.gtype.is_source() {
        return ArrivalTime::default();
    }
    let d = gate_delays[gate.index()];
    let mut out = ArrivalTime { rise_ns: 0.0, fall_ns: 0.0 };
    for &f in &g.fanins {
        let wire = nets[f.index()].as_ref().and_then(|nd| nd.delay_to_ns(gate)).unwrap_or(0.0);
        let in_rise = arrival[f.index()].rise_ns + wire;
        let in_fall = arrival[f.index()].fall_ns + wire;
        let (cand_rise, cand_fall) = if g.gtype.is_xor_family() {
            // Either polarity of the input can cause either output
            // transition depending on the side inputs: be conservative.
            let worst_in = in_rise.max(in_fall);
            (worst_in + d.rise_ns, worst_in + d.fall_ns)
        } else if g.gtype.output_inverted() {
            (in_fall + d.rise_ns, in_rise + d.fall_ns)
        } else {
            (in_rise + d.rise_ns, in_fall + d.fall_ns)
        };
        out.rise_ns = out.rise_ns.max(cand_rise);
        out.fall_ns = out.fall_ns.max(cand_fall);
    }
    out
}

/// Backward kernel: the unclamped required time of one gate from the raw
/// required times of its sinks (worst-case min-propagation, single value).
/// `+INF` when the gate reaches no primary output and drives none.
///
/// `min` is exact in IEEE arithmetic, so folding per-gate over the fan-out
/// list produces bit-identical values to the historical per-edge sweep
/// regardless of visit order.
pub(crate) fn required_raw_of(
    network: &Network,
    gate: GateId,
    nets: &[Option<NetDelays>],
    gate_delays: &[CellDelay],
    required_raw: &[f64],
    drives_output: bool,
    required_time_ns: f64,
) -> f64 {
    let mut required = if drives_output { required_time_ns } else { f64::INFINITY };
    for &s in network.fanouts(gate) {
        let wire = nets[gate.index()].as_ref().and_then(|nd| nd.delay_to_ns(s)).unwrap_or(0.0);
        required = required.min(required_raw[s.index()] - gate_delays[s.index()].worst() - wire);
    }
    required
}

/// Materializes a servable required time from its raw propagation form.
/// Gates that reach no primary output keep an infinite raw value; clamp to
/// the analysis horizon so slacks stay finite.
pub(crate) fn clamp_required(raw: f64, required_time_ns: f64) -> f64 {
    if raw.is_finite() {
        raw
    } else {
        required_time_ns
    }
}

/// Static timing analyzer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sta;

impl Sta {
    /// Runs a full rise/fall static timing analysis of the placed network.
    ///
    /// Since the levelized kernel landed this routes through
    /// [`crate::levelized`]: a compiled struct-of-arrays view is built and
    /// swept level by level.  The result is bit-identical to
    /// [`Sta::analyze_reference`] (the seeded property suites and the
    /// incremental self-check enforce this).
    ///
    /// # Panics
    ///
    /// Panics if the network is cyclic.
    pub fn analyze(
        network: &Network,
        library: &Library,
        placement: &Placement,
        config: &TimingConfig,
    ) -> TimingReport {
        crate::levelized::analyze(network, library, placement, config, 1)
    }

    /// [`Sta::analyze`] with within-level parallelism.  Any `threads` value
    /// produces bit-identical results — each gate's value is written to its
    /// own slot, so no reduction order exists to vary (see
    /// [`crate::levelized`]).
    pub fn analyze_with_threads(
        network: &Network,
        library: &Library,
        placement: &Placement,
        config: &TimingConfig,
        threads: usize,
    ) -> TimingReport {
        crate::levelized::analyze(network, library, placement, config, threads)
    }

    /// The reference analyzer: per-gate pointer-chasing sweeps over the
    /// network's native adjacency, preserved verbatim as the executable
    /// specification the levelized kernel is verified against (and as the
    /// honest pre-kernel baseline for the `sta_kernel` micro-bench).
    ///
    /// # Panics
    ///
    /// Panics if the network is cyclic.
    pub fn analyze_reference(
        network: &Network,
        library: &Library,
        placement: &Placement,
        config: &TimingConfig,
    ) -> TimingReport {
        let slots = network.gate_count();
        let order = rapids_netlist::topo::topological_order(network)
            .expect("timing analysis requires an acyclic network");

        // Net parasitics and cell delays, one per driver.
        let mut nets: Vec<Option<NetDelays>> = vec![None; slots];
        let mut gate_delays: Vec<CellDelay> = vec![CellDelay::default(); slots];
        for &g in &order {
            refresh_parasitics(network, library, placement, config, g, &mut nets, &mut gate_delays);
        }

        // Forward arrival propagation with polarity handling.
        let mut arrival = vec![ArrivalTime::default(); slots];
        for &g in &order {
            arrival[g.index()] = arrival_of(network, g, &nets, &gate_delays, &arrival);
        }

        // Critical delay over the primary outputs.
        let critical_delay_ns =
            network.outputs().iter().map(|o| arrival[o.driver.index()].worst()).fold(0.0, f64::max);
        let required_time_ns = config.required_time_ns.unwrap_or(critical_delay_ns);

        // Backward required-time min-propagation (worst-case, single value).
        let drives = output_driver_mask(network);
        let mut required_raw = vec![f64::INFINITY; slots];
        for &g in order.iter().rev() {
            required_raw[g.index()] = required_raw_of(
                network,
                g,
                &nets,
                &gate_delays,
                &required_raw,
                drives[g.index()],
                required_time_ns,
            );
        }
        let required: Vec<f64> =
            required_raw.iter().map(|&r| clamp_required(r, required_time_ns)).collect();

        TimingReport {
            arrival,
            required,
            gate_delays,
            net_delays: nets,
            required_raw,
            critical_delay_ns,
            required_time_ns,
        }
    }

    /// Traces one critical path from a worst primary output back to a source,
    /// returned in source→output order.
    pub fn critical_path(network: &Network, report: &TimingReport) -> Vec<GateId> {
        let Some(worst_output) = network
            .outputs()
            .iter()
            .max_by(|a, b| {
                report.arrival(a.driver).worst().total_cmp(&report.arrival(b.driver).worst())
            })
            .map(|o| o.driver)
        else {
            return Vec::new();
        };
        let mut path = vec![worst_output];
        let mut current = worst_output;
        loop {
            let gate = network.gate(current);
            if gate.gtype.is_source() || gate.fanins.is_empty() {
                break;
            }
            let next = gate
                .fanins
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    let wa = report.net(a).and_then(|nd| nd.delay_to_ns(current)).unwrap_or(0.0);
                    let wb = report.net(b).and_then(|nd| nd.delay_to_ns(current)).unwrap_or(0.0);
                    (report.arrival(a).worst() + wa).total_cmp(&(report.arrival(b).worst() + wb))
                })
                .expect("non-source gate has fanins");
            path.push(next);
            current = next;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_celllib::{DriveStrength, Library};
    use rapids_netlist::{GateType, NetworkBuilder};
    use rapids_placement::{place, PlacerConfig};

    fn chain(depth: usize) -> Network {
        let mut b = NetworkBuilder::new("chain");
        b.inputs(["a", "b"]);
        b.gate("g0", GateType::Nand, &["a", "b"]);
        for i in 1..depth {
            b.gate(format!("g{i}"), GateType::Nand, &[&format!("g{}", i - 1), "b"]);
        }
        b.output(format!("g{}", depth - 1));
        b.finish().unwrap()
    }

    fn analyzed(n: &Network) -> (Placement, Library, TimingReport) {
        let lib = Library::standard_035um();
        let p = place(n, &lib, &PlacerConfig::fast(), 11);
        let r = Sta::analyze(n, &lib, &p, &TimingConfig::default());
        (p, lib, r)
    }

    #[test]
    fn deeper_chains_are_slower() {
        let short = chain(3);
        let long = chain(12);
        let (_, _, r_short) = analyzed(&short);
        let (_, _, r_long) = analyzed(&long);
        assert!(r_long.critical_delay_ns() > r_short.critical_delay_ns());
    }

    #[test]
    fn arrival_monotone_along_chain() {
        let n = chain(6);
        let (_, _, r) = analyzed(&n);
        let mut prev = 0.0;
        for i in 0..6 {
            let g = n.find_by_name(&format!("g{i}")).unwrap();
            let a = r.arrival(g).worst();
            assert!(a > prev, "arrival must increase along the chain");
            prev = a;
        }
    }

    #[test]
    fn worst_slack_nonpositive_without_explicit_required_time() {
        let n = chain(6);
        let (_, _, r) = analyzed(&n);
        // Required time defaults to the critical delay.  The critical output
        // driver then has exactly zero slack; upstream gates may see slightly
        // negative slack because the backward pass uses worst-case (rise/fall
        // max) stage delays while the forward pass is polarity-aware.
        let critical_driver = n.find_by_name("g5").unwrap();
        assert!(r.slack(critical_driver).abs() < 1e-9);
        assert!(r.worst_slack_ns() <= 1e-9);
        assert!(r.worst_slack_ns() > -0.5 * r.critical_delay_ns());
    }

    #[test]
    fn explicit_required_time_shifts_slack() {
        let n = chain(6);
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 11);
        let base = Sta::analyze(&n, &lib, &p, &TimingConfig::default());
        let relaxed = Sta::analyze(
            &n,
            &lib,
            &p,
            &TimingConfig {
                required_time_ns: Some(base.critical_delay_ns() + 1.0),
                ..TimingConfig::default()
            },
        );
        let shift = relaxed.worst_slack_ns() - base.worst_slack_ns();
        assert!(
            (shift - 1.0).abs() < 1e-6,
            "slack should shift by exactly the budget, got {shift}"
        );
    }

    #[test]
    fn critical_path_ends_at_worst_output_and_starts_at_source() {
        let n = chain(8);
        let (_, _, r) = analyzed(&n);
        let path = Sta::critical_path(&n, &r);
        assert!(!path.is_empty());
        let first = *path.first().unwrap();
        let last = *path.last().unwrap();
        assert!(n.gate(first).gtype.is_source());
        assert!(n.drives_output(last));
        // Arrivals increase along the path.
        for w in path.windows(2) {
            assert!(r.arrival(w[1]).worst() >= r.arrival(w[0]).worst());
        }
    }

    #[test]
    fn upsizing_a_critical_gate_reduces_delay() {
        let mut n = chain(8);
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 11);
        let cfg = TimingConfig::default();
        let before = Sta::analyze(&n, &lib, &p, &cfg);
        let path = Sta::critical_path(&n, &before);
        // Upsize every logic gate on the critical path to maximum drive.
        for &g in &path {
            if !n.gate(g).gtype.is_source() {
                n.gate_mut(g).size_class = DriveStrength::X8.size_class();
            }
        }
        let after = Sta::analyze(&n, &lib, &p, &cfg);
        assert!(after.critical_delay_ns() < before.critical_delay_ns());
    }

    #[test]
    fn rise_fall_polarities_differ_through_inverting_chain() {
        let n = chain(5);
        let (_, _, r) = analyzed(&n);
        let last = n.find_by_name("g4").unwrap();
        let a = r.arrival(last);
        // Rise and fall arrivals should both be positive and generally
        // different because the NAND cell has asymmetric rise/fall.
        assert!(a.rise_ns > 0.0 && a.fall_ns > 0.0);
        assert!((a.rise_ns - a.fall_ns).abs() > 1e-9);
    }

    #[test]
    fn required_times_match_direct_backward_chaining() {
        // The per-gate backward kernel must agree bit-for-bit with the
        // textbook per-edge min-propagation of required times.
        let n = chain(7);
        let (_, _, r) = analyzed(&n);
        let order = rapids_netlist::topo::topological_order(&n).unwrap();
        let mut required = vec![f64::INFINITY; n.gate_count()];
        for o in n.outputs() {
            let slot = &mut required[o.driver.index()];
            *slot = slot.min(r.required_time_ns());
        }
        for &g in order.iter().rev() {
            let d = r.gate_delay(g).worst();
            for &f in n.fanins(g) {
                let wire = r.net(f).and_then(|nd| nd.delay_to_ns(g)).unwrap_or(0.0);
                let need = required[g.index()] - d - wire;
                let slot = &mut required[f.index()];
                *slot = slot.min(need);
            }
        }
        for g in n.iter_live() {
            let want = if required[g.index()].is_finite() {
                required[g.index()]
            } else {
                r.required_time_ns()
            };
            assert_eq!(r.required(g), want, "required mismatch at {g}");
        }
    }
}
