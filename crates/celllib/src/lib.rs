//! # rapids-celllib
//!
//! Synthetic 0.35 µm standard-cell library modelled on the one used in §6 of
//! the RAPIDS paper: `INV`, `BUF`, `NAND`, `NOR`, `XOR`, `XNOR` cells with
//! 2–4 inputs and **four drive-strength implementations** per function, plus
//! a pin-to-pin load-dependent delay model with separate rise and fall
//! parameters.
//!
//! The paper's interconnect constants are exposed as
//! [`UNIT_CAPACITANCE_PF_PER_CM`] (2 pF/cm) and
//! [`UNIT_RESISTANCE_KOHM_PER_CM`] (2.4 kΩ/cm).
//!
//! The absolute numbers are synthetic (derived from classic 0.35 µm textbook
//! figures); only relative delays and areas matter for the percentages the
//! experiments report, as discussed in `DESIGN.md`.
//!
//! ```
//! use rapids_celllib::{Library, DriveStrength};
//! use rapids_netlist::GateType;
//!
//! let lib = Library::standard_035um();
//! let nand2_x1 = lib.cell(GateType::Nand, 2, DriveStrength::X1).unwrap();
//! let nand2_x4 = lib.cell(GateType::Nand, 2, DriveStrength::X4).unwrap();
//! assert!(nand2_x4.area_um2 > nand2_x1.area_um2);
//! assert!(nand2_x4.drive_resistance_kohm < nand2_x1.drive_resistance_kohm);
//! ```

pub mod cell;
pub mod delay;
pub mod library;

pub use cell::{Cell, DriveStrength};
pub use delay::{cell_delay, CellDelay, Transition};
pub use library::Library;

/// Unit wire capacitance used by the paper's interconnect model: 2 pF/cm.
pub const UNIT_CAPACITANCE_PF_PER_CM: f64 = 2.0;

/// Unit wire resistance used by the paper's interconnect model: 2.4 kΩ/cm.
pub const UNIT_RESISTANCE_KOHM_PER_CM: f64 = 2.4;

/// Standard-cell row height for the 0.35 µm library, in µm.  Used by the
/// row-based placer.
pub const ROW_HEIGHT_UM: f64 = 13.0;

/// Horizontal placement grid (site width), in µm.
pub const SITE_WIDTH_UM: f64 = 0.8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(UNIT_CAPACITANCE_PF_PER_CM, 2.0);
        assert_eq!(UNIT_RESISTANCE_KOHM_PER_CM, 2.4);
    }
}
