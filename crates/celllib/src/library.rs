//! The standard-cell library: a catalogue of [`Cell`]s indexed by function,
//! fan-in count and drive strength.

use std::collections::HashMap;

use rapids_netlist::{Gate, GateType};

use crate::cell::{Cell, DriveStrength};

/// Key used for cell lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CellKey {
    function: GateType,
    input_count: usize,
    drive: DriveStrength,
}

/// A technology library: the set of available cells plus lookup helpers.
///
/// Use [`Library::standard_035um`] for the synthetic 0.35 µm library that
/// mirrors the one in the paper's evaluation (INV/BUF/NAND/NOR/XOR/XNOR,
/// 2–4 inputs, 4 drive strengths).  AND/OR/XNOR-free netlists produced by the
/// technology mapper only use those cells, but the library also characterizes
/// AND/OR cells so that hand-built example networks can be timed directly.
#[derive(Debug, Clone)]
pub struct Library {
    name: String,
    cells: HashMap<CellKey, Cell>,
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Self {
        Library { name: name.into(), cells: HashMap::new() }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells in the library.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the library holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Adds (or replaces) a cell.
    pub fn add_cell(&mut self, cell: Cell) {
        let key =
            CellKey { function: cell.function, input_count: cell.input_count, drive: cell.drive };
        self.cells.insert(key, cell);
    }

    /// Looks up a cell by function, fan-in count and drive strength.
    pub fn cell(
        &self,
        function: GateType,
        input_count: usize,
        drive: DriveStrength,
    ) -> Option<&Cell> {
        self.cells.get(&CellKey { function, input_count, drive })
    }

    /// Returns the cell that implements a netlist gate given its current
    /// `size_class`, falling back to the nearest available fan-in count if the
    /// exact arity is not characterized (e.g. 6-input AND in a hand-built
    /// example network).
    pub fn cell_for_gate(&self, gate: &Gate) -> Option<&Cell> {
        let drive = DriveStrength::from_size_class(gate.size_class);
        let n = gate.fanin_count().max(1);
        if let Some(c) = self.cell(gate.gtype, n, drive) {
            return Some(c);
        }
        // Fall back to the largest characterized arity of the same function.
        (1..=n).rev().find_map(|k| self.cell(gate.gtype, k, drive))
    }

    /// All drive strengths available for a (function, arity) pair, weakest
    /// first.  This is the candidate set explored by gate sizing.
    pub fn available_drives(&self, function: GateType, input_count: usize) -> Vec<DriveStrength> {
        DriveStrength::ALL
            .iter()
            .copied()
            .filter(|&d| self.cell(function, input_count, d).is_some())
            .collect()
    }

    /// Total standard-cell area of a network's live logic gates under their
    /// current drive-strength assignment, in µm².  Gates without a library
    /// cell (e.g. very wide hand-built gates) contribute a nominal 25 µm².
    pub fn network_area_um2(&self, network: &rapids_netlist::Network) -> f64 {
        network
            .iter_logic()
            .map(|g| self.cell_for_gate(network.gate(g)).map(|c| c.area_um2).unwrap_or(25.0))
            .sum()
    }

    /// Builds the synthetic 0.35 µm library described in `DESIGN.md`.
    ///
    /// Base parameters (X1):
    /// * INV: area 13 µm², pin cap 0.008 pF, drive 1.6 kΩ, intrinsic 0.05/0.04 ns
    /// * NAND/NOR 2–4 inputs: area grows with arity, NOR slightly slower
    ///   (series PMOS), XOR/XNOR roughly 2× a NAND of the same arity.
    ///
    /// For each higher drive strength, area and pin capacitance scale with
    /// the drive factor while drive resistance scales with its inverse —
    /// the standard constant-RC-product idealization.
    pub fn standard_035um() -> Library {
        let mut lib = Library::new("rapids-0.35um");
        struct Proto {
            function: GateType,
            inputs: usize,
            area: f64,
            cin: f64,
            rd: f64,
            rise: f64,
            fall: f64,
        }
        let mut protos: Vec<Proto> = Vec::new();
        // Unary cells.  Areas are full-cell footprints (row height × width)
        // of a generous 0.35 µm library, which keeps die sides in the
        // millimetre range for the Table 1 circuits so that interconnect is
        // a first-order effect, as in the paper's experiments.
        protos.push(Proto {
            function: GateType::Inv,
            inputs: 1,
            area: 55.0,
            cin: 0.008,
            rd: 1.6,
            rise: 0.050,
            fall: 0.040,
        });
        protos.push(Proto {
            function: GateType::Buf,
            inputs: 1,
            area: 80.0,
            cin: 0.008,
            rd: 1.4,
            rise: 0.090,
            fall: 0.080,
        });
        // Multi-input families; arity 2..=4.
        for n in 2..=4usize {
            let nf = n as f64;
            protos.push(Proto {
                function: GateType::Nand,
                inputs: n,
                area: 65.0 + 32.0 * nf,
                cin: 0.009 + 0.001 * nf,
                rd: 1.7 + 0.25 * nf,
                rise: 0.055 + 0.012 * nf,
                fall: 0.045 + 0.010 * nf,
            });
            protos.push(Proto {
                function: GateType::Nor,
                inputs: n,
                area: 65.0 + 36.0 * nf,
                cin: 0.009 + 0.001 * nf,
                rd: 1.9 + 0.35 * nf,
                rise: 0.065 + 0.016 * nf,
                fall: 0.045 + 0.010 * nf,
            });
            protos.push(Proto {
                function: GateType::And,
                inputs: n,
                area: 95.0 + 32.0 * nf,
                cin: 0.009 + 0.001 * nf,
                rd: 1.8 + 0.25 * nf,
                rise: 0.095 + 0.014 * nf,
                fall: 0.085 + 0.012 * nf,
            });
            protos.push(Proto {
                function: GateType::Or,
                inputs: n,
                area: 95.0 + 36.0 * nf,
                cin: 0.009 + 0.001 * nf,
                rd: 1.9 + 0.30 * nf,
                rise: 0.095 + 0.016 * nf,
                fall: 0.085 + 0.013 * nf,
            });
            protos.push(Proto {
                function: GateType::Xor,
                inputs: n,
                area: 145.0 + 56.0 * nf,
                cin: 0.012 + 0.002 * nf,
                rd: 2.2 + 0.40 * nf,
                rise: 0.110 + 0.025 * nf,
                fall: 0.100 + 0.022 * nf,
            });
            protos.push(Proto {
                function: GateType::Xnor,
                inputs: n,
                area: 145.0 + 56.0 * nf,
                cin: 0.012 + 0.002 * nf,
                rd: 2.2 + 0.40 * nf,
                rise: 0.112 + 0.025 * nf,
                fall: 0.102 + 0.022 * nf,
            });
        }
        for p in protos {
            for drive in DriveStrength::ALL {
                let k = drive.factor();
                lib.add_cell(Cell {
                    function: p.function,
                    input_count: p.inputs,
                    drive,
                    area_um2: p.area * (0.6 + 0.4 * k),
                    input_capacitance_pf: p.cin * (0.7 + 0.3 * k),
                    drive_resistance_kohm: p.rd / k,
                    intrinsic_rise_ns: p.rise,
                    intrinsic_fall_ns: p.fall,
                });
            }
        }
        lib
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::standard_035um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::Gate;

    #[test]
    fn standard_library_has_four_drives_per_function() {
        let lib = Library::standard_035um();
        for f in [GateType::Nand, GateType::Nor, GateType::Xor, GateType::Xnor] {
            for n in 2..=4 {
                assert_eq!(lib.available_drives(f, n).len(), 4, "{f} {n}");
            }
        }
        assert_eq!(lib.available_drives(GateType::Inv, 1).len(), 4);
        // 2 unary functions + 6 families * 3 arities, times 4 drives.
        assert_eq!(lib.len(), (2 + 6 * 3) * 4);
    }

    #[test]
    fn sizing_monotonicity() {
        let lib = Library::standard_035um();
        for n in 2..=4 {
            let mut prev_area = 0.0;
            let mut prev_res = f64::INFINITY;
            for d in DriveStrength::ALL {
                let c = lib.cell(GateType::Nand, n, d).unwrap();
                assert!(c.area_um2 > prev_area);
                assert!(c.drive_resistance_kohm < prev_res);
                prev_area = c.area_um2;
                prev_res = c.drive_resistance_kohm;
            }
        }
    }

    #[test]
    fn xor_slower_than_nand() {
        let lib = Library::standard_035um();
        let nand = lib.cell(GateType::Nand, 2, DriveStrength::X1).unwrap();
        let xor = lib.cell(GateType::Xor, 2, DriveStrength::X1).unwrap();
        assert!(xor.intrinsic_rise_ns > nand.intrinsic_rise_ns);
        assert!(xor.area_um2 > nand.area_um2);
    }

    #[test]
    fn cell_for_gate_uses_size_class_and_falls_back() {
        let lib = Library::standard_035um();
        let mut g = Gate::new(GateType::Nand, vec![0.into(), 1.into()], "g");
        g.size_class = 2;
        let c = lib.cell_for_gate(&g).unwrap();
        assert_eq!(c.drive, DriveStrength::X4);
        assert_eq!(c.input_count, 2);
        // 6-input AND is not in the library; falls back to AND4.
        let wide = Gate::new(
            GateType::And,
            vec![0.into(), 1.into(), 2.into(), 3.into(), 4.into(), 5.into()],
            "wide",
        );
        let c = lib.cell_for_gate(&wide).unwrap();
        assert_eq!(c.input_count, 4);
    }

    #[test]
    fn missing_cell_is_none() {
        let lib = Library::standard_035um();
        assert!(lib.cell(GateType::Nand, 7, DriveStrength::X1).is_none());
        assert!(lib.cell(GateType::Input, 0, DriveStrength::X1).is_none());
    }

    #[test]
    fn empty_and_default() {
        let lib = Library::new("x");
        assert!(lib.is_empty());
        let d = Library::default();
        assert!(!d.is_empty());
        assert_eq!(d.name(), "rapids-0.35um");
    }
}
