//! Pin-to-pin load-dependent cell delay model with rise/fall parameters.
//!
//! The paper states: *"We use a pin-to-pin load-dependent model for gate
//! delay with both rise and fall parameters."*  The classic linear model is
//! used here:
//!
//! ```text
//! delay(transition) = intrinsic(transition) + drive_resistance * load_capacitance
//! ```
//!
//! with the load capacitance being the sum of wire capacitance (from the star
//! model) and the input-pin capacitances of the fan-out cells.

use crate::cell::Cell;

/// Signal transition direction at the cell output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transition {
    /// Output rising (0 → 1).
    Rise,
    /// Output falling (1 → 0).
    Fall,
}

impl Transition {
    /// Both transitions.
    pub const BOTH: [Transition; 2] = [Transition::Rise, Transition::Fall];

    /// The opposite transition (used when propagating through inverting
    /// cells).
    pub fn invert(self) -> Transition {
        match self {
            Transition::Rise => Transition::Fall,
            Transition::Fall => Transition::Rise,
        }
    }
}

/// Rise and fall pin-to-pin delays of one cell arc, in ns.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellDelay {
    /// Delay for a rising output transition, ns.
    pub rise_ns: f64,
    /// Delay for a falling output transition, ns.
    pub fall_ns: f64,
}

impl CellDelay {
    /// The worse (larger) of the two delays.
    pub fn worst(&self) -> f64 {
        self.rise_ns.max(self.fall_ns)
    }

    /// Delay of a specific transition.
    pub fn of(&self, transition: Transition) -> f64 {
        match transition {
            Transition::Rise => self.rise_ns,
            Transition::Fall => self.fall_ns,
        }
    }
}

/// Computes the pin-to-pin delay of `cell` when driving `load_pf` picofarads.
///
/// The same arc delay applies from every input pin of the cell; input-pin
/// asymmetry is second-order for the optimization studied here and the paper
/// does not model it either.
pub fn cell_delay(cell: &Cell, load_pf: f64) -> CellDelay {
    let load = load_pf.max(0.0);
    CellDelay {
        rise_ns: cell.intrinsic_rise_ns + cell.drive_resistance_kohm * load,
        fall_ns: cell.intrinsic_fall_ns + cell.drive_resistance_kohm * load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::DriveStrength;
    use rapids_netlist::GateType;

    fn cell(res: f64) -> Cell {
        Cell {
            function: GateType::Nand,
            input_count: 2,
            drive: DriveStrength::X1,
            area_um2: 20.0,
            input_capacitance_pf: 0.01,
            drive_resistance_kohm: res,
            intrinsic_rise_ns: 0.10,
            intrinsic_fall_ns: 0.08,
        }
    }

    #[test]
    fn delay_is_linear_in_load() {
        let c = cell(2.0);
        let d0 = cell_delay(&c, 0.0);
        let d1 = cell_delay(&c, 0.05);
        let d2 = cell_delay(&c, 0.10);
        assert!((d1.rise_ns - d0.rise_ns - 0.1).abs() < 1e-12);
        assert!((d2.rise_ns - d1.rise_ns - 0.1).abs() < 1e-12);
        assert_eq!(d0.rise_ns, 0.10);
        assert_eq!(d0.fall_ns, 0.08);
    }

    #[test]
    fn negative_load_clamped() {
        let c = cell(2.0);
        let d = cell_delay(&c, -1.0);
        assert_eq!(d.rise_ns, c.intrinsic_rise_ns);
    }

    #[test]
    fn worst_and_of() {
        let d = CellDelay { rise_ns: 0.3, fall_ns: 0.5 };
        assert_eq!(d.worst(), 0.5);
        assert_eq!(d.of(Transition::Rise), 0.3);
        assert_eq!(d.of(Transition::Fall), 0.5);
    }

    #[test]
    fn transition_invert() {
        assert_eq!(Transition::Rise.invert(), Transition::Fall);
        assert_eq!(Transition::Fall.invert(), Transition::Rise);
    }

    #[test]
    fn stronger_cell_is_faster_under_load() {
        let weak = cell(2.0);
        let strong = cell(0.5);
        let load = 0.2;
        assert!(cell_delay(&strong, load).worst() < cell_delay(&weak, load).worst());
    }
}
