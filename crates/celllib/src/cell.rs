//! Library cell descriptions: function, fan-in count, drive strength and
//! electrical parameters.

use std::fmt;

use rapids_netlist::GateType;

/// Drive strength (sizing) class of a library cell.
///
/// The paper's library provides four implementations of each cell type; gate
/// sizing chooses among them.  The discriminant doubles the drive at each
/// step, the classic X1/X2/X4/X8 progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DriveStrength {
    /// Minimum-size implementation.
    X1,
    /// 2× drive.
    X2,
    /// 4× drive.
    X4,
    /// 8× drive.
    X8,
}

impl DriveStrength {
    /// All strengths, weakest first.
    pub const ALL: [DriveStrength; 4] =
        [DriveStrength::X1, DriveStrength::X2, DriveStrength::X4, DriveStrength::X8];

    /// Relative drive factor (1, 2, 4, 8).
    pub fn factor(self) -> f64 {
        match self {
            DriveStrength::X1 => 1.0,
            DriveStrength::X2 => 2.0,
            DriveStrength::X4 => 4.0,
            DriveStrength::X8 => 8.0,
        }
    }

    /// The `size_class` stored in a netlist gate (0–3).
    pub fn size_class(self) -> u8 {
        match self {
            DriveStrength::X1 => 0,
            DriveStrength::X2 => 1,
            DriveStrength::X4 => 2,
            DriveStrength::X8 => 3,
        }
    }

    /// Converts a netlist `size_class` back to a strength, clamping values
    /// above 3 to [`DriveStrength::X8`].
    pub fn from_size_class(class: u8) -> DriveStrength {
        match class {
            0 => DriveStrength::X1,
            1 => DriveStrength::X2,
            2 => DriveStrength::X4,
            _ => DriveStrength::X8,
        }
    }

    /// Next stronger implementation, if any.
    pub fn upsize(self) -> Option<DriveStrength> {
        match self {
            DriveStrength::X1 => Some(DriveStrength::X2),
            DriveStrength::X2 => Some(DriveStrength::X4),
            DriveStrength::X4 => Some(DriveStrength::X8),
            DriveStrength::X8 => None,
        }
    }

    /// Next weaker implementation, if any.
    pub fn downsize(self) -> Option<DriveStrength> {
        match self {
            DriveStrength::X1 => None,
            DriveStrength::X2 => Some(DriveStrength::X1),
            DriveStrength::X4 => Some(DriveStrength::X2),
            DriveStrength::X8 => Some(DriveStrength::X4),
        }
    }
}

impl fmt::Display for DriveStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.factor() as u32)
    }
}

/// A single library cell: one Boolean function at one fan-in count and one
/// drive strength, with its electrical characterization.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Logic function implemented by the cell.
    pub function: GateType,
    /// Number of data input pins (1 for INV/BUF, 2–4 otherwise).
    pub input_count: usize,
    /// Drive strength class.
    pub drive: DriveStrength,
    /// Cell area in µm².
    pub area_um2: f64,
    /// Capacitance presented by each input pin, in pF.
    pub input_capacitance_pf: f64,
    /// Equivalent output drive resistance, in kΩ.
    pub drive_resistance_kohm: f64,
    /// Intrinsic (zero-load) rise delay, in ns.
    pub intrinsic_rise_ns: f64,
    /// Intrinsic (zero-load) fall delay, in ns.
    pub intrinsic_fall_ns: f64,
}

impl Cell {
    /// Canonical library name, e.g. `NAND3_X2`.
    pub fn name(&self) -> String {
        let f = self.function.mnemonic().to_uppercase();
        if self.function.is_identity() {
            format!("{f}_{}", self.drive)
        } else {
            format!("{f}{}_{}", self.input_count, self.drive)
        }
    }

    /// Cell footprint width in µm assuming the library row height.
    pub fn width_um(&self) -> f64 {
        self.area_um2 / crate::ROW_HEIGHT_UM
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} area={:.1}um2 cin={:.4}pF rd={:.3}kohm",
            self.name(),
            self.area_um2,
            self.input_capacitance_pf,
            self.drive_resistance_kohm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_strength_roundtrip() {
        for d in DriveStrength::ALL {
            assert_eq!(DriveStrength::from_size_class(d.size_class()), d);
        }
        assert_eq!(DriveStrength::from_size_class(9), DriveStrength::X8);
    }

    #[test]
    fn upsize_downsize_chain() {
        assert_eq!(DriveStrength::X1.upsize(), Some(DriveStrength::X2));
        assert_eq!(DriveStrength::X8.upsize(), None);
        assert_eq!(DriveStrength::X1.downsize(), None);
        assert_eq!(DriveStrength::X8.downsize(), Some(DriveStrength::X4));
    }

    #[test]
    fn factors_double() {
        let f: Vec<f64> = DriveStrength::ALL.iter().map(|d| d.factor()).collect();
        assert_eq!(f, vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn cell_naming() {
        let c = Cell {
            function: GateType::Nand,
            input_count: 3,
            drive: DriveStrength::X2,
            area_um2: 30.0,
            input_capacitance_pf: 0.01,
            drive_resistance_kohm: 2.0,
            intrinsic_rise_ns: 0.1,
            intrinsic_fall_ns: 0.08,
        };
        assert_eq!(c.name(), "NAND3_X2");
        let inv = Cell { function: GateType::Inv, input_count: 1, ..c.clone() };
        assert_eq!(inv.name(), "INV_X2");
        assert!(c.width_um() > 0.0);
        assert!(!c.to_string().is_empty());
    }
}
