//! The equivalence check: encode, sweep, solve the miter.
//!
//! [`check_equivalence`] decides whether two mapped networks compute the
//! same function on every input:
//!
//! 1. **Interface check** — input/output counts must match (correspondence
//!    is by index, like the simulator's checks).
//! 2. **Structural front end** — both networks are folded into one
//!    hash-consed AND/XOR DAG ([`crate::dag`]); output pairs that map to
//!    the same reference are proven equivalent without touching the solver.
//! 3. **Tseitin encoding** — the cones of the remaining output pairs are
//!    encoded per gate kind ([`crate::cnf`]); structurally shared gates
//!    share one SAT variable across both networks.
//! 4. **SAT sweeping** — seeded bit-parallel simulation proposes internal
//!    equivalence candidates; each is queried under a selector assumption
//!    with a conflict budget, proven pairs become equality clauses, and SAT
//!    answers feed their distinguishing pattern back into the signatures.
//!    This keeps each solver query local, which is what makes deep
//!    arithmetic miters (the array multipliers) tractable.
//! 5. **Miter solve** — per remaining pair, `dᵢ ↔ aᵢ ⊕ bᵢ`, plus the clause
//!    `d₁ ∨ d₂ ∨ …`; UNSAT is a proof of equivalence, a model is a concrete
//!    counterexample input vector, re-simulated on both networks to locate
//!    the differing output (and cross-check the solver).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapids_netlist::topo::topological_order;
use rapids_netlist::{GateType, Network};
use rapids_sim::Simulator;
use rapids_sizing::CancelToken;

use crate::cnf::CnfBuilder;
use crate::dag::{Dag, Slit};
use crate::solver::{Lit, SolveResult, Solver, Var};

/// Tuning knobs for [`check_equivalence`].
#[derive(Debug, Clone)]
pub struct CecConfig {
    /// Seed for the signature patterns that guide SAT sweeping.
    pub seed: u64,
    /// Number of 64-bit random signature words (`8` = 512 patterns).
    pub sim_words: usize,
    /// Whether to run SAT sweeping before the miter solve.
    pub sweep: bool,
    /// Conflict budget per sweeping query; over-budget candidates are
    /// skipped (sound — just less sharing for the final solve).
    pub sweep_conflict_budget: u64,
    /// Optional conflict budget for the final miter solve; exhausting it
    /// yields [`CecResult::Aborted`].
    pub final_conflict_budget: Option<u64>,
    /// Cooperative cancellation, polled inside the solver (about every
    /// 1024 conflicts).  Cancellation yields [`CecResult::Aborted`].
    pub cancel: Option<CancelToken>,
}

impl Default for CecConfig {
    fn default() -> Self {
        CecConfig {
            seed: 0xCEC,
            sim_words: 8,
            sweep: true,
            sweep_conflict_budget: 2_000,
            final_conflict_budget: None,
            cancel: None,
        }
    }
}

/// A concrete input vector on which the two networks disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// One value per primary input, in input order.
    pub inputs: Vec<bool>,
    /// Index of the first differing output port.
    pub output_index: usize,
    /// Value network `a` produces at that output.
    pub output_a: bool,
    /// Value network `b` produces at that output.
    pub output_b: bool,
}

impl Counterexample {
    /// The input vector as a `0`/`1` string, in input order.
    pub fn input_bits(&self) -> String {
        self.inputs.iter().map(|&b| if b { '1' } else { '0' }).collect()
    }
}

/// Verdict of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CecResult {
    /// UNSAT miter: the networks agree on *every* input (a proof, not a
    /// sample).
    EquivalentProven,
    /// SAT miter: a concrete disagreeing input, re-confirmed by simulating
    /// both networks.
    NotEquivalent(Counterexample),
    /// The interfaces cannot be compared (differing input/output counts).
    InterfaceMismatch {
        /// `(a, b)` primary-input counts.
        inputs: (usize, usize),
        /// `(a, b)` output-port counts.
        outputs: (usize, usize),
    },
    /// Undecided: conflict budget exhausted or cancelled.
    Aborted(String),
}

impl CecResult {
    /// Whether this verdict proves equivalence.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, CecResult::EquivalentProven)
    }
}

/// Work counters for one equivalence check.
#[derive(Debug, Clone, Copy, Default)]
pub struct CecStats {
    /// Nodes in the shared structural DAG (constant and inputs included).
    pub dag_nodes: usize,
    /// Output pairs discharged structurally (identical references).
    pub structural_matches: usize,
    /// Output pairs that needed the solver.
    pub solved_pairs: usize,
    /// SAT variables allocated.
    pub vars: usize,
    /// Clauses emitted through the Tseitin builder.
    pub clauses: u64,
    /// Sweeping: candidate pairs queried.
    pub sweep_candidates: u64,
    /// Sweeping: pairs proven equal (equality clauses added).
    pub sweep_proven: u64,
    /// Sweeping: pairs refuted by a solver model (signature refinement).
    pub sweep_refuted: u64,
    /// Sweeping: pairs skipped on conflict budget.
    pub sweep_skipped: u64,
    /// Total solver conflicts across sweeping and the miter solve.
    pub conflicts: u64,
    /// Total solver decisions.
    pub decisions: u64,
    /// Total solver propagations.
    pub propagations: u64,
}

/// Checks `a` against `b`; see the module docs for the pipeline.
pub fn check_equivalence(a: &Network, b: &Network, config: &CecConfig) -> CecResult {
    check_equivalence_with_stats(a, b, config).0
}

/// [`check_equivalence`], also returning work counters.
pub fn check_equivalence_with_stats(
    a: &Network,
    b: &Network,
    config: &CecConfig,
) -> (CecResult, CecStats) {
    let mut stats = CecStats::default();
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return (
            CecResult::InterfaceMismatch {
                inputs: (a.inputs().len(), b.inputs().len()),
                outputs: (a.outputs().len(), b.outputs().len()),
            },
            stats,
        );
    }

    // Fold both networks into the shared structural DAG.
    let mut dag = Dag::new(a.inputs().len());
    let (mapped_a, gates_a) = dag.map_network(a);
    let (mapped_b, gates_b) = dag.map_network(b);
    stats.dag_nodes = dag.len();

    let differing: Vec<usize> = (0..mapped_a.outputs.len())
        .filter(|&i| mapped_a.outputs[i] != mapped_b.outputs[i])
        .collect();
    stats.structural_matches = mapped_a.outputs.len() - differing.len();
    stats.solved_pairs = differing.len();
    if differing.is_empty() {
        return (CecResult::EquivalentProven, stats);
    }

    // Mark the DAG cone of every differing output pair; only those gates
    // are encoded.
    let mut needed = vec![false; dag.len()];
    let mut dfs: Vec<u32> = Vec::new();
    for &i in &differing {
        for s in [mapped_a.outputs[i], mapped_b.outputs[i]] {
            if !s.is_const() {
                dfs.push(s.node());
            }
        }
    }
    while let Some(n) = dfs.pop() {
        if std::mem::replace(&mut needed[n as usize], true) {
            continue;
        }
        match dag.node(n) {
            crate::dag::NodeFn::And(ins) | crate::dag::NodeFn::Xor(ins) => {
                for l in ins.iter() {
                    if !l.is_const() {
                        dfs.push(l.node());
                    }
                }
            }
            _ => {}
        }
    }

    // Solver setup: var 0 is the constant, then one var per DAG input.
    let mut solver = Solver::new();
    let const_var = solver.new_var();
    solver.add_clause(&[Lit::pos(const_var)]);
    let mut node_var: Vec<Option<Var>> = vec![None; dag.len()];
    let mut input_vars: Vec<Var> = Vec::with_capacity(dag.num_inputs());
    for i in 0..dag.num_inputs() {
        let v = solver.new_var();
        node_var[dag.input(i).node() as usize] = Some(v);
        input_vars.push(v);
    }

    // Tseitin-encode the needed cones, one clause schema per gate kind.
    let encode_span = rapids_obs::span("cec.encode");
    let mut clauses = 0u64;
    for net in [a, b] {
        let gate_map = if std::ptr::eq(net, a) { &gates_a } else { &gates_b };
        let order = topological_order(net).expect("CEC requires an acyclic network");
        let mut builder = CnfBuilder::new(&mut solver);
        for &g in &order {
            let slit = gate_map[g.index()];
            if slit.is_const() || !needed[slit.node() as usize] {
                continue;
            }
            let gate = net.gate(g);
            if matches!(
                gate.gtype,
                GateType::Input
                    | GateType::Buf
                    | GateType::Inv
                    | GateType::Const0
                    | GateType::Const1
            ) {
                continue; // the reference collapses onto an existing node
            }
            if node_var[slit.node() as usize].is_some() {
                continue; // structurally shared with an already-encoded gate
            }
            // Reserve the variable first so `lit_of` sees it.
            let v = builder.solver_mut().new_var();
            node_var[slit.node() as usize] = Some(v);
            let out = lit_of(&node_var, const_var, slit);
            let fanins: Vec<Lit> = gate
                .fanins
                .iter()
                .map(|f| lit_of(&node_var, const_var, gate_map[f.index()]))
                .collect();
            builder.gate_clauses(out, gate.gtype, &fanins);
        }
        clauses += builder.clauses;
    }
    drop(encode_span);

    let cancel = config.cancel.clone();
    let mut interrupted = move || cancel.as_ref().is_some_and(CancelToken::is_cancelled);

    // Signature-guided SAT sweeping over the encoded cone.
    if config.sweep {
        let _sweep_span = rapids_obs::span("cec.sweep");
        sweep(&mut solver, &dag, &node_var, &input_vars, config, &mut stats, &mut interrupted);
        if interrupted() {
            stats_from_solver(&mut stats, &solver, clauses);
            return (CecResult::Aborted("cancelled during SAT sweeping".into()), stats);
        }
    }

    // The miter: dᵢ ↔ aᵢ ⊕ bᵢ for every remaining pair, and some dᵢ holds.
    let mut miter_lits: Vec<Lit> = Vec::with_capacity(differing.len());
    {
        let mut builder = CnfBuilder::new(&mut solver);
        for &i in &differing {
            let la = lit_of(&node_var, const_var, mapped_a.outputs[i]);
            let lb = lit_of(&node_var, const_var, mapped_b.outputs[i]);
            let d = Lit::pos(builder.solver_mut().new_var());
            builder.gate_clauses(d, GateType::Xor, &[la, lb]);
            miter_lits.push(d);
        }
        clauses += builder.clauses;
    }
    solver.add_clause(&miter_lits);

    let solve_span = rapids_obs::span("cec.solve");
    let verdict = solver.solve_limited(&[], config.final_conflict_budget, &mut interrupted);
    drop(solve_span);
    stats_from_solver(&mut stats, &solver, clauses);
    match verdict {
        SolveResult::Unsat => (CecResult::EquivalentProven, stats),
        SolveResult::Unknown => {
            let why = if interrupted() { "cancelled" } else { "conflict budget exhausted" };
            (CecResult::Aborted(format!("miter solve undecided: {why}")), stats)
        }
        SolveResult::Sat => {
            let inputs: Vec<bool> = input_vars.iter().map(|&v| solver.model_value(v)).collect();
            let out_a = Simulator::new(a).simulate_bools(a, &inputs);
            let out_b = Simulator::new(b).simulate_bools(b, &inputs);
            let output_index = out_a
                .iter()
                .zip(&out_b)
                .position(|(x, y)| x != y)
                .expect("SAT miter model must disagree under simulation");
            let cex = Counterexample {
                inputs,
                output_index,
                output_a: out_a[output_index],
                output_b: out_b[output_index],
            };
            (CecResult::NotEquivalent(cex), stats)
        }
    }
}

fn stats_from_solver(stats: &mut CecStats, solver: &Solver, clauses: u64) {
    stats.vars = solver.num_vars();
    stats.clauses = clauses;
    stats.conflicts = solver.stats.conflicts;
    stats.decisions = solver.stats.decisions;
    stats.propagations = solver.stats.propagations;
    // Every check passes through here exactly once with the final solver
    // state, so this is the one place the global registry is fed.
    let registry = rapids_obs::global();
    registry.counter("cec.conflicts").add(solver.stats.conflicts);
    registry.counter("cec.decisions").add(solver.stats.decisions);
    registry.counter("cec.propagations").add(solver.stats.propagations);
    registry.counter("cec.restarts").add(solver.stats.restarts);
    registry.counter("cec.sweep_candidates").add(stats.sweep_candidates);
    registry.counter("cec.sweep_proven").add(stats.sweep_proven);
}

/// The solver literal of a canonical reference.
fn lit_of(node_var: &[Option<Var>], const_var: Var, s: Slit) -> Lit {
    if s.is_const() {
        Lit::new(const_var, s == Slit::FALSE)
    } else {
        let v = node_var[s.node() as usize].expect("fan-in encoded before use");
        Lit::new(v, s.is_complement())
    }
}

/// Signature-guided SAT sweeping: conjecture internal equivalences from
/// bit-parallel simulation, prove each under a selector assumption with a
/// conflict budget, and feed refuting models back as new patterns.
fn sweep(
    solver: &mut Solver,
    dag: &Dag,
    node_var: &[Option<Var>],
    input_vars: &[Var],
    config: &CecConfig,
    stats: &mut CecStats,
    interrupted: &mut dyn FnMut() -> bool,
) {
    let encoded: Vec<u32> = (0..dag.len() as u32)
        .filter(|&n| node_var[n as usize].is_some() && !dag.input_node(n))
        .collect();
    if encoded.len() < 2 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let base_words: Vec<Vec<u64>> = (0..dag.num_inputs())
        .map(|_| (0..config.sim_words.max(1)).map(|_| rng.gen::<u64>()).collect())
        .collect();
    let mut extra_patterns: Vec<Vec<bool>> = Vec::new();
    // `merged[n]`: this node is already proven equal to an earlier one.
    let mut merged = vec![false; dag.len()];

    const MAX_ROUNDS: usize = 16;
    for _ in 0..MAX_ROUNDS {
        if interrupted() {
            return;
        }
        // Signatures: seeded words plus the accumulated refuting patterns.
        let total_words = base_words[0].len() + extra_patterns.len().div_ceil(64);
        let mut sigs: Vec<Vec<u64>> = vec![Vec::new(); dag.len()];
        for w in 0..total_words {
            let input_words: Vec<u64> = (0..dag.num_inputs())
                .map(|i| {
                    if w < base_words[0].len() {
                        base_words[i][w]
                    } else {
                        let mut word = 0u64;
                        for (bit, pat) in extra_patterns
                            .iter()
                            .skip((w - base_words[0].len()) * 64)
                            .take(64)
                            .enumerate()
                        {
                            word |= u64::from(pat[i]) << bit;
                        }
                        word
                    }
                })
                .collect();
            let words = dag.simulate_words(&input_words);
            for &n in &encoded {
                sigs[n as usize].push(words[n as usize]);
            }
        }
        // Group by normalized signature (complement folded into a phase).
        let mut keyed: Vec<(Vec<u64>, bool, u32)> = encoded
            .iter()
            .filter(|&&n| !merged[n as usize])
            .map(|&n| {
                let sig = &sigs[n as usize];
                let phase = sig[0] & 1 == 1;
                let norm: Vec<u64> = sig.iter().map(|&w| if phase { !w } else { w }).collect();
                (norm, phase, n)
            })
            .collect();
        keyed.sort();
        let mut refuted_this_round = false;
        let mut i = 0;
        while i < keyed.len() {
            let mut j = i + 1;
            while j < keyed.len() && keyed[j].0 == keyed[i].0 {
                j += 1;
            }
            let (_, leader_phase, leader) = (&keyed[i].0, keyed[i].1, keyed[i].2);
            for entry in &keyed[i + 1..j] {
                if interrupted() {
                    return;
                }
                let (phase, member) = (entry.1, entry.2);
                stats.sweep_candidates += 1;
                let la = Lit::pos(node_var[leader as usize].unwrap());
                let lb = Lit::new(node_var[member as usize].unwrap(), leader_phase != phase);
                // sel → (la ≠ lb); ask whether they can differ.
                let sel = Lit::pos(solver.new_var());
                solver.add_clause(&[!sel, la, lb]);
                solver.add_clause(&[!sel, !la, !lb]);
                let r =
                    solver.solve_limited(&[sel], Some(config.sweep_conflict_budget), interrupted);
                solver.add_clause(&[!sel]);
                match r {
                    SolveResult::Unsat => {
                        stats.sweep_proven += 1;
                        solver.add_clause(&[!la, lb]);
                        solver.add_clause(&[la, !lb]);
                        merged[member as usize] = true;
                    }
                    SolveResult::Sat => {
                        stats.sweep_refuted += 1;
                        refuted_this_round = true;
                        extra_patterns
                            .push(input_vars.iter().map(|&v| solver.model_value(v)).collect());
                    }
                    SolveResult::Unknown => {
                        stats.sweep_skipped += 1;
                    }
                }
            }
            i = j;
        }
        if !refuted_this_round {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::NetworkBuilder;

    fn demorgan_pair() -> (Network, Network) {
        let a = NetworkBuilder::new("a")
            .input("x")
            .input("y")
            .input("z")
            .gate("u", GateType::Nand, &["x", "y"])
            .gate("v", GateType::Xor, &["u", "z"])
            .output("v")
            .finish()
            .unwrap();
        let b = NetworkBuilder::new("b")
            .input("x")
            .input("y")
            .input("z")
            .gate("nx", GateType::Inv, &["x"])
            .gate("ny", GateType::Inv, &["y"])
            .gate("u", GateType::Or, &["nx", "ny"])
            .gate("v", GateType::Xnor, &["u", "z"])
            .gate("w", GateType::Inv, &["v"])
            .output("w")
            .finish()
            .unwrap();
        (a, b)
    }

    #[test]
    fn demorgan_rewrite_is_proven_equivalent() {
        let (a, b) = demorgan_pair();
        let (r, stats) = check_equivalence_with_stats(&a, &b, &CecConfig::default());
        assert_eq!(r, CecResult::EquivalentProven);
        // XNOR+INV folds back onto the same XOR node: discharged structurally.
        assert_eq!(stats.structural_matches, 1);
        assert_eq!(stats.solved_pairs, 0);
    }

    #[test]
    fn single_gate_corruption_yields_confirmed_counterexample() {
        let (a, mut b) = demorgan_pair();
        // Corrupt: flip the OR to an AND.
        let g = b.find_by_name("u").unwrap();
        b.set_gate_type(g, GateType::And).unwrap();
        let r = check_equivalence(&a, &b, &CecConfig::default());
        let cex = match r {
            CecResult::NotEquivalent(cex) => cex,
            other => panic!("expected a counterexample, got {other:?}"),
        };
        assert_eq!(cex.inputs.len(), 3);
        assert_eq!(cex.output_index, 0);
        assert_ne!(cex.output_a, cex.output_b);
        // The counterexample must replay on the simulator.
        let sa = Simulator::new(&a).simulate_bools(&a, &cex.inputs);
        let sb = Simulator::new(&b).simulate_bools(&b, &cex.inputs);
        assert_ne!(sa[0], sb[0]);
    }

    #[test]
    fn interface_mismatch_is_reported() {
        let (a, _) = demorgan_pair();
        let c = NetworkBuilder::new("c")
            .input("x")
            .gate("g", GateType::Inv, &["x"])
            .output("g")
            .finish()
            .unwrap();
        match check_equivalence(&a, &c, &CecConfig::default()) {
            CecResult::InterfaceMismatch { inputs, outputs } => {
                assert_eq!(inputs, (3, 1));
                assert_eq!(outputs, (1, 1));
            }
            other => panic!("expected interface mismatch, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_check_aborts() {
        let (a, b) = demorgan_pair();
        let token = CancelToken::new();
        token.cancel();
        let cfg = CecConfig { cancel: Some(token), ..CecConfig::default() };
        // Even cancelled, a structural proof needs no solver at all — so
        // corrupt one side to force solving.
        let mut b = b;
        let g = b.find_by_name("u").unwrap();
        b.set_gate_type(g, GateType::And).unwrap();
        match check_equivalence(&a, &b, &cfg) {
            CecResult::Aborted(_) | CecResult::NotEquivalent(_) => {}
            other => panic!("expected abort or fast answer, got {other:?}"),
        }
    }

    #[test]
    fn constant_outputs_compare() {
        let a = NetworkBuilder::new("a")
            .input("x")
            .gate("g", GateType::Xor, &["x", "x"])
            .output("g")
            .finish()
            .unwrap();
        let b = NetworkBuilder::new("b")
            .input("x")
            .constant("zero", false)
            .output("zero")
            .finish()
            .unwrap();
        assert_eq!(check_equivalence(&a, &b, &CecConfig::default()), CecResult::EquivalentProven);
    }
}
