//! Solver and checker micro-smoke, pinned by ci.sh under a time budget.
//!
//! Three checks, each printing one stable `PASS` line on stdout (stats go
//! to stderr so the stdout contract stays diffable):
//!
//! 1. pigeonhole UNSAT — `php(6)` (7 pigeons, 6 holes) is the classic
//!    resolution-hard family; a learning solver must still finish it fast;
//! 2. planted 3-SAT — a seeded satisfiable instance; the model is
//!    re-checked against every clause;
//! 3. a tiny equivalence pair — a De Morgan rewrite is proven equivalent,
//!    and a single corrupted gate yields a simulator-confirmed
//!    counterexample.
//!
//! Exits non-zero on any wrong answer.

use rapids_cec::{check_equivalence, CecConfig, CecResult, Lit, SolveResult, Solver};
use rapids_netlist::{GateType, Network, NetworkBuilder};
use rapids_sim::Simulator;

fn pigeonhole(s: &mut Solver, holes: usize) {
    let pigeons = holes + 1;
    let p: Vec<Vec<Lit>> =
        (0..pigeons).map(|_| (0..holes).map(|_| Lit::pos(s.new_var())).collect()).collect();
    for row in &p {
        s.add_clause(row);
    }
    for h in 0..holes {
        for (i, pi) in p.iter().enumerate() {
            for pj in &p[i + 1..] {
                s.add_clause(&[!pi[h], !pj[h]]);
            }
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Random 3-SAT clauses filtered against a planted assignment, so the
/// instance is satisfiable by construction.
fn planted_3sat(s: &mut Solver, n: usize, m: usize, seed: u64) -> Vec<Vec<Lit>> {
    let mut st = seed;
    let planted: Vec<bool> = (0..n).map(|_| splitmix(&mut st) & 1 == 1).collect();
    let vars: Vec<Lit> = (0..n).map(|_| Lit::pos(s.new_var())).collect();
    let mut clauses = Vec::with_capacity(m);
    while clauses.len() < m {
        let mut clause = Vec::with_capacity(3);
        let mut satisfied = false;
        for _ in 0..3 {
            let v = (splitmix(&mut st) % n as u64) as usize;
            let neg = splitmix(&mut st) & 1 == 1;
            clause.push(Lit::new(vars[v].var(), neg));
            satisfied |= planted[v] != neg;
        }
        if satisfied {
            s.add_clause(&clause);
            clauses.push(clause);
        }
    }
    clauses
}

fn demorgan_pair() -> (Network, Network) {
    let a = NetworkBuilder::new("a")
        .input("x")
        .input("y")
        .input("z")
        .gate("u", GateType::Nand, &["x", "y"])
        .gate("v", GateType::Xor, &["u", "z"])
        .output("v")
        .finish()
        .unwrap();
    let b = NetworkBuilder::new("b")
        .input("x")
        .input("y")
        .input("z")
        .gate("nx", GateType::Inv, &["x"])
        .gate("ny", GateType::Inv, &["y"])
        .gate("u", GateType::Or, &["nx", "ny"])
        .gate("v", GateType::Xnor, &["u", "z"])
        .gate("w", GateType::Inv, &["v"])
        .output("w")
        .finish()
        .unwrap();
    (a, b)
}

fn main() {
    // 1. Pigeonhole: 7 pigeons into 6 holes must be refuted.
    let mut s = Solver::new();
    pigeonhole(&mut s, 6);
    assert_eq!(s.solve(), SolveResult::Unsat, "php(6) must be UNSAT");
    eprintln!(
        "cec_smoke: php(6) conflicts={} decisions={} propagations={}",
        s.stats.conflicts, s.stats.decisions, s.stats.propagations
    );
    println!("PASS pigeonhole-unsat");

    // 2. Planted 3-SAT: satisfiable, and the model satisfies every clause.
    let mut s = Solver::new();
    let clauses = planted_3sat(&mut s, 150, 600, 0xD1CE);
    assert_eq!(s.solve(), SolveResult::Sat, "planted 3-SAT must be SAT");
    for c in &clauses {
        assert!(c.iter().any(|&l| s.model_value(l.var()) != l.is_neg()), "model violates a clause");
    }
    eprintln!(
        "cec_smoke: 3sat conflicts={} decisions={} propagations={}",
        s.stats.conflicts, s.stats.decisions, s.stats.propagations
    );
    println!("PASS planted-3sat");

    // 3. Equivalence: a De Morgan rewrite proves; a corrupted gate refutes
    //    with a counterexample the simulator confirms.
    let (a, b) = demorgan_pair();
    assert_eq!(
        check_equivalence(&a, &b, &CecConfig::default()),
        CecResult::EquivalentProven,
        "De Morgan rewrite must be proven equivalent"
    );
    let mut broken = b.clone();
    let g = broken.find_by_name("u").expect("gate u exists");
    broken.set_gate_type(g, GateType::And).expect("kind flip is legal");
    match check_equivalence(&a, &broken, &CecConfig::default()) {
        CecResult::NotEquivalent(cex) => {
            let sa = Simulator::new(&a).simulate_bools(&a, &cex.inputs);
            let sb = Simulator::new(&broken).simulate_bools(&broken, &cex.inputs);
            assert_ne!(
                sa[cex.output_index], sb[cex.output_index],
                "counterexample must replay on the simulator"
            );
        }
        other => panic!("corrupted pair must yield a counterexample, got {other:?}"),
    }
    println!("PASS miter-counterexample");
}
