//! A hand-rolled CDCL SAT solver.
//!
//! This is a classic conflict-driven clause-learning solver in the MiniSat
//! lineage, written from scratch for the offline workspace (no external
//! solver crates):
//!
//! - **two-watched-literal propagation** — each clause is watched by two of
//!   its literals; only when a watched literal is falsified does the clause
//!   need attention, so propagation cost tracks the number of clauses that
//!   actually become unit, not the clause count;
//! - **first-UIP conflict analysis** — on conflict, resolve backwards along
//!   the implication graph until exactly one literal of the current decision
//!   level remains (the first unique implication point), learn the asserting
//!   clause and backjump to its second-highest decision level;
//! - **VSIDS-style activity** — variables involved in recent conflicts are
//!   preferred as decisions; ties break to the lower variable index so runs
//!   are bit-for-bit deterministic;
//! - **phase saving** — a variable is re-decided with the polarity it last
//!   held, which keeps the solver in the neighbourhood of partial solutions
//!   across restarts;
//! - **Luby restarts** — the search is abandoned (learnt clauses kept) on
//!   the universal Luby schedule, defusing heavy-tailed runtimes.
//!
//! The solver is incremental: clauses may be added between `solve` calls and
//! queries run under *assumptions* (temporary decisions tried first), which
//! is what the SAT sweeping in [`crate::check`] leans on — candidate
//! equivalences are queried under a fresh selector literal and the selector
//! is permanently falsified once the query is decided.

/// A propositional variable, numbered from 0.
pub type Var = u32;

/// A literal: a variable with a sign, packed as `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v << 1 | 1)
    }

    /// A literal of `v`, negated iff `negated`.
    pub fn new(v: Var, negated: bool) -> Lit {
        Lit(v << 1 | u32::from(negated))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Whether the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index (`2*var + sign`), used for watch lists.
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Debug for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "-" } else { "" }, self.var())
    }
}

/// Outcome of a [`Solver::solve_limited`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (see [`Solver::model_value`]).
    Sat,
    /// Unsatisfiable under the given assumptions.
    Unsat,
    /// Undecided: the conflict budget ran out or the caller interrupted.
    Unknown,
}

/// Search statistics, cumulative across `solve` calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learnt (including later-deleted ones).
    pub learnt: u64,
}

/// Reference to a clause in the arena.
type CRef = u32;

struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

/// Max-heap of variables ordered by activity (ties to the lower index).
#[derive(Default)]
struct VarOrder {
    heap: Vec<Var>,
    /// Position of each var in `heap`, or -1 when absent.
    pos: Vec<i32>,
    activity: Vec<f64>,
}

impl VarOrder {
    fn new_var(&mut self) {
        let v = self.pos.len() as Var;
        self.pos.push(-1);
        self.activity.push(0.0);
        self.insert(v);
    }

    fn before(&self, a: Var, b: Var) -> bool {
        let (aa, ab) = (self.activity[a as usize], self.activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn insert(&mut self, v: Var) {
        if self.pos[v as usize] >= 0 {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1);
    }

    fn pop(&mut self) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var) {
        let p = self.pos[v as usize];
        if p >= 0 {
            self.sift_up(p as usize);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.before(self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.before(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.before(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as i32;
        self.pos[self.heap[j] as usize] = j as i32;
    }
}

/// The CDCL solver.  See the module docs for the algorithm inventory.
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<CRef>>,
    /// Per-var assignment: 0 unassigned, 1 true, -1 false.
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Option<CRef>>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    order: VarOrder,
    var_inc: f64,
    cla_inc: f64,
    /// Established unsatisfiable regardless of assumptions.
    unsat: bool,
    model: Vec<i8>,
    live_learnt: usize,
    learnt_cap: usize,
    /// Search statistics, cumulative across `solve` calls.
    pub stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// An empty solver with no variables or clauses.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            order: VarOrder::default(),
            var_inc: 1.0,
            cla_inc: 1.0,
            unsat: false,
            model: Vec::new(),
            live_learnt: 0,
            learnt_cap: 20_000,
            stats: SolverStats::default(),
        }
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len() as Var;
        self.assign.push(0);
        self.level.push(0);
        self.reason.push(None);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.new_var();
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of live (non-deleted) clauses, original plus learnt.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Whether the formula is already known unsatisfiable outright.
    pub fn is_unsat(&self) -> bool {
        self.unsat
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        match self.assign[l.var() as usize] {
            0 => None,
            a => Some((a > 0) != l.is_neg()),
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause.  Returns `false` if the formula became trivially
    /// unsatisfiable (empty clause, or a level-0 propagation conflict).
    ///
    /// Must be called with no decisions on the trail (between `solve` calls).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "add_clause requires decision level 0");
        if self.unsat {
            return false;
        }
        // Normalize: sort, drop duplicates and level-0-false literals, and
        // detect tautologies / already-satisfied clauses.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort();
        c.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            if self.lit_value(l) == Some(true) {
                return true;
            }
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: contains both l and !l
            }
            if self.lit_value(l) != Some(false) {
                out.push(l);
            }
        }
        match out.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(out[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                }
                !self.unsat
            }
            _ => {
                self.attach(out, false);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool) -> CRef {
        let cref = self.clauses.len() as CRef;
        self.watches[lits[0].index()].push(cref);
        self.watches[lits[1].index()].push(cref);
        self.clauses.push(Clause { lits, learnt, activity: 0.0, deleted: false });
        if learnt {
            self.live_learnt += 1;
        }
        cref
    }

    fn enqueue(&mut self, p: Lit, reason: Option<CRef>) {
        let v = p.var() as usize;
        debug_assert_eq!(self.assign[v], 0);
        self.assign[v] = if p.is_neg() { -1 } else { 1 };
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.phase[v] = !p.is_neg();
        self.trail.push(p);
    }

    fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut kept = 0;
            let mut conflict = None;
            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                i += 1;
                if conflict.is_some() {
                    ws[kept] = cref;
                    kept += 1;
                    continue;
                }
                let c = cref as usize;
                if self.clauses[c].lits[0] == false_lit {
                    self.clauses[c].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[c].lits[1], false_lit);
                let first = self.clauses[c].lits[0];
                if self.lit_value(first) == Some(true) {
                    ws[kept] = cref;
                    kept += 1;
                    continue;
                }
                let len = self.clauses[c].lits.len();
                let mut moved = false;
                for k in 2..len {
                    let lk = self.clauses[c].lits[k];
                    if self.lit_value(lk) != Some(false) {
                        self.clauses[c].lits.swap(1, k);
                        self.watches[lk.index()].push(cref);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit under the current assignment, or conflicting.
                ws[kept] = cref;
                kept += 1;
                if self.lit_value(first) == Some(false) {
                    conflict = Some(cref);
                } else {
                    self.enqueue(first, Some(cref));
                }
            }
            ws.truncate(kept);
            debug_assert!(self.watches[false_lit.index()].is_empty());
            self.watches[false_lit.index()] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn backtrack(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let keep = self.trail_lim[target];
        while self.trail.len() > keep {
            let p = self.trail.pop().unwrap();
            let v = p.var() as usize;
            self.assign[v] = 0;
            self.reason[v] = None;
            self.order.insert(p.var());
        }
        self.trail_lim.truncate(target);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.order.activity[v as usize] += self.var_inc;
        if self.order.activity[v as usize] > 1e100 {
            for a in &mut self.order.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v);
    }

    fn bump_clause(&mut self, c: usize) {
        self.clauses[c].activity += self.cla_inc;
        if self.clauses[c].activity > 1e100 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-100;
            }
            self.cla_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis.  Returns the learnt clause (asserting
    /// literal first, a highest-remaining-level literal second) and the
    /// backjump level.
    fn analyze(&mut self, confl: CRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl as usize;
        let current = self.decision_level() as u32;
        loop {
            if self.clauses[confl].learnt {
                self.bump_clause(confl);
            }
            let skip = usize::from(p.is_some());
            for k in skip..self.clauses[confl].lits.len() {
                let q = self.clauses[confl].lits[k];
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.reason[pl.var() as usize].expect("non-UIP literal has a reason") as usize;
            p = Some(pl);
        }
        for &l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }
        let bt = if learnt.len() == 1 {
            0
        } else {
            // Move a highest-level literal to slot 1 so both watched
            // literals are the last to be falsified after the backjump.
            let mut best = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var() as usize] > self.level[learnt[best].var() as usize] {
                    best = k;
                }
            }
            learnt.swap(1, best);
            self.level[learnt[1].var() as usize] as usize
        };
        (learnt, bt)
    }

    /// Deletes the low-activity half of the long learnt clauses and clauses
    /// satisfied at level 0, then rebuilds the watch lists.  Only runs with
    /// an empty decision stack (between `solve` calls).
    fn reduce_learnts(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        for &p in &self.trail {
            self.reason[p.var() as usize] = None;
        }
        let mut victims: Vec<CRef> = (0..self.clauses.len() as CRef)
            .filter(|&c| {
                let cl = &self.clauses[c as usize];
                cl.learnt && !cl.deleted && cl.lits.len() > 2
            })
            .collect();
        victims.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            ca.activity.total_cmp(&cb.activity).then(b.cmp(&a))
        });
        for &c in victims.iter().take(victims.len() / 2) {
            self.delete_clause(c as usize);
        }
        // Rebuild watches; drop clauses decided at level 0 along the way.
        for w in &mut self.watches {
            w.clear();
        }
        for c in 0..self.clauses.len() {
            if self.clauses[c].deleted {
                continue;
            }
            let satisfied = self.clauses[c].lits.iter().any(|&l| self.lit_value(l) == Some(true));
            if satisfied {
                self.delete_clause(c);
                continue;
            }
            let lits = std::mem::take(&mut self.clauses[c].lits);
            self.clauses[c].lits =
                lits.into_iter().filter(|l| self.assign[l.var() as usize] == 0).collect();
            debug_assert!(self.clauses[c].lits.len() >= 2, "non-unit survives level-0 cleanup");
            let cref = c as CRef;
            self.watches[self.clauses[c].lits[0].index()].push(cref);
            self.watches[self.clauses[c].lits[1].index()].push(cref);
        }
        self.learnt_cap += self.learnt_cap / 2;
    }

    fn delete_clause(&mut self, c: usize) {
        if self.clauses[c].learnt {
            self.live_learnt -= 1;
        }
        self.clauses[c].deleted = true;
        self.clauses[c].lits = Vec::new();
    }

    /// Solves without assumptions, budget, or interruption.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_limited(&[], None, &mut || false)
    }

    /// Solves under `assumptions` (tried as the first decisions, in order).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, None, &mut || false)
    }

    /// Solves under `assumptions` with an optional conflict `budget`;
    /// `interrupted` is polled every 1024 conflicts and aborts the search
    /// with [`SolveResult::Unknown`] when it returns `true`.
    pub fn solve_limited(
        &mut self,
        assumptions: &[Lit],
        budget: Option<u64>,
        interrupted: &mut dyn FnMut() -> bool,
    ) -> SolveResult {
        if self.unsat {
            return SolveResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }
        if self.live_learnt > self.learnt_cap {
            self.reduce_learnts();
        }
        let start_conflicts = self.stats.conflicts;
        let mut restart_round: u64 = 0;
        let mut restart_limit = 128 * luby(restart_round);
        let mut conflicts_this_round: u64 = 0;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_round += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SolveResult::Unsat;
                }
                // The first `assumptions.len()` decision levels are always
                // assumption decisions, so a conflict there refutes them.
                if self.decision_level() <= assumptions.len() {
                    self.backtrack(0);
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                self.stats.learnt += 1;
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], None);
                } else {
                    let cref = self.attach(learnt, true);
                    self.bump_clause(cref as usize);
                    let assert_lit = self.clauses[cref as usize].lits[0];
                    self.enqueue(assert_lit, Some(cref));
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if let Some(b) = budget {
                    if self.stats.conflicts - start_conflicts >= b {
                        self.backtrack(0);
                        return SolveResult::Unknown;
                    }
                }
                if self.stats.conflicts.is_multiple_of(1024) && interrupted() {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
                if conflicts_this_round >= restart_limit {
                    self.stats.restarts += 1;
                    restart_round += 1;
                    restart_limit = 128 * luby(restart_round);
                    conflicts_this_round = 0;
                    self.backtrack(0);
                }
            } else if self.decision_level() < assumptions.len() {
                let a = assumptions[self.decision_level()];
                match self.lit_value(a) {
                    Some(true) => self.trail_lim.push(self.trail.len()),
                    Some(false) => {
                        self.backtrack(0);
                        return SolveResult::Unsat;
                    }
                    None => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, None);
                    }
                }
            } else {
                // Free decision by activity, with the saved phase.
                let mut decision = None;
                while let Some(v) = self.order.pop() {
                    if self.assign[v as usize] == 0 {
                        decision = Some(v);
                        break;
                    }
                }
                match decision {
                    None => {
                        self.model = self.assign.clone();
                        self.backtrack(0);
                        return SolveResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(Lit::new(v, !self.phase[v as usize]), None);
                    }
                }
            }
        }
    }

    /// Value of `v` in the model of the last [`SolveResult::Sat`] answer.
    ///
    /// Models are total: every allocated variable has a value.
    pub fn model_value(&self, v: Var) -> bool {
        self.model[v as usize] > 0
    }
}

/// The Luby sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 … (0-indexed).
fn luby(i: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = i;
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(s.new_var())).collect()
    }

    #[test]
    fn luby_prefix_is_standard() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_clauses_propagate_into_model() {
        let mut s = Solver::new();
        let l = vars(&mut s, 3);
        assert!(s.add_clause(&[l[0]]));
        assert!(s.add_clause(&[!l[1]]));
        assert!(s.add_clause(&[!l[0], l[1], l[2]]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(0));
        assert!(!s.model_value(1));
        assert!(s.model_value(2));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let l = vars(&mut s, 1);
        assert!(s.add_clause(&[l[0]]));
        assert!(!s.add_clause(&[!l[0]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_parity_is_unsat() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 has odd total parity.
        let mut s = Solver::new();
        let l = vars(&mut s, 3);
        let xor1 = |s: &mut Solver, a: Lit, b: Lit| {
            assert!(s.add_clause(&[a, b]));
            assert!(s.add_clause(&[!a, !b]));
        };
        xor1(&mut s, l[0], l[1]);
        xor1(&mut s, l[1], l[2]);
        xor1(&mut s, l[0], l[2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_then_release() {
        let mut s = Solver::new();
        let l = vars(&mut s, 2);
        assert!(s.add_clause(&[l[0], l[1]]));
        assert_eq!(s.solve_with(&[!l[0], !l[1]]), SolveResult::Unsat);
        // The refutation was only under assumptions: the formula stays sat.
        assert_eq!(s.solve_with(&[!l[0]]), SolveResult::Sat);
        assert!(s.model_value(1));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn selector_retirement_disables_temp_clauses() {
        let mut s = Solver::new();
        let l = vars(&mut s, 2);
        let sel = Lit::pos(s.new_var());
        assert!(s.add_clause(&[l[0]]));
        assert!(s.add_clause(&[!sel, !l[0]])); // sel → !x0: contradiction
        assert_eq!(s.solve_with(&[sel]), SolveResult::Unsat);
        assert!(s.add_clause(&[!sel]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(l[0].var()));
    }

    /// Pigeonhole principle: `holes + 1` pigeons into `holes` holes.
    pub(crate) fn pigeonhole(s: &mut Solver, holes: usize) {
        let pigeons = holes + 1;
        let p: Vec<Vec<Lit>> =
            (0..pigeons).map(|_| (0..holes).map(|_| Lit::pos(s.new_var())).collect()).collect();
        for row in &p {
            assert!(s.add_clause(row));
        }
        for h in 0..holes {
            for (i, pi) in p.iter().enumerate() {
                for pj in &p[i + 1..] {
                    assert!(s.add_clause(&[!pi[h], !pj[h]]));
                }
            }
        }
    }

    #[test]
    fn pigeonhole_is_unsat() {
        for holes in 2..=5 {
            let mut s = Solver::new();
            pigeonhole(&mut s, holes);
            assert_eq!(s.solve(), SolveResult::Unsat, "php({holes})");
        }
    }

    #[test]
    fn conflict_budget_aborts_with_unknown() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 8); // hard enough to not finish in 10 conflicts
        assert_eq!(s.solve_limited(&[], Some(10), &mut || false), SolveResult::Unknown);
    }

    #[test]
    fn interruption_aborts_with_unknown() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 9);
        let mut polls = 0u32;
        let r = s.solve_limited(&[], None, &mut || {
            polls += 1;
            true
        });
        assert_eq!(r, SolveResult::Unknown);
        assert!(polls > 0);
    }

    /// Deterministic splitmix64, for seeded test instances.
    pub(crate) fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Random 3-SAT with a planted solution — satisfiable by construction.
    pub(crate) fn planted_3sat(s: &mut Solver, n: usize, m: usize, seed: u64) {
        let mut st = seed;
        let planted: Vec<bool> = (0..n).map(|_| splitmix(&mut st) & 1 == 1).collect();
        let lits: Vec<Lit> = (0..n).map(|_| Lit::pos(s.new_var())).collect();
        let mut added = 0;
        while added < m {
            let mut clause = Vec::with_capacity(3);
            let mut satisfied = false;
            for _ in 0..3 {
                let v = (splitmix(&mut st) % n as u64) as usize;
                let neg = splitmix(&mut st) & 1 == 1;
                clause.push(Lit::new(lits[v].var(), neg));
                satisfied |= planted[v] != neg;
            }
            if satisfied {
                assert!(s.add_clause(&clause));
                added += 1;
            }
        }
    }

    #[test]
    fn planted_3sat_is_sat_and_model_satisfies_all_clauses() {
        let mut s = Solver::new();
        planted_3sat(&mut s, 120, 480, 0xfeed);
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in &s.clauses {
            if c.deleted {
                continue;
            }
            assert!(
                c.lits.iter().any(|&l| s.model_value(l.var()) != l.is_neg()),
                "model violates a clause"
            );
        }
    }

    #[test]
    fn solver_runs_are_deterministic() {
        let run = || {
            let mut s = Solver::new();
            pigeonhole(&mut s, 5);
            assert_eq!(s.solve(), SolveResult::Unsat);
            (s.stats.conflicts, s.stats.decisions, s.stats.propagations)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn learnt_reduction_keeps_answers_correct() {
        let mut s = Solver::new();
        s.learnt_cap = 50; // force reductions between the solve calls below
        planted_3sat(&mut s, 80, 330, 7);
        let lits: Vec<Lit> = (0..80).map(|v| Lit::pos(v as Var)).collect();
        for round in 0..6 {
            assert_eq!(s.solve(), SolveResult::Sat, "round {round}");
            // Pin one variable to its complement occasionally to force work.
            let v = (round * 13) % 80;
            let asm = Lit::new(lits[v].var(), s.model_value(lits[v].var()));
            let _ = s.solve_with(&[asm]); // sat or unsat, must not corrupt state
            assert_eq!(s.solve(), SolveResult::Sat, "round {round} re-solve");
        }
    }
}
