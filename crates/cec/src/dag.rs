//! Structural front end: both networks are folded into one hash-consed DAG.
//!
//! Every gate is normalized to a *signed reference* ([`Slit`]) over shared
//! AND/XOR nodes:
//!
//! - BUF/INV collapse to a (possibly complemented) fan-in reference, so
//!   inverter chains cost nothing;
//! - NAND/NOR/XNOR are the complement of their base function
//!   ([`GateType::output_inverted`]);
//! - OR is De Morgan'd into a complemented AND over complemented fan-ins;
//! - XOR pulls fan-in complements into the output phase and cancels
//!   duplicate operands (`a ⊕ a = 0`);
//! - fan-ins of the symmetric functions are sorted and deduplicated, and
//!   constants are folded.
//!
//! Structurally identical logic in the two networks then maps to the *same*
//! node — and therefore later to the same SAT variable — so the CNF the
//! checker solves only grows with the region where the networks disagree.
//! The DAG also evaluates itself bit-parallel over 64-bit pattern words,
//! which drives the signature-based candidate detection for SAT sweeping.

use std::collections::HashMap;

use rapids_netlist::topo::topological_order;
use rapids_netlist::{GateType, Network};

/// A signed node reference, packed as `node << 1 | complemented`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slit(u32);

impl Slit {
    /// Constant true (the complement of [`Slit::FALSE`]).
    pub const TRUE: Slit = Slit(0);
    /// Constant false.
    pub const FALSE: Slit = Slit(1);

    fn node_ref(node: u32, complemented: bool) -> Slit {
        Slit(node << 1 | u32::from(complemented))
    }

    /// The node index this reference points at.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the reference is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constant references.
    pub fn is_const(self) -> bool {
        self.node() == 0
    }
}

impl std::ops::Not for Slit {
    type Output = Slit;
    fn not(self) -> Slit {
        Slit(self.0 ^ 1)
    }
}

impl std::fmt::Debug for Slit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}n{}", if self.is_complement() { "!" } else { "" }, self.node())
    }
}

/// The function of a DAG node over its canonical fan-in references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeFn {
    /// Node 0: constant true.
    ConstTrue,
    /// Primary input by interface index.
    Input(usize),
    /// Conjunction of the (sorted, deduplicated) fan-in references.
    And(Box<[Slit]>),
    /// Parity of the (sorted, complement-free) fan-in references.
    Xor(Box<[Slit]>),
}

#[derive(PartialEq, Eq, Hash)]
enum NodeKey {
    And(Box<[Slit]>),
    Xor(Box<[Slit]>),
}

/// A hash-consed AND/XOR DAG shared by any number of mapped networks.
pub struct Dag {
    nodes: Vec<NodeFn>,
    cons: HashMap<NodeKey, u32>,
    inputs: Vec<u32>,
}

/// One network mapped onto a [`Dag`]: the canonical reference of each
/// output, in output-port order.
pub struct MappedOutputs {
    /// Canonical reference per output port.
    pub outputs: Vec<Slit>,
}

impl Dag {
    /// An empty DAG over `num_inputs` shared primary inputs.
    ///
    /// Input `i` of every mapped network is identified with input `i` of the
    /// DAG — interface correspondence is by index, matching the simulator's
    /// equivalence checks.
    pub fn new(num_inputs: usize) -> Self {
        let mut dag =
            Dag { nodes: vec![NodeFn::ConstTrue], cons: HashMap::new(), inputs: Vec::new() };
        for i in 0..num_inputs {
            let id = dag.push(NodeFn::Input(i));
            dag.inputs.push(id);
        }
        dag
    }

    fn push(&mut self, f: NodeFn) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(f);
        id
    }

    /// Number of nodes (constant and inputs included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG holds only the constant node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The node function of `id`.  Node ids are topologically ordered:
    /// fan-ins always have smaller ids.
    pub fn node(&self, id: u32) -> &NodeFn {
        &self.nodes[id as usize]
    }

    /// The positive reference of primary input `i`.
    pub fn input(&self, i: usize) -> Slit {
        Slit::node_ref(self.inputs[i], false)
    }

    /// Number of shared primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Whether node `id` is a primary-input node.
    pub fn input_node(&self, id: u32) -> bool {
        matches!(self.nodes[id as usize], NodeFn::Input(_))
    }

    /// Canonical AND of `ins` (sorts, deduplicates, folds constants and
    /// complement pairs; never builds 0- or 1-ary nodes).
    pub fn mk_and(&mut self, mut ins: Vec<Slit>) -> Slit {
        ins.sort();
        ins.dedup();
        let mut ops: Vec<Slit> = Vec::with_capacity(ins.len());
        for &l in &ins {
            if l == Slit::FALSE {
                return Slit::FALSE;
            }
            if l == Slit::TRUE {
                continue;
            }
            // Sorted order puts `x` immediately before `!x`.
            if let Some(&prev) = ops.last() {
                if prev == !l {
                    return Slit::FALSE;
                }
            }
            ops.push(l);
        }
        match ops.len() {
            0 => Slit::TRUE,
            1 => ops[0],
            _ => {
                let key = NodeKey::And(ops.clone().into_boxed_slice());
                if let Some(&id) = self.cons.get(&key) {
                    return Slit::node_ref(id, false);
                }
                let id = self.push(NodeFn::And(ops.into_boxed_slice()));
                self.cons.insert(key, id);
                Slit::node_ref(id, false)
            }
        }
    }

    /// Canonical OR via De Morgan: `or(xs) = ¬and(¬xs)`.
    pub fn mk_or(&mut self, ins: Vec<Slit>) -> Slit {
        let neg: Vec<Slit> = ins.into_iter().map(|l| !l).collect();
        !self.mk_and(neg)
    }

    /// Canonical XOR (pulls complements into the output phase, cancels
    /// duplicate operands, folds constants).
    pub fn mk_xor(&mut self, ins: Vec<Slit>) -> Slit {
        let mut phase = false;
        let mut ops: Vec<Slit> = Vec::with_capacity(ins.len());
        for l in ins {
            if l.is_const() {
                phase ^= l == Slit::TRUE;
                continue;
            }
            let base = if l.is_complement() {
                phase = !phase;
                !l
            } else {
                l
            };
            ops.push(base);
        }
        ops.sort();
        // a ⊕ a = 0: drop cancelling pairs.
        let mut kept: Vec<Slit> = Vec::with_capacity(ops.len());
        for l in ops {
            if kept.last() == Some(&l) {
                kept.pop();
            } else {
                kept.push(l);
            }
        }
        let base = match kept.len() {
            0 => Slit::FALSE,
            1 => kept[0],
            _ => {
                let key = NodeKey::Xor(kept.clone().into_boxed_slice());
                if let Some(&id) = self.cons.get(&key) {
                    Slit::node_ref(id, false)
                } else {
                    let id = self.push(NodeFn::Xor(kept.into_boxed_slice()));
                    self.cons.insert(key, id);
                    Slit::node_ref(id, false)
                }
            }
        };
        if phase {
            !base
        } else {
            base
        }
    }

    /// Maps a network onto the DAG, returning the canonical reference per
    /// output port and per live gate slot (dead slots map to `FALSE`).
    ///
    /// # Panics
    ///
    /// Panics if the network is cyclic or its input count differs from the
    /// DAG's.
    pub fn map_network(&mut self, network: &Network) -> (MappedOutputs, Vec<Slit>) {
        assert_eq!(network.inputs().len(), self.num_inputs(), "input count mismatch");
        let order = topological_order(network).expect("CEC requires an acyclic network");
        let mut gate_map: Vec<Slit> = vec![Slit::FALSE; network.gate_count()];
        let mut input_index: HashMap<usize, usize> = HashMap::new();
        for (i, &g) in network.inputs().iter().enumerate() {
            input_index.insert(g.index(), i);
        }
        for &g in &order {
            let gate = network.gate(g);
            let fanins: Vec<Slit> = gate.fanins.iter().map(|f| gate_map[f.index()]).collect();
            let slit = match gate.gtype {
                GateType::Input => self.input(input_index[&g.index()]),
                GateType::Const0 => Slit::FALSE,
                GateType::Const1 => Slit::TRUE,
                GateType::Buf => fanins[0],
                GateType::Inv => !fanins[0],
                GateType::And => self.mk_and(fanins),
                GateType::Nand => !self.mk_and(fanins),
                GateType::Or => self.mk_or(fanins),
                GateType::Nor => !self.mk_or(fanins),
                GateType::Xor => self.mk_xor(fanins),
                GateType::Xnor => !self.mk_xor(fanins),
            };
            gate_map[g.index()] = slit;
        }
        let outputs = network.outputs().iter().map(|port| gate_map[port.driver.index()]).collect();
        (MappedOutputs { outputs }, gate_map)
    }

    /// Bit-parallel evaluation: given one pattern word per input, returns
    /// one word per node.  Bit `k` of a node's word is its value under the
    /// `k`-th pattern.
    pub fn simulate_words(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(input_words.len(), self.num_inputs());
        let mut words = vec![0u64; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            words[id] = match node {
                NodeFn::ConstTrue => !0u64,
                NodeFn::Input(i) => input_words[*i],
                NodeFn::And(ins) => ins.iter().fold(!0u64, |acc, l| acc & word_of(&words, *l)),
                NodeFn::Xor(ins) => ins.iter().fold(0u64, |acc, l| acc ^ word_of(&words, *l)),
            };
        }
        words
    }

    /// Scalar evaluation of every node under one input assignment.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = inputs.iter().map(|&b| u64::from(b)).collect();
        self.simulate_words(&words).into_iter().map(|w| w & 1 == 1).collect()
    }
}

/// The pattern word of a signed reference.
pub fn word_of(words: &[u64], l: Slit) -> u64 {
    let w = words[l.node() as usize];
    if l.is_complement() {
        !w
    } else {
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::NetworkBuilder;

    fn two_input_dag() -> Dag {
        Dag::new(2)
    }

    #[test]
    fn and_canonicalizes_order_duplicates_and_constants() {
        let mut d = two_input_dag();
        let (a, b) = (d.input(0), d.input(1));
        let ab = d.mk_and(vec![a, b]);
        assert_eq!(d.mk_and(vec![b, a]), ab);
        assert_eq!(d.mk_and(vec![a, b, a]), ab);
        assert_eq!(d.mk_and(vec![a, b, Slit::TRUE]), ab);
        assert_eq!(d.mk_and(vec![a, b, Slit::FALSE]), Slit::FALSE);
        assert_eq!(d.mk_and(vec![a, !a]), Slit::FALSE);
        assert_eq!(d.mk_and(vec![a]), a);
        assert_eq!(d.mk_and(vec![]), Slit::TRUE);
    }

    #[test]
    fn or_is_demorgan_of_and() {
        let mut d = two_input_dag();
        let (a, b) = (d.input(0), d.input(1));
        let or = d.mk_or(vec![a, b]);
        let nand_of_negs = !d.mk_and(vec![!a, !b]);
        assert_eq!(or, nand_of_negs);
        // One shared node serves AND(!a,!b), OR(a,b), NOR(a,b).
        assert_eq!(d.len(), 1 + 2 + 1);
    }

    #[test]
    fn xor_pulls_phase_and_cancels() {
        let mut d = two_input_dag();
        let (a, b) = (d.input(0), d.input(1));
        let x = d.mk_xor(vec![a, b]);
        assert_eq!(d.mk_xor(vec![!a, b]), !x);
        assert_eq!(d.mk_xor(vec![!a, !b]), x);
        assert_eq!(d.mk_xor(vec![a, a]), Slit::FALSE);
        assert_eq!(d.mk_xor(vec![a, a, b]), b);
        assert_eq!(d.mk_xor(vec![a, Slit::TRUE]), !a);
    }

    #[test]
    fn demorgan_pair_maps_to_identical_references() {
        // NAND(a, b) vs OR(INV a, INV b): equal after normalization.
        let n1 = NetworkBuilder::new("n1")
            .input("a")
            .input("b")
            .gate("g", GateType::Nand, &["a", "b"])
            .output("g")
            .finish()
            .unwrap();
        let n2 = NetworkBuilder::new("n2")
            .input("a")
            .input("b")
            .gate("na", GateType::Inv, &["a"])
            .gate("nb", GateType::Inv, &["b"])
            .gate("g", GateType::Or, &["na", "nb"])
            .output("g")
            .finish()
            .unwrap();

        let mut d = two_input_dag();
        let (m1, _) = d.map_network(&n1);
        let (m2, _) = d.map_network(&n2);
        assert_eq!(m1.outputs, m2.outputs);
    }

    #[test]
    fn word_simulation_matches_truth_tables() {
        let mut d = two_input_dag();
        let (a, b) = (d.input(0), d.input(1));
        let and = d.mk_and(vec![a, b]);
        let xor = d.mk_xor(vec![a, b]);
        // Patterns 00, 01, 10, 11 in bits 0..4.
        let words = d.simulate_words(&[0b0101, 0b0011]);
        assert_eq!(word_of(&words, and) & 0xF, 0b0001);
        assert_eq!(word_of(&words, xor) & 0xF, 0b0110);
        assert_eq!(word_of(&words, !and) & 0xF, 0b1110);
    }
}
