//! Tseitin clause schemas, one per gate kind.
//!
//! [`CnfBuilder::gate_clauses`] emits the defining clauses for
//! `out ↔ kind(fanins)` over arbitrary literals.  Because every schema takes
//! the output as a *literal* (not a variable), the inverted-output kinds are
//! the same schema applied to the complemented output — NAND is the AND
//! schema on `¬out` — which is exactly how the structural front end
//! ([`crate::dag`]) shares one SAT variable between a gate and its inverted
//! form.
//!
//! The schemas (`out = o`, fanins `a, b, …`):
//!
//! | kind    | clauses                                                  |
//! |---------|----------------------------------------------------------|
//! | BUF     | `(¬o ∨ a)  (o ∨ ¬a)`                                     |
//! | INV     | BUF schema on `¬o`                                       |
//! | AND     | `(¬o ∨ a) (¬o ∨ b) …  (o ∨ ¬a ∨ ¬b ∨ …)`                 |
//! | NAND    | AND schema on `¬o`                                       |
//! | OR      | `(o ∨ ¬a) (o ∨ ¬b) …  (¬o ∨ a ∨ b ∨ …)`                  |
//! | NOR     | OR schema on `¬o`                                        |
//! | XOR     | binary: `(¬o ∨ a ∨ b) (¬o ∨ ¬a ∨ ¬b) (o ∨ ¬a ∨ b) (o ∨ a ∨ ¬b)`; n-ary: a chain of binary XORs through fresh variables |
//! | XNOR    | XOR schema on `¬o`                                       |
//! | CONST0  | unit `¬o`                                                |
//! | CONST1  | unit `o`                                                 |
//! | INPUT   | no clauses (a free variable)                             |
//!
//! Every schema is verified against [`GateType::eval_bool`] over all input
//! assignments in this module's tests, so the encoding is checked against
//! the same truth tables the simulator uses.

use rapids_netlist::GateType;

use crate::solver::{Lit, Solver};

/// Emits gate-defining clauses into a [`Solver`] and counts them.
pub struct CnfBuilder<'a> {
    solver: &'a mut Solver,
    /// Clauses emitted through this builder.
    pub clauses: u64,
}

impl<'a> CnfBuilder<'a> {
    /// Wraps a solver.
    pub fn new(solver: &'a mut Solver) -> Self {
        CnfBuilder { solver, clauses: 0 }
    }

    /// The wrapped solver (for allocating output/auxiliary variables).
    pub fn solver_mut(&mut self) -> &mut Solver {
        self.solver
    }

    fn add(&mut self, lits: &[Lit]) {
        self.clauses += 1;
        self.solver.add_clause(lits);
    }

    /// Emits the clause schema for `out ↔ kind(fanins)`.
    ///
    /// `fanins` must respect the kind's arity (1 for BUF/INV, ≥ 2 for the
    /// binary kinds, 0 for constants).  `Input` emits nothing.
    pub fn gate_clauses(&mut self, out: Lit, kind: GateType, fanins: &[Lit]) {
        match kind {
            GateType::Input => {}
            GateType::Const0 => self.add(&[!out]),
            GateType::Const1 => self.add(&[out]),
            GateType::Buf => self.buf(out, fanins[0]),
            GateType::Inv => self.buf(!out, fanins[0]),
            GateType::And => self.and(out, fanins),
            GateType::Nand => self.and(!out, fanins),
            GateType::Or => self.or(out, fanins),
            GateType::Nor => self.or(!out, fanins),
            GateType::Xor => self.xor(out, fanins),
            GateType::Xnor => self.xor(!out, fanins),
        }
    }

    fn buf(&mut self, out: Lit, a: Lit) {
        self.add(&[!out, a]);
        self.add(&[out, !a]);
    }

    fn and(&mut self, out: Lit, ins: &[Lit]) {
        let mut last: Vec<Lit> = Vec::with_capacity(ins.len() + 1);
        last.push(out);
        for &a in ins {
            self.add(&[!out, a]);
            last.push(!a);
        }
        self.add(&last);
    }

    fn or(&mut self, out: Lit, ins: &[Lit]) {
        let mut last: Vec<Lit> = Vec::with_capacity(ins.len() + 1);
        last.push(!out);
        for &a in ins {
            self.add(&[out, !a]);
            last.push(a);
        }
        self.add(&last);
    }

    /// `out ↔ a ⊕ b` (the four-clause binary schema).
    fn xor2(&mut self, out: Lit, a: Lit, b: Lit) {
        self.add(&[!out, a, b]);
        self.add(&[!out, !a, !b]);
        self.add(&[out, !a, b]);
        self.add(&[out, a, !b]);
    }

    /// N-ary XOR: a left-to-right chain of binary XORs through fresh
    /// auxiliary variables (XOR has no compact single-level CNF — the direct
    /// encoding needs 2^(n-1) clauses).
    fn xor(&mut self, out: Lit, ins: &[Lit]) {
        debug_assert!(ins.len() >= 2);
        let mut acc = ins[0];
        for (i, &b) in ins.iter().enumerate().skip(1) {
            let stage = if i + 1 == ins.len() { out } else { Lit::pos(self.solver.new_var()) };
            self.xor2(stage, acc, b);
            acc = stage;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    /// Exhaustively checks a schema against `GateType::eval_bool`: for every
    /// input assignment and output value, the clauses must be satisfiable
    /// exactly when the output value matches the gate's truth table.
    fn assert_schema_matches_truth_table(kind: GateType, arity: usize) {
        let mut s = Solver::new();
        let ins: Vec<Lit> = (0..arity).map(|_| Lit::pos(s.new_var())).collect();
        let out = Lit::pos(s.new_var());
        {
            let mut b = CnfBuilder::new(&mut s);
            b.gate_clauses(out, kind, &ins);
            assert!(b.clauses > 0 || kind == GateType::Input);
        }
        for pattern in 0..(1u32 << arity) {
            let values: Vec<bool> = (0..arity).map(|i| pattern >> i & 1 == 1).collect();
            let expect = kind.eval_bool(&values);
            for out_value in [false, true] {
                let mut assumptions: Vec<Lit> =
                    ins.iter().zip(&values).map(|(&l, &v)| if v { l } else { !l }).collect();
                assumptions.push(if out_value { out } else { !out });
                let got = s.solve_with(&assumptions);
                let want = if out_value == expect { SolveResult::Sat } else { SolveResult::Unsat };
                assert_eq!(got, want, "{kind:?}({values:?}) = {out_value} should be {want:?}");
            }
        }
    }

    #[test]
    fn unary_schemas_match_truth_tables() {
        assert_schema_matches_truth_table(GateType::Buf, 1);
        assert_schema_matches_truth_table(GateType::Inv, 1);
    }

    #[test]
    fn binary_schemas_match_truth_tables() {
        for kind in [
            GateType::And,
            GateType::Or,
            GateType::Xor,
            GateType::Nand,
            GateType::Nor,
            GateType::Xnor,
        ] {
            assert_schema_matches_truth_table(kind, 2);
        }
    }

    #[test]
    fn wide_schemas_match_truth_tables() {
        for kind in [
            GateType::And,
            GateType::Or,
            GateType::Xor,
            GateType::Nand,
            GateType::Nor,
            GateType::Xnor,
        ] {
            for arity in [3, 4, 5] {
                assert_schema_matches_truth_table(kind, arity);
            }
        }
    }

    #[test]
    fn constant_schemas_pin_the_literal() {
        for (kind, value) in [(GateType::Const0, false), (GateType::Const1, true)] {
            let mut s = Solver::new();
            let out = Lit::pos(s.new_var());
            CnfBuilder::new(&mut s).gate_clauses(out, kind, &[]);
            assert_eq!(s.solve(), SolveResult::Sat);
            assert_eq!(s.model_value(out.var()), value);
        }
    }
}
