//! `rapids-cec`: proof-grade combinational equivalence checking.
//!
//! Random-vector simulation (`rapids-sim`) can only *sample* the input
//! space; this crate *decides* it.  Two mapped networks are Tseitin-encoded
//! into CNF together with a miter over their outputs and handed to a
//! hand-rolled CDCL SAT solver — no external solver crates, consistent with
//! the offline-vendored workspace.  An UNSAT answer is a proof that the
//! networks agree on every input; a SAT answer is a concrete counterexample
//! input vector, re-confirmed on the bit-parallel simulator before it is
//! reported.
//!
//! The module split mirrors the pipeline:
//!
//! - [`dag`] — structural front end: both networks fold into one
//!   hash-consed AND/XOR DAG so shared logic shares SAT variables;
//! - [`cnf`] — the Tseitin clause schemas, one per gate kind;
//! - [`solver`] — the CDCL solver (two-watched literals, first-UIP
//!   learning, VSIDS activity, phase saving, Luby restarts, assumptions);
//! - [`check`] — orchestration: encode, signature-guided SAT sweeping,
//!   miter solve, counterexample extraction.
//!
//! Entry point: [`check_equivalence`] / [`check_equivalence_with_stats`].
//!
//! ```
//! use rapids_cec::{check_equivalence, CecConfig, CecResult};
//! use rapids_netlist::{GateType, NetworkBuilder};
//!
//! let a = NetworkBuilder::new("a")
//!     .input("x")
//!     .input("y")
//!     .gate("g", GateType::Nand, &["x", "y"])
//!     .output("g")
//!     .finish()
//!     .unwrap();
//! let b = NetworkBuilder::new("b")
//!     .input("x")
//!     .input("y")
//!     .gate("nx", GateType::Inv, &["x"])
//!     .gate("ny", GateType::Inv, &["y"])
//!     .gate("g", GateType::Or, &["nx", "ny"])
//!     .output("g")
//!     .finish()
//!     .unwrap();
//! assert_eq!(check_equivalence(&a, &b, &CecConfig::default()), CecResult::EquivalentProven);
//! ```

pub mod check;
pub mod cnf;
pub mod dag;
pub mod solver;

pub use check::{
    check_equivalence, check_equivalence_with_stats, CecConfig, CecResult, CecStats, Counterexample,
};
pub use cnf::CnfBuilder;
pub use solver::{Lit, SolveResult, Solver, SolverStats, Var};
