//! Reporting structures for the paper's evaluation (Table 1 columns).

use rapids_netlist::Network;

use crate::redundancy::find_redundancies;
use crate::supergate::Extraction;

/// Supergate statistics of a network (columns 12–14 of Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SupergateStatistics {
    /// Number of live logic gates.
    pub gate_count: usize,
    /// Number of supergates extracted.
    pub supergate_count: usize,
    /// Number of non-trivial supergates (covering more than one gate).
    pub nontrivial_count: usize,
    /// Number of gates covered by non-trivial supergates.
    pub covered_gates: usize,
    /// Largest supergate input count (column `L`).
    pub largest_inputs: usize,
    /// Redundancies found during extraction (column `# of red.`).
    pub redundancy_count: usize,
}

impl SupergateStatistics {
    /// Computes the statistics from a network and its extraction.
    pub fn compute(network: &Network, extraction: &Extraction) -> Self {
        let redundancy_count = find_redundancies(extraction).len();
        SupergateStatistics {
            gate_count: network.logic_gate_count(),
            supergate_count: extraction.supergates().len(),
            nontrivial_count: extraction.supergates().iter().filter(|sg| !sg.is_trivial()).count(),
            covered_gates: extraction.covered_by_nontrivial(),
            largest_inputs: extraction.largest_input_count(),
            redundancy_count,
        }
    }

    /// Percentage of gates covered by non-trivial supergates (column `gsg
    /// cov (%)`; the paper reports 27.6 % on average).
    pub fn coverage_percent(&self) -> f64 {
        if self.gate_count == 0 {
            return 0.0;
        }
        100.0 * self.covered_gates as f64 / self.gate_count as f64
    }
}

impl std::fmt::Display for SupergateStatistics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gates={} supergates={} nontrivial={} coverage={:.1}% L={} redundancies={}",
            self.gate_count,
            self.supergate_count,
            self.nontrivial_count,
            self.coverage_percent(),
            self.largest_inputs,
            self.redundancy_count
        )
    }
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub name: String,
    /// Number of logic gates in the mapped netlist.
    pub gate_count: usize,
    /// Initial critical-path delay after placement, ns.
    pub initial_delay_ns: f64,
    /// Delay improvement of supergate rewiring only, percent.
    pub gsg_improvement_percent: f64,
    /// Delay improvement of gate sizing only, percent.
    pub gs_improvement_percent: f64,
    /// Delay improvement of the combined optimizer, percent.
    pub combined_improvement_percent: f64,
    /// Run time of gsg, seconds.
    pub gsg_cpu_s: f64,
    /// Run time of GS, seconds.
    pub gs_cpu_s: f64,
    /// Run time of gsg+GS, seconds.
    pub combined_cpu_s: f64,
    /// Area change of GS, percent (negative = smaller).
    pub gs_area_percent: f64,
    /// Area change of gsg+GS, percent.
    pub combined_area_percent: f64,
    /// Percentage of gates covered by non-trivial supergates.
    pub coverage_percent: f64,
    /// Largest supergate input count.
    pub largest_inputs: usize,
    /// Redundancies found during extraction.
    pub redundancy_count: usize,
}

impl BenchmarkRow {
    /// Formats the row like the paper's table (tab-separated).
    pub fn to_table_line(&self) -> String {
        format!(
            "{:<8}\t{:>6}\t{:>6.1}\t{:>5.1}\t{:>5.1}\t{:>5.1}\t{:>6.1}\t{:>6.1}\t{:>6.1}\t{:>5.1}\t{:>5.1}\t{:>5.1}\t{:>3}\t{:>4}",
            self.name,
            self.gate_count,
            self.initial_delay_ns,
            self.gsg_improvement_percent,
            self.gs_improvement_percent,
            self.combined_improvement_percent,
            self.gsg_cpu_s,
            self.gs_cpu_s,
            self.combined_cpu_s,
            self.gs_area_percent,
            self.combined_area_percent,
            self.coverage_percent,
            self.largest_inputs,
            self.redundancy_count
        )
    }

    /// The table header matching [`BenchmarkRow::to_table_line`].
    pub fn table_header() -> String {
        format!(
            "{:<8}\t{:>6}\t{:>6}\t{:>5}\t{:>5}\t{:>5}\t{:>6}\t{:>6}\t{:>6}\t{:>5}\t{:>5}\t{:>5}\t{:>3}\t{:>4}",
            "ckt", "gates", "init", "gsg%", "GS%", "g+GS%", "gsgT", "GST", "g+GST", "GSa%", "g+GSa", "cov%", "L", "red"
        )
    }

    /// Averages a set of rows into the "ave." row of Table 1 (only the
    /// percentage columns are averaged, like the paper does).
    pub fn average(rows: &[BenchmarkRow]) -> BenchmarkRow {
        let n = rows.len().max(1) as f64;
        let avg = |f: fn(&BenchmarkRow) -> f64| rows.iter().map(f).sum::<f64>() / n;
        BenchmarkRow {
            name: "ave.".to_string(),
            gate_count: 0,
            initial_delay_ns: 0.0,
            gsg_improvement_percent: avg(|r| r.gsg_improvement_percent),
            gs_improvement_percent: avg(|r| r.gs_improvement_percent),
            combined_improvement_percent: avg(|r| r.combined_improvement_percent),
            gsg_cpu_s: 0.0,
            gs_cpu_s: 0.0,
            combined_cpu_s: 0.0,
            gs_area_percent: avg(|r| r.gs_area_percent),
            combined_area_percent: avg(|r| r.combined_area_percent),
            coverage_percent: avg(|r| r.coverage_percent),
            largest_inputs: 0,
            redundancy_count: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supergate::extract_supergates;
    use rapids_netlist::{GateType, NetworkBuilder};

    #[test]
    fn statistics_of_small_network() {
        let mut b = NetworkBuilder::new("stats");
        b.inputs(["a", "b", "c", "d"]);
        b.gate("n1", GateType::And, &["a", "b"]);
        b.gate("f", GateType::And, &["n1", "c"]);
        b.gate("g", GateType::Xor, &["d", "f"]);
        b.output("g");
        let n = b.finish().unwrap();
        let ex = extract_supergates(&n);
        let stats = SupergateStatistics::compute(&n, &ex);
        assert_eq!(stats.gate_count, 3);
        // f's supergate covers n1 and f; g is its own trivial supergate
        // (g is an XOR whose fanins are a multi-fanout-free AND? f is
        // fanout-free so the XOR supergate covers only g).
        assert_eq!(stats.covered_gates, 2);
        assert!(stats.coverage_percent() > 60.0);
        assert_eq!(stats.redundancy_count, 0);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn empty_network_coverage_is_zero() {
        let n = rapids_netlist::Network::new("empty");
        let ex = extract_supergates(&n);
        let stats = SupergateStatistics::compute(&n, &ex);
        assert_eq!(stats.coverage_percent(), 0.0);
    }

    #[test]
    fn row_formatting_and_average() {
        let row = BenchmarkRow {
            name: "alu2".into(),
            gate_count: 516,
            initial_delay_ns: 7.6,
            gsg_improvement_percent: 6.9,
            gs_improvement_percent: 2.7,
            combined_improvement_percent: 9.7,
            gsg_cpu_s: 3.5,
            gs_cpu_s: 1.6,
            combined_cpu_s: 6.8,
            gs_area_percent: -2.7,
            combined_area_percent: -2.1,
            coverage_percent: 23.4,
            largest_inputs: 9,
            redundancy_count: 7,
        };
        let line = row.to_table_line();
        assert!(line.starts_with("alu2"));
        assert_eq!(line.split('\t').count(), BenchmarkRow::table_header().split('\t').count());
        let avg = BenchmarkRow::average(&[row.clone(), row]);
        assert!((avg.gsg_improvement_percent - 6.9).abs() < 1e-9);
        assert_eq!(avg.name, "ave.");
    }
}
