//! Direct backward implication (§2 of the paper).
//!
//! Given a logic value at the out-pin of a gate, backward implication infers
//! the values of its in-pins when that is possible:
//!
//! * an AND-family gate whose (non-inverted) output is 1 forces every input
//!   to 1,
//! * an OR-family gate whose (non-inverted) output is 0 forces every input
//!   to 0,
//! * inverters and buffers always propagate,
//! * XOR-family gates never allow backward inference.
//!
//! These are the only facts the supergate extractor needs; the full
//! forward/backward implication engine of an ATPG tool is not required
//! (the paper: *"Our algorithm does not use ATPG"*).

use rapids_netlist::{BaseFunction, GateType, Logic};

/// Result of attempting direct backward implication through one gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackwardImplication {
    /// All in-pins are forced to the given value.
    AllInputs(Logic),
    /// No in-pin value can be inferred.
    Unknown,
}

/// Attempts direct backward implication through a gate of type `gtype` whose
/// out-pin carries `output`.
///
/// For the inverted forms (NAND/NOR/INV) the output inversion is taken into
/// account before applying the AND/OR rule.
pub fn backward_implication(gtype: GateType, output: Logic) -> BackwardImplication {
    // Value of the non-inverted base function's output.
    let base_output = if gtype.output_inverted() { output.complement() } else { output };
    match gtype.base_function() {
        BaseFunction::Identity => BackwardImplication::AllInputs(base_output),
        BaseFunction::And => {
            if base_output == Logic::One {
                BackwardImplication::AllInputs(Logic::One)
            } else {
                BackwardImplication::Unknown
            }
        }
        BaseFunction::Or => {
            if base_output == Logic::Zero {
                BackwardImplication::AllInputs(Logic::Zero)
            } else {
                BackwardImplication::Unknown
            }
        }
        BaseFunction::Xor | BaseFunction::Source => BackwardImplication::Unknown,
    }
}

/// The output value of `gtype` that *enables* backward implication (i.e. the
/// stimulus the supergate extractor applies at a root), if one exists.
///
/// * AND → 1, NAND → 0, OR → 0, NOR → 1,
/// * BUF/INV → any value works (1 is returned by convention),
/// * XOR family and sources → `None`.
pub fn enabling_output_value(gtype: GateType) -> Option<Logic> {
    match gtype.base_function() {
        BaseFunction::Identity => Some(Logic::One),
        BaseFunction::And => Some(if gtype.output_inverted() { Logic::Zero } else { Logic::One }),
        BaseFunction::Or => Some(if gtype.output_inverted() { Logic::One } else { Logic::Zero }),
        BaseFunction::Xor | BaseFunction::Source => None,
    }
}

/// The in-pin value implied when the enabling output value is applied.
/// Equals `ncv(g)` of the base function for AND/OR families.
pub fn enabling_input_value(gtype: GateType) -> Option<Logic> {
    match gtype.base_function() {
        BaseFunction::Identity => enabling_output_value(gtype).map(|v| {
            if gtype.output_inverted() {
                v.complement()
            } else {
                v
            }
        }),
        BaseFunction::And => Some(Logic::One),
        BaseFunction::Or => Some(Logic::Zero),
        BaseFunction::Xor | BaseFunction::Source => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_family_rules() {
        assert_eq!(
            backward_implication(GateType::And, Logic::One),
            BackwardImplication::AllInputs(Logic::One)
        );
        assert_eq!(backward_implication(GateType::And, Logic::Zero), BackwardImplication::Unknown);
        // NAND output 0 means the underlying AND is 1.
        assert_eq!(
            backward_implication(GateType::Nand, Logic::Zero),
            BackwardImplication::AllInputs(Logic::One)
        );
        assert_eq!(backward_implication(GateType::Nand, Logic::One), BackwardImplication::Unknown);
    }

    #[test]
    fn or_family_rules() {
        assert_eq!(
            backward_implication(GateType::Or, Logic::Zero),
            BackwardImplication::AllInputs(Logic::Zero)
        );
        assert_eq!(backward_implication(GateType::Or, Logic::One), BackwardImplication::Unknown);
        assert_eq!(
            backward_implication(GateType::Nor, Logic::One),
            BackwardImplication::AllInputs(Logic::Zero)
        );
    }

    #[test]
    fn identity_always_propagates() {
        assert_eq!(
            backward_implication(GateType::Buf, Logic::One),
            BackwardImplication::AllInputs(Logic::One)
        );
        assert_eq!(
            backward_implication(GateType::Inv, Logic::One),
            BackwardImplication::AllInputs(Logic::Zero)
        );
        assert_eq!(
            backward_implication(GateType::Inv, Logic::Zero),
            BackwardImplication::AllInputs(Logic::One)
        );
    }

    #[test]
    fn xor_never_propagates() {
        for v in [Logic::Zero, Logic::One] {
            assert_eq!(backward_implication(GateType::Xor, v), BackwardImplication::Unknown);
            assert_eq!(backward_implication(GateType::Xnor, v), BackwardImplication::Unknown);
        }
    }

    #[test]
    fn enabling_values_match_controlling_value_theory() {
        assert_eq!(enabling_output_value(GateType::And), Some(Logic::One));
        assert_eq!(enabling_output_value(GateType::Nand), Some(Logic::Zero));
        assert_eq!(enabling_output_value(GateType::Or), Some(Logic::Zero));
        assert_eq!(enabling_output_value(GateType::Nor), Some(Logic::One));
        assert_eq!(enabling_output_value(GateType::Xor), None);
        assert_eq!(enabling_input_value(GateType::And), Some(Logic::One));
        assert_eq!(enabling_input_value(GateType::Nand), Some(Logic::One));
        assert_eq!(enabling_input_value(GateType::Or), Some(Logic::Zero));
        assert_eq!(enabling_input_value(GateType::Nor), Some(Logic::Zero));
        assert_eq!(enabling_input_value(GateType::Inv), Some(Logic::Zero));
        assert_eq!(enabling_input_value(GateType::Buf), Some(Logic::One));
    }

    #[test]
    fn enabling_values_are_consistent_with_backward_implication() {
        for t in GateType::LOGIC_TYPES {
            if let (Some(out), Some(inp)) = (enabling_output_value(t), enabling_input_value(t)) {
                assert_eq!(
                    backward_implication(t, out),
                    BackwardImplication::AllInputs(inp),
                    "{t}"
                );
            }
        }
    }
}
