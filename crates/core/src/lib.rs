//! # rapids-core
//!
//! RAPIDS — *Rewiring After Placement usIng easily Detectable Symmetries* —
//! the primary contribution of the DAC 2000 paper reproduced by this
//! workspace.
//!
//! The crate implements, on top of the substrate crates:
//!
//! * **Direct backward implication** and controlling-value reasoning (§2) —
//!   [`implication`].
//! * **Generalized implication supergate (GISG) extraction** in linear time
//!   by a reverse-topological traversal (§3.2) — [`supergate`].
//! * **Symmetry identification** from and-or-reachability / xor-reachability
//!   (Theorem 1) and the classification of swappable pins into non-inverting
//!   (NES) and inverting (ES) swaps (Lemmas 6–8) — [`symmetry`], [`swap`].
//! * **Cross-supergate swapping** under the DeMorgan transform (Theorem 2,
//!   Fig. 3) — [`cross`].
//! * **Redundancy identification** at fan-out stems during extraction
//!   (Fig. 1) — [`redundancy`].
//! * **Post-placement timing optimization** (§5): supergate rewiring cast as
//!   a gate-sizing problem and driven by Coudert-style min-slack /
//!   relaxation iterations; the three optimizers of the evaluation —
//!   `gsg`, `GS` and `gsg+GS` — are in [`optimizer`].
//! * **Experiment reporting** for the Table 1 columns — [`report`].
//!
//! ```
//! use rapids_core::supergate::extract_supergates;
//! use rapids_netlist::{GateType, NetworkBuilder};
//!
//! // f = AND(h, AND(k, m)) — one 3-input AND supergate.
//! let mut b = NetworkBuilder::new("fig2");
//! b.inputs(["h", "k", "m"]);
//! b.gate("g1", GateType::And, &["k", "m"]);
//! b.gate("f", GateType::And, &["h", "g1"]);
//! b.output("f");
//! let network = b.finish().unwrap();
//! let extraction = extract_supergates(&network);
//! let sg = extraction.supergate_of_root(network.find_by_name("f").unwrap()).unwrap();
//! assert_eq!(sg.leaves.len(), 3);
//! ```

pub mod cross;
pub mod implication;
pub mod optimizer;
pub mod redundancy;
pub mod report;
pub mod supergate;
pub mod swap;
pub mod symmetry;

pub use optimizer::{OptimizationOutcome, Optimizer, OptimizerConfig, OptimizerKind};
pub use rapids_sizing::CancelToken;
pub use report::{BenchmarkRow, SupergateStatistics};
pub use supergate::{
    extract_supergates, Extraction, PinClass, Supergate, SupergateKind, SupergateLeaf,
};
pub use swap::{SwapCandidate, SwapKind};
