//! Generalized implication supergate (GISG) extraction (§3.2).
//!
//! The network is processed in reverse topological order.  Every gate that
//! is a primary-output driver, has multiple fan-outs, or is the point where
//! backward propagation from an enclosing supergate stopped becomes a
//! **root**.  From each root the extractor descends through its fanout-free
//! transitive fan-in:
//!
//! * **AND/OR roots** propagate direct backward implication (the enabling
//!   output value is applied at the root, so every reached pin carries an
//!   implied value `imp_value`) — these pins are *and-or-reachable*;
//! * **XOR roots** descend through XOR/XNOR/INV/BUF gates only — the reached
//!   pins are *xor-reachable*;
//! * inverters and buffers are covered by both kinds of traversal.
//!
//! The traversal touches every gate and every edge a constant number of
//! times, which is the linear-time property claimed by the paper.

use std::collections::HashMap;

use rapids_netlist::{BaseFunction, GateId, Logic, Network, PinRef};

use crate::implication::{backward_implication, enabling_output_value, BackwardImplication};

/// Kind of a generalized implication supergate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupergateKind {
    /// Root is an AND/NAND gate (leaves are and-or-reachable with
    /// `imp_value = 1`).
    And,
    /// Root is an OR/NOR gate (leaves are and-or-reachable with
    /// `imp_value = 0`).
    Or,
    /// Root is an XOR/XNOR gate (leaves are xor-reachable).
    Xor,
    /// Root is a buffer/inverter chain or a gate that admits no expansion;
    /// the supergate covers a single function and offers no swap freedom on
    /// its own.
    Trivial,
}

/// How a leaf pin is reached from the root (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinClass {
    /// And-or-reachable, with the logic value implied at the pin by direct
    /// backward implication from the root.
    AndOr {
        /// `imp_value(p)` of the paper.
        imp_value: Logic,
    },
    /// Xor-reachable, with the parity of inversions along the path from the
    /// pin to the root.
    Xor {
        /// `true` if the path inverts the signal an odd number of times.
        inverted_path: bool,
    },
}

/// One input pin of a supergate: an in-pin of a member gate whose driver
/// lies outside the supergate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupergateLeaf {
    /// The in-pin.
    pub pin: PinRef,
    /// The external gate driving the pin.
    pub driver: GateId,
    /// Reachability class of the pin.
    pub class: PinClass,
}

/// A generalized implication supergate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Supergate {
    /// Root gate (its output is the supergate output).
    pub root: GateId,
    /// Kind of the supergate.
    pub kind: SupergateKind,
    /// Gates covered by the supergate, root first.
    pub members: Vec<GateId>,
    /// Input pins of the supergate.
    pub leaves: Vec<SupergateLeaf>,
}

impl Supergate {
    /// Number of covered gates.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Number of input pins (the `L` column of Table 1 reports the maximum
    /// of this quantity over all supergates).
    pub fn input_count(&self) -> usize {
        self.leaves.len()
    }

    /// A supergate is *trivial* if it covers a single gate (no rewiring
    /// freedom beyond that gate's own commutativity).
    pub fn is_trivial(&self) -> bool {
        self.members.len() <= 1
    }
}

/// The result of supergate extraction over a whole network.
#[derive(Debug, Clone)]
pub struct Extraction {
    supergates: Vec<Supergate>,
    root_index: HashMap<GateId, usize>,
    cover_index: HashMap<GateId, usize>,
}

impl Extraction {
    /// All supergates, in extraction (reverse topological root) order.
    pub fn supergates(&self) -> &[Supergate] {
        &self.supergates
    }

    /// The supergate rooted at `root`, if that gate is a root.
    pub fn supergate_of_root(&self, root: GateId) -> Option<&Supergate> {
        self.root_index.get(&root).map(|&i| &self.supergates[i])
    }

    /// The supergate covering `gate` (every live logic gate is covered by
    /// exactly one supergate).
    pub fn covering_supergate(&self, gate: GateId) -> Option<&Supergate> {
        self.cover_index.get(&gate).map(|&i| &self.supergates[i])
    }

    /// Number of logic gates covered by non-trivial supergates.
    pub fn covered_by_nontrivial(&self) -> usize {
        self.supergates.iter().filter(|sg| !sg.is_trivial()).map(|sg| sg.size()).sum()
    }

    /// The largest supergate input count (`L` of Table 1), 0 if empty.
    pub fn largest_input_count(&self) -> usize {
        self.supergates.iter().map(|sg| sg.input_count()).max().unwrap_or(0)
    }
}

/// Extracts the unique partition of the network into generalized implication
/// supergates.
///
/// # Panics
///
/// Panics if the network is cyclic.
pub fn extract_supergates(network: &Network) -> Extraction {
    let order = rapids_netlist::topo::reverse_topological_order(network)
        .expect("supergate extraction requires an acyclic network");
    let mut covered = vec![false; network.gate_count()];
    let mut supergates = Vec::new();
    let mut root_index = HashMap::new();
    let mut cover_index = HashMap::new();

    for g in order {
        let gate = network.gate(g);
        if gate.gtype.is_source() || covered[g.index()] {
            continue;
        }
        // Any logic gate not swallowed by an enclosing supergate becomes a
        // root: this covers primary-output drivers, multi-fanout gates and
        // propagation stop points alike.
        let sg = extract_from_root(network, g, &mut covered);
        let idx = supergates.len();
        root_index.insert(g, idx);
        for &m in &sg.members {
            cover_index.insert(m, idx);
        }
        supergates.push(sg);
    }
    Extraction { supergates, root_index, cover_index }
}

/// Extracts the supergate rooted at `root`, marking covered gates.
fn extract_from_root(network: &Network, root: GateId, covered: &mut [bool]) -> Supergate {
    let root_type = network.gate(root).gtype;
    covered[root.index()] = true;
    match root_type.base_function() {
        BaseFunction::And | BaseFunction::Or | BaseFunction::Identity => {
            extract_and_or(network, root, covered)
        }
        BaseFunction::Xor => extract_xor(network, root, covered),
        BaseFunction::Source => unreachable!("sources are never extraction roots"),
    }
}

/// Can the traversal descend into `driver` from inside the supergate?
/// It must be a fanout-free logic gate (single sink, no primary-output port).
fn expandable(network: &Network, driver: GateId) -> bool {
    let g = network.gate(driver);
    !g.gtype.is_source() && network.is_fanout_free(driver)
}

/// AND/OR/identity-rooted extraction by direct backward implication.
fn extract_and_or(network: &Network, root: GateId, covered: &mut [bool]) -> Supergate {
    let root_type = network.gate(root).gtype;
    let kind = match root_type.base_function() {
        BaseFunction::And => SupergateKind::And,
        BaseFunction::Or => SupergateKind::Or,
        _ => SupergateKind::Trivial,
    };
    let enabling = enabling_output_value(root_type)
        .expect("AND/OR/identity gates always have an enabling output value");

    let mut members = vec![root];
    let mut leaves = Vec::new();
    // Work list of (gate, value at its out-pin).
    let mut work: Vec<(GateId, Logic)> = vec![(root, enabling)];
    while let Some((g, out_value)) = work.pop() {
        match backward_implication(network.gate(g).gtype, out_value) {
            BackwardImplication::AllInputs(pin_value) => {
                for (idx, &driver) in network.fanins(g).iter().enumerate() {
                    let pin = PinRef::new(g, idx);
                    let can_descend = expandable(network, driver)
                        && !covered[driver.index()]
                        && matches!(
                            backward_implication(network.gate(driver).gtype, pin_value),
                            BackwardImplication::AllInputs(_)
                        );
                    if can_descend {
                        covered[driver.index()] = true;
                        members.push(driver);
                        work.push((driver, pin_value));
                    } else {
                        leaves.push(SupergateLeaf {
                            pin,
                            driver,
                            class: PinClass::AndOr { imp_value: pin_value },
                        });
                    }
                }
            }
            BackwardImplication::Unknown => {
                // Only possible if the root itself is XOR-like, which this
                // function never receives.
                unreachable!("and-or extraction reached a non-implying gate")
            }
        }
    }
    // Identity-rooted chains that expanded into an AND/OR tree adopt the
    // kind of the first non-identity member for reporting purposes.
    let kind = if kind == SupergateKind::Trivial && members.len() > 1 {
        members
            .iter()
            .find_map(|&m| match network.gate(m).gtype.base_function() {
                BaseFunction::And => Some(SupergateKind::And),
                BaseFunction::Or => Some(SupergateKind::Or),
                _ => None,
            })
            .unwrap_or(SupergateKind::Trivial)
    } else {
        kind
    };
    Supergate { root, kind, members, leaves }
}

/// XOR-rooted extraction: descend through XOR/XNOR/INV/BUF fanout-free gates.
fn extract_xor(network: &Network, root: GateId, covered: &mut [bool]) -> Supergate {
    let mut members = vec![root];
    let mut leaves = Vec::new();
    // Work list of (gate, parity of inversions from this gate's output up to
    // the root output).
    let root_inverts = network.gate(root).gtype.output_inverted();
    let mut work: Vec<(GateId, bool)> = vec![(root, root_inverts)];
    while let Some((g, parity_above)) = work.pop() {
        for (idx, &driver) in network.fanins(g).iter().enumerate() {
            let pin = PinRef::new(g, idx);
            let dtype = network.gate(driver).gtype;
            let xor_like =
                matches!(dtype.base_function(), BaseFunction::Xor | BaseFunction::Identity);
            if xor_like && expandable(network, driver) && !covered[driver.index()] {
                covered[driver.index()] = true;
                members.push(driver);
                let parity = parity_above ^ dtype.output_inverted();
                work.push((driver, parity));
            } else {
                leaves.push(SupergateLeaf {
                    pin,
                    driver,
                    class: PinClass::Xor { inverted_path: parity_above },
                });
            }
        }
    }
    Supergate { root, kind: SupergateKind::Xor, members, leaves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::{GateType, NetworkBuilder};

    /// Fig. 2-style network: f = AND(h, AND(k, m)), fanout-free.
    fn and_tree() -> Network {
        let mut b = NetworkBuilder::new("fig2");
        b.inputs(["h", "k", "m"]);
        b.gate("g1", GateType::And, &["k", "m"]);
        b.gate("f", GateType::And, &["h", "g1"]);
        b.output("f");
        b.finish().unwrap()
    }

    #[test]
    fn and_tree_is_one_supergate_with_three_leaves() {
        let n = and_tree();
        let ex = extract_supergates(&n);
        let f = n.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        assert_eq!(sg.kind, SupergateKind::And);
        assert_eq!(sg.size(), 2);
        assert_eq!(sg.input_count(), 3);
        for leaf in &sg.leaves {
            assert_eq!(leaf.class, PinClass::AndOr { imp_value: Logic::One });
        }
        // Every logic gate covered exactly once.
        assert_eq!(ex.supergates().len(), 1);
        let g1 = n.find_by_name("g1").unwrap();
        assert_eq!(ex.covering_supergate(g1).unwrap().root, f);
    }

    #[test]
    fn nand_nor_mix_with_consistent_implications() {
        // f = NOR(NAND(a, b), c): setting f = 1 implies both fanins 0; the
        // NAND output 0 implies a = b = 1.  All three pins are one supergate.
        let mut b = NetworkBuilder::new("mix");
        b.inputs(["a", "b", "c"]);
        b.gate("n1", GateType::Nand, &["a", "b"]);
        b.gate("f", GateType::Nor, &["n1", "c"]);
        b.output("f");
        let n = b.finish().unwrap();
        let ex = extract_supergates(&n);
        let f = n.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        assert_eq!(sg.size(), 2);
        assert_eq!(sg.input_count(), 3);
        let values: Vec<Logic> = sg
            .leaves
            .iter()
            .map(|l| match l.class {
                PinClass::AndOr { imp_value } => imp_value,
                _ => panic!("expected and-or leaves"),
            })
            .collect();
        // a and b are implied 1 (inputs of the NAND), c is implied 0.
        assert_eq!(values.iter().filter(|&&v| v == Logic::One).count(), 2);
        assert_eq!(values.iter().filter(|&&v| v == Logic::Zero).count(), 1);
    }

    #[test]
    fn incompatible_polarity_stops_expansion() {
        // f = AND(g, h) with g = OR(a, b): implication of 1 at the OR output
        // infers nothing, so the OR is its own supergate root.
        let mut b = NetworkBuilder::new("stop");
        b.inputs(["a", "b", "h"]);
        b.gate("g", GateType::Or, &["a", "b"]);
        b.gate("f", GateType::And, &["g", "h"]);
        b.output("f");
        let n = b.finish().unwrap();
        let ex = extract_supergates(&n);
        assert_eq!(ex.supergates().len(), 2);
        let f = n.find_by_name("f").unwrap();
        let g = n.find_by_name("g").unwrap();
        assert_eq!(ex.supergate_of_root(f).unwrap().size(), 1);
        assert_eq!(ex.supergate_of_root(g).unwrap().size(), 1);
    }

    #[test]
    fn multi_fanout_gate_becomes_its_own_root() {
        let mut b = NetworkBuilder::new("mf");
        b.inputs(["a", "b", "c", "d"]);
        b.gate("shared", GateType::And, &["a", "b"]);
        b.gate("f1", GateType::And, &["shared", "c"]);
        b.gate("f2", GateType::And, &["shared", "d"]);
        b.output("f1");
        b.output("f2");
        let n = b.finish().unwrap();
        let ex = extract_supergates(&n);
        let shared = n.find_by_name("shared").unwrap();
        assert!(ex.supergate_of_root(shared).is_some());
        assert_eq!(ex.supergates().len(), 3);
        // f1's supergate does not cover `shared` even though implication
        // would be compatible, because `shared` has two fanouts.
        let f1 = n.find_by_name("f1").unwrap();
        assert_eq!(ex.supergate_of_root(f1).unwrap().size(), 1);
    }

    #[test]
    fn xor_tree_extraction_tracks_inversion_parity() {
        let mut b = NetworkBuilder::new("xortree");
        b.inputs(["a", "b", "c", "d"]);
        b.gate("x1", GateType::Xor, &["a", "b"]);
        b.gate("x2", GateType::Xnor, &["c", "d"]);
        b.gate("f", GateType::Xor, &["x1", "x2"]);
        b.output("f");
        let n = b.finish().unwrap();
        let ex = extract_supergates(&n);
        let f = n.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        assert_eq!(sg.kind, SupergateKind::Xor);
        assert_eq!(sg.size(), 3);
        assert_eq!(sg.input_count(), 4);
        // Pins under the XNOR see an inverted path.
        let inverted: Vec<bool> = sg
            .leaves
            .iter()
            .map(|l| match l.class {
                PinClass::Xor { inverted_path } => inverted_path,
                _ => panic!("expected xor leaves"),
            })
            .collect();
        assert_eq!(inverted.iter().filter(|&&i| i).count(), 2);
        assert_eq!(inverted.iter().filter(|&&i| !i).count(), 2);
    }

    #[test]
    fn xor_and_boundary() {
        // XOR root over AND gates: the ANDs stop xor-reachability.
        let mut b = NetworkBuilder::new("xab");
        b.inputs(["a", "b", "c", "d"]);
        b.gate("a1", GateType::And, &["a", "b"]);
        b.gate("a2", GateType::And, &["c", "d"]);
        b.gate("f", GateType::Xor, &["a1", "a2"]);
        b.output("f");
        let n = b.finish().unwrap();
        let ex = extract_supergates(&n);
        let f = n.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        assert_eq!(sg.size(), 1);
        assert_eq!(sg.input_count(), 2);
        assert_eq!(ex.supergates().len(), 3);
    }

    #[test]
    fn inverters_are_absorbed_into_supergates() {
        // f = AND(INV(a), b): the inverter is covered, its input is a leaf
        // with implied value 0.
        let mut b = NetworkBuilder::new("inv");
        b.inputs(["a", "b"]);
        b.gate("na", GateType::Inv, &["a"]);
        b.gate("f", GateType::And, &["na", "b"]);
        b.output("f");
        let n = b.finish().unwrap();
        let ex = extract_supergates(&n);
        let f = n.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        assert_eq!(sg.size(), 2);
        assert_eq!(sg.input_count(), 2);
        let a = n.find_by_name("a").unwrap();
        let leaf_a = sg.leaves.iter().find(|l| l.driver == a).unwrap();
        assert_eq!(leaf_a.class, PinClass::AndOr { imp_value: Logic::Zero });
        let b_id = n.find_by_name("b").unwrap();
        let leaf_b = sg.leaves.iter().find(|l| l.driver == b_id).unwrap();
        assert_eq!(leaf_b.class, PinClass::AndOr { imp_value: Logic::One });
    }

    #[test]
    fn every_logic_gate_is_covered_exactly_once() {
        let n = rapids_circuits::benchmark("c432").unwrap();
        let ex = extract_supergates(&n);
        let total_members: usize = ex.supergates().iter().map(|sg| sg.size()).sum();
        assert_eq!(total_members, n.logic_gate_count());
        for g in n.iter_logic() {
            assert!(ex.covering_supergate(g).is_some(), "{g} not covered");
        }
        assert!(ex.largest_input_count() >= 2);
        assert!(ex.covered_by_nontrivial() > 0);
    }

    #[test]
    fn trivial_supergate_classification() {
        let mut b = NetworkBuilder::new("triv");
        b.inputs(["a", "b"]);
        b.gate("f", GateType::Xor, &["a", "b"]);
        b.output("f");
        let n = b.finish().unwrap();
        let ex = extract_supergates(&n);
        let f = n.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        assert!(sg.is_trivial());
    }
}
