//! Post-placement timing optimization (§5 of the paper).
//!
//! Supergate rewiring is cast as a gate-sizing problem on the supergate
//! netlist: for every non-trivial supergate the set of symmetric pin
//! permutations plays the role of a set of alternative library
//! implementations, and a Coudert-style iteration — a **min-slack phase**
//! that visits critical supergates and takes the best swap, alternating with
//! a **relaxation phase** over the remaining supergates — drives the
//! optimization.  Three optimizers are provided, matching the paper's
//! evaluation:
//!
//! * [`OptimizerKind::Rewiring`] (`gsg`)   — supergate-based rewiring only;
//! * [`OptimizerKind::Sizing`]   (`GS`)    — classical gate sizing only;
//! * [`OptimizerKind::Combined`] (`gsg+GS`) — rewiring on gates covered by
//!   non-trivial supergates, sizing restricted to gates covered by trivial
//!   supergates — the minimum-perturbation combination the paper advocates.
//!
//! Timing state lives in one [`IncrementalSta`] per run: every pass scores
//! candidates against the frozen report of the last refresh (exactly as the
//! paper's "full analysis once per pass" loop did) and the refresh re-times
//! only the cones the accepted moves dirtied.  Candidate probes run through
//! a [`NetCache`]; the supergate extraction and the network's topological
//! hint are computed once and reused across passes (drive-strength changes
//! never invalidate them, and non-inverting swaps exchange leaf drivers
//! without changing any supergate's structure); and per-pass rollback
//! replays an undo journal of applied swaps instead of restoring a clone of
//! the whole network.
//!
//! Inverting (ES) swaps are first-class when
//! [`OptimizerConfig::include_inverting_swaps`] is set: a probe applies the
//! pin exchange, hosts the two inserted inverters on a private overlay of
//! the placement (each co-located with its driver), scores the result with
//! frozen-report estimates that extend to the not-yet-analyzed inverters,
//! and undoes the move so cleanly that the network's slot count — and with
//! it every id-indexed array — is restored exactly.  Accepted inverters are
//! journaled into the incremental engine's touched set, which grows its
//! arrays in place instead of re-analyzing the whole design.
//!
//! When the caller hands [`Optimizer::optimize_with_rows`] a legalization
//! row model ([`rapids_legalize::RowModel`]), each **accepted** inverter is
//! additionally *nudged* into the nearest genuinely free row slot instead
//! of staying stacked on its driver; the net caches are invalidated for the
//! real position, so every later candidate (and the incremental re-time) is
//! scored against it.  Probes still host at the co-located position — the
//! nudge consults globally shared occupancy, so deciding it at accept time
//! on the main thread (in deterministic acceptance order) is what keeps
//! decisions thread-count invariant (see `rapids_sizing::parallel`).
//! Rolled-back passes release the slots their undone inverters occupied.

use std::collections::HashSet;
use std::time::Instant;

use rapids_celllib::Library;
use rapids_legalize::RowModel;
use rapids_netlist::{GateId, Network};
use rapids_placement::{gate_width_sites, Placement, Point};
use rapids_sim::check_equivalence_random;
use rapids_sizing::{neighborhood_eval, CancelToken, GateSizer, SizerConfig};
use rapids_timing::{IncrementalSta, IncrementalStats, NetCache, TimingConfig, TimingReport};

use crate::report::SupergateStatistics;
use crate::supergate::{extract_supergates, Extraction, Supergate};
use crate::swap::{apply_swap, undo_swap, AppliedSwap, SwapCandidate, SwapKind};
use crate::symmetry::swap_candidates_in;

/// Which of the paper's three optimizers to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// `gsg`: supergate-based rewiring only.
    Rewiring,
    /// `GS`: gate sizing only.
    Sizing,
    /// `gsg+GS`: rewiring on non-trivial supergates, sizing on the rest.
    Combined,
}

impl std::fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizerKind::Rewiring => write!(f, "gsg"),
            OptimizerKind::Sizing => write!(f, "GS"),
            OptimizerKind::Combined => write!(f, "gsg+GS"),
        }
    }
}

/// Configuration of the post-placement optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerConfig {
    /// Which optimizer to run.
    pub kind: OptimizerKind,
    /// Maximum number of min-slack + relaxation passes.
    pub max_passes: usize,
    /// Gates within this margin of the worst slack count as critical, ns.
    pub critical_margin_ns: f64,
    /// Allow inverting (ES) swaps, which exchange two symmetric pins of
    /// opposite implied polarity and insert an inverter pair to compensate
    /// (Lemma 7).  Each inserted inverter is hosted on an internal overlay
    /// of the placement, co-located with its driver, so the caller's
    /// placement is never modified; the network the optimizer returns may
    /// therefore contain more gates than it was given.  Off by default
    /// because the paper's headline `gsg` flow is placement-neutral; the
    /// applied count is reported as
    /// [`OptimizationOutcome::inverting_swaps_applied`].
    pub include_inverting_swaps: bool,
    /// After every accepted batch of swaps, cross-check functional
    /// equivalence against the pre-optimization network with random
    /// simulation (a safety net; the structural theory guarantees it).
    pub verify_with_simulation: bool,
    /// Worker threads for candidate scoring (1 = fully sequential); also
    /// forwarded to the embedded gate sizer.  The guarantees (identical
    /// decisions for every count, bit-exact sizing, a final-ulp rewiring
    /// caveat after rolled-back passes) are stated once in
    /// [`rapids_sizing::parallel`] — the `threads` determinism contract.
    pub threads: usize,
    /// Configuration of the embedded gate sizer (for `GS` and `gsg+GS`).
    pub sizer: SizerConfig,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            kind: OptimizerKind::Combined,
            max_passes: 4,
            critical_margin_ns: 0.2,
            include_inverting_swaps: false,
            verify_with_simulation: false,
            threads: 1,
            sizer: SizerConfig::default(),
        }
    }
}

impl OptimizerConfig {
    /// Convenience constructor for a specific optimizer kind.
    pub fn for_kind(kind: OptimizerKind) -> Self {
        OptimizerConfig { kind, ..Self::default() }
    }

    /// Reduced-effort configuration for tests and smoke benchmarks.
    pub fn fast(kind: OptimizerKind) -> Self {
        OptimizerConfig { kind, max_passes: 2, sizer: SizerConfig::fast(), ..Self::default() }
    }
}

/// Result of one optimization run (one cell of Table 1, essentially).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationOutcome {
    /// The optimizer that produced this outcome.
    pub kind: OptimizerKind,
    /// Critical-path delay before optimization, ns.
    pub initial_delay_ns: f64,
    /// Critical-path delay after optimization, ns.
    pub final_delay_ns: f64,
    /// Total cell area before optimization, µm².
    pub initial_area_um2: f64,
    /// Total cell area after optimization, µm².
    pub final_area_um2: f64,
    /// Total half-perimeter wire length before optimization, µm.
    pub initial_hpwl_um: f64,
    /// Total half-perimeter wire length after optimization, µm.
    pub final_hpwl_um: f64,
    /// Number of pin swaps applied (non-inverting plus inverting).
    pub swaps_applied: usize,
    /// Number of inverting (ES) swaps among `swaps_applied`; each inserted
    /// one inverter pair, so the optimized network carries
    /// `2 × inverting_swaps_applied` more live gates than the input.
    pub inverting_swaps_applied: usize,
    /// Number of gates whose drive strength changed.
    pub gates_resized: usize,
    /// Overlay positions of the inverters inserted by applied ES swaps,
    /// `(gate, location)` per inverter (empty unless
    /// [`OptimizerConfig::include_inverting_swaps`] applied any).  The
    /// caller's placement has no slots for these gates; to re-time or
    /// re-optimize the returned network, extend a copy of that placement
    /// with [`rapids_placement::Placement::host_at`] for each entry (the
    /// flow packages this as `PipelineReport::grown_placement`).
    pub hosted_inverters: Vec<(GateId, Point)>,
    /// How many accepted inverters could *not* be nudged into a free row
    /// slot (no wide-enough gap anywhere) and fell back to stacking on
    /// their driver.  Always 0 without a row model
    /// ([`Optimizer::optimize_with_rows`]), and 0 on every realistically
    /// utilized die; a non-zero count means the grown placement may
    /// overlap.  Counts misses of rolled-back passes too, so it can
    /// overstate — it is a "may be illegal" flag, not a QoR metric.
    pub nudge_fallbacks: usize,
    /// Wall-clock run time, seconds.
    pub cpu_seconds: f64,
    /// Supergate statistics of the (pre-optimization) netlist.
    pub statistics: SupergateStatistics,
    /// Work counters of the timing engine(s) that drove the run — full
    /// re-analyses, dirty-cone updates and gates re-timed, summed over this
    /// run's own engine and the sizer's when the sizer ran one.
    pub sta: IncrementalStats,
}

impl OptimizationOutcome {
    /// Delay improvement as a percentage of the initial delay.
    pub fn delay_improvement_percent(&self) -> f64 {
        if self.initial_delay_ns <= 0.0 {
            return 0.0;
        }
        100.0 * (self.initial_delay_ns - self.final_delay_ns) / self.initial_delay_ns
    }

    /// Area change as a percentage of the initial area (negative = smaller).
    pub fn area_change_percent(&self) -> f64 {
        if self.initial_area_um2 <= 0.0 {
            return 0.0;
        }
        100.0 * (self.final_area_um2 - self.initial_area_um2) / self.initial_area_um2
    }

    /// Wire-length change as a percentage of the initial HPWL.
    pub fn hpwl_change_percent(&self) -> f64 {
        if self.initial_hpwl_um <= 0.0 {
            return 0.0;
        }
        100.0 * (self.final_hpwl_um - self.initial_hpwl_um) / self.initial_hpwl_um
    }
}

/// The post-placement optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    config: OptimizerConfig,
    cancel: CancelToken,
}

impl Optimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: OptimizerConfig) -> Self {
        Optimizer { config, cancel: CancelToken::new() }
    }

    /// Attaches a cooperative cancellation token, polled at pass boundaries
    /// of every optimization loop (rewiring, restricted sizing, and the
    /// delegated [`GateSizer`]).  A cancelled run stops between passes and
    /// reports the best result reached so far; it never tears the network.
    /// The token lives on the optimizer, not the config, so config equality
    /// and fingerprints are unaffected.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Runs the configured optimizer on `network` in place.  The caller's
    /// placement is never modified: non-inverting swaps and sizing only
    /// change pin connections and drive strengths, and inverting swaps host
    /// their inserted inverters on an internal overlay copy (each
    /// co-located with its driver).
    pub fn optimize(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        timing: &TimingConfig,
    ) -> OptimizationOutcome {
        self.optimize_with_rows(network, library, placement, None, timing)
    }

    /// [`Optimizer::optimize`] with an optional legalization row model.
    ///
    /// When `rows` is given (it must reflect `placement` — see
    /// [`rapids_legalize::RowModel::build`]), the inverting-swap path hosts
    /// each accepted inverter in the nearest genuinely free row slot
    /// instead of stacking it on its driver, so a legal placement stays
    /// legal as the network grows.  The caller's model is never modified:
    /// like the placement, it is cloned into a working copy whose occupancy
    /// tracks this run's surviving inverters.
    pub fn optimize_with_rows(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        rows: Option<&RowModel>,
        timing: &TimingConfig,
    ) -> OptimizationOutcome {
        let start = Instant::now();
        let mut rows = rows.cloned();
        let reference =
            if self.config.verify_with_simulation { Some(network.clone()) } else { None };
        // Growable working copy: inverting swaps extend it with overlay
        // slots for the inverters they insert (`Placement::host_at`).
        let caller_slots = placement.len();
        let mut placement = placement.clone();
        let placement = &mut placement;
        // The hint turns the cycle check of every scored swap into an O(1)
        // position comparison; it is maintained (or dropped and re-proved)
        // automatically across edits.
        network.refresh_topo_hint();
        let mut inc = IncrementalSta::new_with_threads(
            network,
            library,
            placement,
            timing,
            self.config.threads,
        );
        let initial_delay_ns = inc.report().critical_delay_ns();
        let initial_area_um2 = library.network_area_um2(network);
        let initial_hpwl_um = placement.total_hpwl_um(network);
        let mut extraction = extract_supergates(network);
        let statistics = SupergateStatistics::compute(network, &extraction);
        let mut cache = NetCache::for_network(network);

        let mut swaps_applied = 0usize;
        let mut inverting_swaps_applied = 0usize;
        let mut gates_resized = 0usize;
        match self.config.kind {
            OptimizerKind::Sizing => {
                let sizer_config = SizerConfig {
                    threads: self.config.sizer.threads.max(self.config.threads),
                    ..self.config.sizer.clone()
                };
                // The sizer drives our own engine, which therefore ends the
                // run current — no second engine, no redundant full
                // re-analysis, no stats plumb-through to merge back.
                let outcome = GateSizer::new(sizer_config)
                    .with_cancel(self.cancel.clone())
                    .optimize_with(network, library, placement, timing, &mut inc);
                gates_resized = outcome.resized_gates;
            }
            OptimizerKind::Rewiring => {
                (swaps_applied, inverting_swaps_applied) = self.rewiring_loop(
                    network,
                    library,
                    placement,
                    rows.as_mut(),
                    timing,
                    None,
                    &mut inc,
                    &mut cache,
                    &mut extraction,
                );
            }
            OptimizerKind::Combined => {
                // Gates covered by trivial supergates are the sizing domain.
                let trivial_gates: HashSet<GateId> = extraction
                    .supergates()
                    .iter()
                    .filter(|sg| sg.is_trivial())
                    .flat_map(|sg| sg.members.iter().copied())
                    .collect();
                (swaps_applied, inverting_swaps_applied) = self.rewiring_loop(
                    network,
                    library,
                    placement,
                    rows.as_mut(),
                    timing,
                    Some(&trivial_gates),
                    &mut inc,
                    &mut cache,
                    &mut extraction,
                );
                gates_resized = self.restricted_sizing(
                    network,
                    library,
                    placement,
                    timing,
                    &trivial_gates,
                    &mut inc,
                    &mut cache,
                );
            }
        }

        if let Some(reference) = &reference {
            let check = check_equivalence_random(reference, network, 1024, 0xC0FFEE);
            assert!(check.is_equivalent(), "optimization broke functional equivalence: {check:?}");
        }

        // Surviving inserted inverters occupy the overlay slots past the
        // caller's placement; hand their coordinates back so the returned
        // (grown) network stays timeable.
        let hosted_inverters: Vec<(GateId, Point)> = network
            .iter_live()
            .filter(|g| g.index() >= caller_slots)
            .map(|g| (g, placement.position(g)))
            .collect();
        let final_report = inc.report();
        OptimizationOutcome {
            kind: self.config.kind,
            initial_delay_ns,
            final_delay_ns: final_report.critical_delay_ns(),
            initial_area_um2,
            final_area_um2: library.network_area_um2(network),
            initial_hpwl_um,
            final_hpwl_um: placement.total_hpwl_um(network),
            swaps_applied,
            inverting_swaps_applied,
            gates_resized,
            hosted_inverters,
            nudge_fallbacks: rows.as_ref().map_or(0, RowModel::nudge_misses),
            cpu_seconds: start.elapsed().as_secs_f64(),
            statistics,
            sta: inc.stats(),
        }
    }

    /// The rewiring iteration: min-slack phase over critical supergates plus
    /// a relaxation phase over the rest, repeated until no improvement.
    /// When `sizing_domain` is given (`gsg+GS`), its gates are skipped here.
    /// When `rows` is given, accepted inverters are nudged into free row
    /// slots (and released again if the pass rolls back).
    /// Returns `(total swaps, inverting swaps)` applied.
    #[allow(clippy::too_many_arguments)]
    fn rewiring_loop(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &mut Placement,
        mut rows: Option<&mut RowModel>,
        timing: &TimingConfig,
        sizing_domain: Option<&HashSet<GateId>>,
        inc: &mut IncrementalSta,
        cache: &mut NetCache,
        extraction: &mut Extraction,
    ) -> (usize, usize) {
        let registry = rapids_obs::global();
        let pass_counter = registry.counter("optimizer.passes");
        let swap_counter = registry.counter("optimizer.swaps_applied");
        let es_counter = registry.counter("optimizer.es_swaps");
        let rollback_counter = registry.counter("optimizer.rollbacks");
        let rolled_back_swaps = registry.counter("optimizer.swaps_rolled_back");
        let mut total_swaps = 0usize;
        let mut total_inverting = 0usize;
        let mut best_delay = f64::INFINITY;
        let mut extraction_slots = network.gate_count();
        for _ in 0..self.config.max_passes {
            if self.cancel.is_cancelled() {
                break;
            }
            if inc.report().critical_delay_ns() + 1e-6 >= best_delay && total_swaps > 0 {
                break;
            }
            pass_counter.inc();
            let _pass_span = rapids_obs::span("optimizer.pass");
            best_delay = best_delay.min(inc.report().critical_delay_ns());
            let pass_start_delay = inc.report().critical_delay_ns();
            if network.topo_hint().is_none() {
                network.refresh_topo_hint();
            }
            // Inverting swaps grow the network and restructure supergates;
            // non-inverting swaps only exchange leaf drivers, which
            // `swap_candidates_in` re-reads, so the extraction is reusable.
            if network.gate_count() != extraction_slots {
                *extraction = extract_supergates(network);
                extraction_slots = network.gate_count();
            }

            let report = inc.report();
            let worst_slack = report.worst_slack_ns();

            // Min-slack phase: supergates touching critical gates, worst
            // first; then the relaxation phase over the remaining non-trivial
            // supergates, aiming at total-slack (wire-length) recovery.
            let mut ordered: Vec<&Supergate> = extraction
                .supergates()
                .iter()
                .filter(|sg| !sg.is_trivial())
                .filter(|sg| {
                    sizing_domain.is_none_or(|dom| !sg.members.iter().all(|m| dom.contains(m)))
                })
                .collect();
            let slack_of: Vec<f64> = ordered.iter().map(|sg| supergate_slack(report, sg)).collect();
            let mut index: Vec<usize> = (0..ordered.len()).collect();
            index.sort_by(|&a, &b| slack_of[a].total_cmp(&slack_of[b]));
            ordered = index.iter().map(|&i| ordered[i]).collect();
            let critical_flag: Vec<bool> = index
                .iter()
                .map(|&i| slack_of[i] <= worst_slack + self.config.critical_margin_ns)
                .collect();

            let critical: Vec<&Supergate> =
                ordered.iter().zip(&critical_flag).filter(|(_, &c)| c).map(|(sg, _)| *sg).collect();
            let relaxed: Vec<&Supergate> = ordered
                .iter()
                .zip(&critical_flag)
                .filter(|(_, &c)| !c)
                .map(|(sg, _)| *sg)
                .collect();

            let mut journal: Vec<AppliedSwap> = Vec::new();
            self.visit_supergates(
                network,
                library,
                placement,
                &mut rows,
                timing,
                report,
                cache,
                &critical,
                &mut journal,
            );
            self.visit_supergates(
                network,
                library,
                placement,
                &mut rows,
                timing,
                report,
                cache,
                &relaxed,
                &mut journal,
            );
            let pass_swaps = journal.len();
            if pass_swaps == 0 {
                break;
            }
            let pass_inverting =
                journal.iter().filter(|a| a.candidate().kind == SwapKind::Inverting).count();
            // The touched set covers every gate whose connectivity changed:
            // the two swapped pins' gates, and for inverting swaps the
            // inserted inverters (whose fan-ins — the exchanged drivers,
            // whose sink sets changed — the engine folds in itself).
            let mut touched: Vec<GateId> = Vec::with_capacity(journal.len() * 4);
            for applied in &journal {
                touched.push(applied.candidate().pin_a.gate);
                touched.push(applied.candidate().pin_b.gate);
                touched.extend_from_slice(applied.inserted_inverters());
            }
            touched.sort_unstable();
            touched.dedup();
            inc.update(network, library, placement, &touched);
            if inc.report().critical_delay_ns() > pass_start_delay + 1e-9 {
                // The local metric misjudged this batch; replay the undo
                // journal and stop.  Undoing an inverting swap pops its
                // inverters' slots, so the slot count (and the placement
                // overlay, truncated below) return to the pass-start state;
                // the row slots the undone inverters were nudged into are
                // freed again too.
                for applied in journal.iter().rev() {
                    let (da, db) = swap_drivers(network, applied.candidate());
                    undo_swap(network, applied).expect("undoing a journaled swap succeeds");
                    invalidate_swap_nets(cache, network, applied.candidate(), da, db);
                    if let Some(rows) = rows.as_deref_mut() {
                        for &inv in applied.inserted_inverters() {
                            rows.release(inv);
                        }
                    }
                }
                placement.truncate_slots(network.gate_count());
                inc.update(network, library, placement, &touched);
                rollback_counter.inc();
                rolled_back_swaps.add(pass_swaps as u64);
                break;
            }
            total_swaps += pass_swaps;
            total_inverting += pass_inverting;
            swap_counter.add(pass_swaps as u64);
            es_counter.add(pass_inverting as u64);
        }
        (total_swaps, total_inverting)
    }

    /// Scores every supergate in `list` (in order) and applies each winning
    /// swap.  With `threads > 1`, contiguous runs of region-disjoint
    /// supergates are scored concurrently on cloned networks and applied in
    /// the original order, reproducing the sequential decisions.  The row
    /// model rides only in the *apply* seam — scoring probes host at the
    /// co-located position, so workers never read shared occupancy and
    /// every thread count nudges identically.
    #[allow(clippy::too_many_arguments)]
    fn visit_supergates(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &mut Placement,
        rows: &mut Option<&mut RowModel>,
        timing: &TimingConfig,
        report: &TimingReport,
        cache: &mut NetCache,
        list: &[&Supergate],
        journal: &mut Vec<AppliedSwap>,
    ) {
        let include_inverting = self.config.include_inverting_swaps;
        rapids_sizing::parallel::visit_in_disjoint_batches(
            network,
            placement,
            cache,
            self.config.threads,
            list,
            |network, sg| supergate_region(network, sg),
            |network, placement, cache, sg| {
                score_best_swap(
                    network,
                    library,
                    placement,
                    timing,
                    report,
                    cache,
                    include_inverting,
                    sg,
                )
            },
            |network, placement, cache, _, candidate| {
                accept_swap(
                    network,
                    library,
                    placement,
                    rows.as_deref_mut(),
                    cache,
                    journal,
                    &candidate,
                )
            },
        );
    }

    /// Coudert-style sizing restricted to a set of gates (the trivially
    /// covered gates in `gsg+GS`).
    #[allow(clippy::too_many_arguments)]
    fn restricted_sizing(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        timing: &TimingConfig,
        domain: &HashSet<GateId>,
        inc: &mut IncrementalSta,
        cache: &mut NetCache,
    ) -> usize {
        let mut resized: HashSet<GateId> = HashSet::new();
        for _ in 0..self.config.sizer.max_passes {
            if self.cancel.is_cancelled() {
                break;
            }
            rapids_obs::metrics::counter("optimizer.sizing_passes").inc();
            let _pass_span = rapids_obs::span("optimizer.sizing_pass");
            let report = inc.report();
            let pass_start_delay = report.critical_delay_ns();
            let worst = report.worst_slack_ns();
            let mut gates: Vec<GateId> = domain
                .iter()
                .copied()
                .filter(|&g| network.is_live(g) && !network.gate(g).gtype.is_source())
                .collect();
            // Tie-break on the id: the list is collected from a `HashSet`,
            // whose iteration order would otherwise leak into equal-slack
            // runs and make reports irreproducible.
            gates.sort_by(|&a, &b| {
                report.slack(a).total_cmp(&report.slack(b)).then_with(|| a.cmp(&b))
            });
            let mut journal: Vec<(GateId, u8)> = Vec::new();
            for g in gates {
                let is_critical = report.slack(g) <= worst + self.config.critical_margin_ns;
                if !is_critical && !self.config.sizer.recover_area {
                    continue;
                }
                if let Some(best) = decide_best_drive_local(
                    network,
                    library,
                    placement,
                    timing,
                    report,
                    cache,
                    g,
                    !is_critical,
                    worst,
                ) {
                    journal.push((g, network.gate(g).size_class));
                    network.gate_mut(g).size_class = best;
                    let fanins: Vec<GateId> = network.fanins(g).to_vec();
                    for f in fanins {
                        cache.invalidate_loads(f);
                    }
                    resized.insert(g);
                }
            }
            if journal.is_empty() {
                break;
            }
            let touched: Vec<GateId> = journal.iter().map(|&(g, _)| g).collect();
            inc.update(network, library, placement, &touched);
            if inc.report().critical_delay_ns() > pass_start_delay + 1e-9 {
                for &(g, class) in journal.iter().rev() {
                    network.gate_mut(g).size_class = class;
                    let fanins: Vec<GateId> = network.fanins(g).to_vec();
                    for f in fanins {
                        cache.invalidate_loads(f);
                    }
                }
                inc.update(network, library, placement, &touched);
                rapids_obs::metrics::counter("optimizer.rollbacks").inc();
                break;
            }
        }
        rapids_obs::metrics::counter("sizer.gates_resized").add(resized.len() as u64);
        resized.len()
    }
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::new(OptimizerConfig::default())
    }
}

/// Worst slack over the member gates of a supergate.
fn supergate_slack(report: &TimingReport, supergate: &Supergate) -> f64 {
    supergate.members.iter().map(|&m| report.slack(m)).fold(f64::INFINITY, f64::min)
}

/// The gates a swap inside `supergate` can read or perturb: its members and
/// the current drivers of its leaves.  (Member fan-ins are exactly members
/// plus leaf drivers, by the supergate tree structure.)
fn supergate_region(network: &Network, supergate: &Supergate) -> Vec<GateId> {
    let mut region = supergate.members.clone();
    for leaf in &supergate.leaves {
        region.push(network.pin_driver(leaf.pin).expect("supergate leaf pins always exist"));
    }
    region.sort_unstable();
    region.dedup();
    region
}

/// The current drivers of a candidate's two pins.
fn swap_drivers(network: &Network, candidate: &SwapCandidate) -> (GateId, GateId) {
    (
        network.pin_driver(candidate.pin_a).expect("swap pin exists"),
        network.pin_driver(candidate.pin_b).expect("swap pin exists"),
    )
}

/// Drops the cache state of every net a swap changed: the two exchanged
/// drivers' nets (sink sets changed) and, for inverting swaps, the inserted
/// inverters' nets.
fn invalidate_swap_nets(
    cache: &mut NetCache,
    network: &Network,
    candidate: &SwapCandidate,
    driver_a: GateId,
    driver_b: GateId,
) {
    // Inverting swaps insert gates; make sure their slots exist.
    cache.ensure_slots(network.gate_count());
    cache.invalidate_topology(driver_a);
    cache.invalidate_topology(driver_b);
    if candidate.kind == SwapKind::Inverting {
        // The pins now hang off inverters whose slots may be new.
        for pin in [candidate.pin_a, candidate.pin_b] {
            if let Ok(d) = network.pin_driver(pin) {
                cache.invalidate_topology(d);
            }
        }
    }
}

/// Evaluates every swap candidate of one supergate with the neighborhood
/// metric and returns the best one if it improves on the current wiring.
/// The network, the placement and the cache's view of them are left exactly
/// as found: an inverting probe's inserted inverters are popped again on
/// undo and their overlay slots truncated, so the slot count round-trips.
#[allow(clippy::too_many_arguments)]
fn score_best_swap(
    network: &mut Network,
    library: &Library,
    placement: &mut Placement,
    timing: &TimingConfig,
    report: &TimingReport,
    cache: &mut NetCache,
    include_inverting: bool,
    supergate: &Supergate,
) -> Option<SwapCandidate> {
    let candidates = swap_candidates_in(network, supergate, include_inverting);
    if candidates.is_empty() {
        return None;
    }
    let baseline =
        swap_neighborhood_metric(network, library, placement, timing, report, cache, supergate);
    let mut best: Option<(SwapCandidate, SwapMetric)> = None;
    for candidate in candidates {
        let (da, db) = swap_drivers(network, &candidate);
        // A legal but order-violating candidate drops the network's
        // topological hint; since the undo below restores the exact edge
        // set (and slot count — undone inverters are popped), the snapshot
        // can be reinstated in O(1) and keeps the cycle precheck fast for
        // every later candidate.
        let hint = network.topo_hint_handle();
        let slots_before = placement.len();
        let Ok(applied) = apply_swap(network, &candidate) else {
            continue;
        };
        // Probes always co-locate (no row model): the nudge target depends
        // on shared occupancy, which worker clones must not read — accept
        // re-hosts the winner through the model on the main thread.
        host_inserted_inverters(network, library, placement, None, &applied);
        invalidate_swap_nets(cache, network, &candidate, da, db);
        let metric =
            swap_neighborhood_metric(network, library, placement, timing, report, cache, supergate);
        undo_swap(network, &applied).expect("undoing a just-applied swap succeeds");
        placement.truncate_slots(slots_before);
        invalidate_swap_nets(cache, network, &candidate, da, db);
        if let (Some(hint), None) = (hint, network.topo_hint()) {
            network.reinstate_topo_hint(hint);
        }
        if metric.improves_on(&baseline) && best.as_ref().is_none_or(|(_, m)| metric.improves_on(m))
        {
            best = Some((candidate, metric));
        }
    }
    best.map(|(candidate, _)| candidate)
}

/// Hosts the inverters an applied swap inserted.
///
/// Without a row model each lands on the overlay slot co-located with its
/// (current) driver, so the driver→inverter stub is (near) zero-length and
/// the inverter→sink segment inherits the original net geometry.  With a
/// row model (`rows`, accept path only) the inverter is *nudged* into the
/// nearest genuinely free row slot instead, keeping a legal placement
/// legal; when no slot is wide enough anywhere, the co-location fallback
/// fires and the model counts the miss
/// ([`OptimizationOutcome::nudge_fallbacks`]).
fn host_inserted_inverters(
    network: &Network,
    library: &Library,
    placement: &mut Placement,
    mut rows: Option<&mut RowModel>,
    applied: &AppliedSwap,
) {
    for &inv in applied.inserted_inverters() {
        let driver = network.fanins(inv)[0];
        debug_assert!(
            placement.covers(driver),
            "an inverter's driver is pre-existing or an already-hosted inverter"
        );
        let stacked = placement.position(driver);
        let hosted = rows
            .as_deref_mut()
            .and_then(|rows| {
                rows.nudge_occupy(inv, stacked, gate_width_sites(network, library, inv))
            })
            .unwrap_or(stacked);
        placement.host_at(inv, hosted);
    }
}

/// Applies a winning swap and keeps the journal, placement overlay, row
/// occupancy and cache coherent.
#[allow(clippy::too_many_arguments)]
fn accept_swap(
    network: &mut Network,
    library: &Library,
    placement: &mut Placement,
    rows: Option<&mut RowModel>,
    cache: &mut NetCache,
    journal: &mut Vec<AppliedSwap>,
    candidate: &SwapCandidate,
) {
    let (da, db) = swap_drivers(network, candidate);
    let applied = apply_swap(network, candidate).expect("re-applying the winning swap succeeds");
    host_inserted_inverters(network, library, placement, rows, &applied);
    // Invalidated *after* hosting, so the star/Elmore terms every later
    // candidate reads are recomputed against the inverter's real position.
    invalidate_swap_nets(cache, network, candidate, da, db);
    if network.topo_hint().is_none() {
        // The accepted swap contradicted the recorded order (inserting an
        // inverter always does); re-prove it so the remaining candidates
        // keep their O(1) cycle precheck.
        network.refresh_topo_hint();
    }
    journal.push(applied);
}

/// Two-level swap-evaluation metric, compared lexicographically: first the
/// minimum neighborhood slack (the quantity Coudert's min-slack phase
/// maximizes), then the total neighborhood slack (the relaxation objective,
/// which also captures pure wire-length recovery on non-critical nets).
#[derive(Debug, Clone, Copy, PartialEq)]
struct SwapMetric {
    min_slack_ns: f64,
    total_slack_ns: f64,
}

impl SwapMetric {
    fn improves_on(&self, other: &SwapMetric) -> bool {
        if self.min_slack_ns > other.min_slack_ns + 1e-9 {
            return true;
        }
        self.min_slack_ns > other.min_slack_ns - 1e-9
            && self.total_slack_ns > other.total_slack_ns + 1e-9
    }
}

/// Neighborhood metric of the current wiring of a supergate: the minimum
/// (and total), over the supergate's members and the external drivers of its
/// leaves, of `required − locally re-estimated arrival`.
///
/// The arrival estimates recompute the wire (star) and cell delays from the
/// *current* network connectivity (served from the cache), so a candidate
/// swap that shortens a critical branch or unloads a critical driver is
/// rewarded.  A leaf pin currently served through an inserted inverter (an
/// applied ES swap) contributes both the inverter and the inverter's own
/// driver, whose sink set the insertion changed; gates the frozen report
/// does not cover are estimated through [`frozen_input_side`] /
/// [`frozen_required`].
#[allow(clippy::too_many_arguments)]
fn swap_neighborhood_metric(
    network: &Network,
    library: &Library,
    placement: &Placement,
    timing: &TimingConfig,
    report: &TimingReport,
    cache: &mut NetCache,
    supergate: &Supergate,
) -> SwapMetric {
    let mut worst = f64::INFINITY;
    let mut total = 0.0f64;
    // External drivers: their load (and hence delay) changes with the swap.
    let mut drivers: Vec<GateId> = Vec::with_capacity(supergate.leaves.len());
    for leaf in &supergate.leaves {
        let d = network.pin_driver(leaf.pin).expect("supergate leaf pins always exist");
        drivers.push(d);
        if !report.covers(d) {
            // Freshly inserted inverter: its driver's net changed too.
            drivers.extend_from_slice(network.fanins(d));
        }
    }
    drivers.sort();
    drivers.dedup();
    for d in drivers {
        if network.gate(d).gtype.is_source() {
            continue;
        }
        let input_side = frozen_input_side(network, library, placement, timing, report, cache, d);
        let fresh = cache.gate_output_delay(network, library, placement, timing, d).worst();
        let required = frozen_required(network, library, placement, timing, report, cache, d);
        let slack = required - (input_side + fresh);
        worst = worst.min(slack);
        total += slack;
    }
    // Member gates: their input wire delays change with the swap.
    for &m in &supergate.members {
        let est = member_arrival_estimate(network, library, placement, timing, report, cache, m);
        let slack = report.required(m) - est;
        worst = worst.min(slack);
        total += slack;
    }
    SwapMetric { min_slack_ns: worst, total_slack_ns: total }
}

/// Local arrival estimate of a member gate using fresh wire/cell delays but
/// frozen upstream arrivals (extended past the frozen report for inserted
/// inverters via [`frozen_input_side`]).
#[allow(clippy::too_many_arguments)]
fn member_arrival_estimate(
    network: &Network,
    library: &Library,
    placement: &Placement,
    timing: &TimingConfig,
    report: &TimingReport,
    cache: &mut NetCache,
    gate: GateId,
) -> f64 {
    let own = cache.gate_output_delay(network, library, placement, timing, gate).worst();
    let mut worst_in = 0.0f64;
    let fanins: Vec<GateId> = network.fanins(gate).to_vec();
    for f in fanins {
        let wire = cache
            .net_delays(network, library, placement, timing, f)
            .delay_to_ns(gate)
            .unwrap_or(0.0);
        let driver_input_side =
            frozen_input_side(network, library, placement, timing, report, cache, f);
        let driver_delay = cache.gate_output_delay(network, library, placement, timing, f).worst();
        let arrival_f =
            if network.gate(f).gtype.is_source() { 0.0 } else { driver_input_side + driver_delay };
        worst_in = worst_in.max(arrival_f + wire);
    }
    worst_in + own
}

/// The frozen-report arrival at a gate's *inputs* (output arrival minus own
/// cell delay), extended to gates the report does not cover.
///
/// For covered gates this is exactly the quantity the pre-legalization
/// metric used.  An uncovered gate is an inverter inserted after the report
/// froze; its input-side arrival is re-derived from its fan-in drivers —
/// frozen input side plus fresh (cached) cell and wire delays — recursing
/// through chains of inserted inverters until a covered gate anchors the
/// estimate.  Terminates because every recursion step moves strictly
/// backwards through a DAG toward covered (pre-existing) gates.
#[allow(clippy::too_many_arguments)]
fn frozen_input_side(
    network: &Network,
    library: &Library,
    placement: &Placement,
    timing: &TimingConfig,
    report: &TimingReport,
    cache: &mut NetCache,
    gate: GateId,
) -> f64 {
    if report.covers(gate) {
        return report.arrival(gate).worst() - report.gate_delay(gate).worst();
    }
    let mut worst_in = 0.0f64;
    let fanins: Vec<GateId> = network.fanins(gate).to_vec();
    for f in fanins {
        let wire = cache
            .net_delays(network, library, placement, timing, f)
            .delay_to_ns(gate)
            .unwrap_or(0.0);
        let arrival_f = if network.gate(f).gtype.is_source() {
            0.0
        } else {
            frozen_input_side(network, library, placement, timing, report, cache, f)
                + cache.gate_output_delay(network, library, placement, timing, f).worst()
        };
        worst_in = worst_in.max(arrival_f + wire);
    }
    worst_in
}

/// The frozen-report required time at a gate's output, extended to gates the
/// report does not cover (inserted inverters) by propagating backwards from
/// their sinks: `required(sink) − sink cell delay − wire`.  Inserted
/// inverters never drive a primary output (they sit on in-pins), so the
/// propagation always terminates at covered sinks; a sink-less gate falls
/// back to the analysis horizon like the full analyzer's clamp.
#[allow(clippy::too_many_arguments)]
fn frozen_required(
    network: &Network,
    library: &Library,
    placement: &Placement,
    timing: &TimingConfig,
    report: &TimingReport,
    cache: &mut NetCache,
    gate: GateId,
) -> f64 {
    if report.covers(gate) {
        return report.required(gate);
    }
    let mut required = f64::INFINITY;
    let sinks: Vec<GateId> = network.fanouts(gate).to_vec();
    for s in sinks {
        let wire = cache
            .net_delays(network, library, placement, timing, gate)
            .delay_to_ns(s)
            .unwrap_or(0.0);
        let sink_delay = if report.covers(s) {
            report.gate_delay(s).worst()
        } else {
            cache.gate_output_delay(network, library, placement, timing, s).worst()
        };
        let sink_required = frozen_required(network, library, placement, timing, report, cache, s);
        required = required.min(sink_required - sink_delay - wire);
    }
    if required.is_finite() {
        required
    } else {
        report.required_time_ns()
    }
}

/// Tries every drive strength for one gate using the combined neighborhood
/// evaluation and returns the best class if it differs from the current one.
/// Mirrors the logic of the stand-alone sizer but operates on an arbitrary
/// gate subset; the network (and cache) are left exactly as found.
// Takes the full evaluation context by design: every argument is a
// distinct piece of the timing state a candidate must be scored against.
#[allow(clippy::too_many_arguments)]
fn decide_best_drive_local(
    network: &mut Network,
    library: &Library,
    placement: &Placement,
    timing: &TimingConfig,
    report: &TimingReport,
    cache: &mut NetCache,
    gate: GateId,
    prefer_small: bool,
    worst_slack_ns: f64,
) -> Option<u8> {
    let g = network.gate(gate);
    let drives = library.available_drives(g.gtype, g.fanin_count());
    if drives.len() <= 1 {
        return None;
    }
    let original = g.size_class;
    let fanins: Vec<GateId> = network.fanins(gate).to_vec();
    let baseline = neighborhood_eval(network, library, placement, timing, report, cache, gate);
    // Same do-no-harm floor as the stand-alone sizer's min-slack phase: a
    // candidate may load the drivers harder only while none of them falls
    // below the global worst slack (scoring the combined neighborhood
    // minimum instead deadlocks on uniformly critical paths — see
    // rapids_sizing::fanin_min_slack_ns).
    let baseline_slack = baseline.min_slack_ns();
    let driver_floor = baseline.fanin_min_slack_ns.min(worst_slack_ns);
    let mut best_class = original;
    let mut best_metric = f64::NEG_INFINITY;
    for drive in drives {
        network.gate_mut(gate).size_class = drive.size_class();
        for &f in &fanins {
            cache.invalidate_loads(f);
        }
        let eval = neighborhood_eval(network, library, placement, timing, report, cache, gate);
        let area = library
            .cell(network.gate(gate).gtype, network.gate(gate).fanin_count(), drive)
            .map(|c| c.area_um2)
            .unwrap_or(0.0);
        let metric = if prefer_small {
            if eval.min_slack_ns() + 1e-9 < baseline_slack.min(0.0) {
                f64::NEG_INFINITY
            } else {
                -area
            }
        } else if eval.fanin_min_slack_ns + 1e-9 < driver_floor {
            f64::NEG_INFINITY
        } else {
            eval.own_slack_ns
        };
        if metric > best_metric {
            best_metric = metric;
            best_class = drive.size_class();
        }
    }
    network.gate_mut(gate).size_class = original;
    for &f in &fanins {
        cache.invalidate_loads(f);
    }
    (best_class != original).then_some(best_class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_circuits::benchmark;
    use rapids_placement::{place, PlacerConfig};
    use rapids_sim::check_equivalence_random;

    fn setup(name: &str) -> (Network, Library, Placement, TimingConfig) {
        let network = benchmark(name).expect("known benchmark");
        let library = Library::standard_035um();
        let placement = place(&network, &library, &PlacerConfig::fast(), 7);
        (network, library, placement, TimingConfig::default())
    }

    #[test]
    fn rewiring_never_degrades_delay_and_preserves_function() {
        let (reference, library, placement, timing) = setup("c432");
        let mut network = reference.clone();
        let outcome = Optimizer::new(OptimizerConfig::fast(OptimizerKind::Rewiring)).optimize(
            &mut network,
            &library,
            &placement,
            &timing,
        );
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
        assert!(check_equivalence_random(&reference, &network, 512, 3).is_equivalent());
        // gsg never resizes and never adds gates (non-inverting swaps only).
        assert_eq!(outcome.gates_resized, 0);
        assert_eq!(network.live_gate_count(), reference.live_gate_count());
        assert!(outcome.statistics.coverage_percent() > 0.0);
    }

    #[test]
    fn sizing_kind_delegates_to_gate_sizer() {
        let (reference, library, placement, timing) = setup("c432");
        let mut network = reference.clone();
        let outcome = Optimizer::new(OptimizerConfig::fast(OptimizerKind::Sizing)).optimize(
            &mut network,
            &library,
            &placement,
            &timing,
        );
        assert_eq!(outcome.kind, OptimizerKind::Sizing);
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
        assert_eq!(outcome.swaps_applied, 0);
        assert!(check_equivalence_random(&reference, &network, 512, 3).is_equivalent());
    }

    #[test]
    fn combined_optimizer_improves_at_least_as_much_as_nothing() {
        let (reference, library, placement, timing) = setup("alu2");
        let mut network = reference.clone();
        let outcome = Optimizer::new(OptimizerConfig::fast(OptimizerKind::Combined)).optimize(
            &mut network,
            &library,
            &placement,
            &timing,
        );
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
        assert!(outcome.delay_improvement_percent() >= 0.0);
        assert!(check_equivalence_random(&reference, &network, 512, 9).is_equivalent());
        assert!(outcome.cpu_seconds > 0.0);
    }

    #[test]
    fn verification_mode_accepts_correct_optimization() {
        let (_, library, placement, timing) = setup("c432");
        let mut network = benchmark("c432").unwrap();
        let config = OptimizerConfig {
            verify_with_simulation: true,
            ..OptimizerConfig::fast(OptimizerKind::Rewiring)
        };
        let outcome = Optimizer::new(config).optimize(&mut network, &library, &placement, &timing);
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
    }

    #[test]
    fn inverting_swap_mode_hosts_inserted_inverters() {
        // Inverting candidates are scored and applied for real: the
        // optimizer hosts each inserted inverter on its internal placement
        // overlay, so the run must stay functionally equivalent, acyclic,
        // and grow the network by exactly one inverter pair per applied ES
        // swap (the caller's placement is untouched either way).
        let (reference, library, placement, timing) = setup("c432");
        let placement_len = placement.len();
        let mut network = reference.clone();
        let config = OptimizerConfig {
            include_inverting_swaps: true,
            ..OptimizerConfig::fast(OptimizerKind::Rewiring)
        };
        let outcome = Optimizer::new(config).optimize(&mut network, &library, &placement, &timing);
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
        assert!(check_equivalence_random(&reference, &network, 512, 5).is_equivalent());
        assert!(network.check_consistency().is_ok());
        assert!(outcome.inverting_swaps_applied <= outcome.swaps_applied);
        assert_eq!(
            network.live_gate_count(),
            reference.live_gate_count() + 2 * outcome.inverting_swaps_applied
        );
        assert_eq!(placement.len(), placement_len, "the caller's placement must stay frozen");
    }

    #[test]
    fn row_model_nudges_accepted_inverters_into_free_slots() {
        // With a legalized placement and a row model, every surviving
        // inverter must land in a genuinely free slot: the grown placement
        // stays overlap-free and the model's occupancy mirrors it.
        let (reference, library, placement, timing) = setup("c432");
        let mut placement = placement;
        rapids_legalize::legalize(&reference, &library, &mut placement);
        placement.assert_legal(&reference, &library);
        let rows = RowModel::build(&reference, &library, &placement);
        let mut network = reference.clone();
        let config = OptimizerConfig {
            include_inverting_swaps: true,
            ..OptimizerConfig::fast(OptimizerKind::Rewiring)
        };
        let outcome = Optimizer::new(config).optimize_with_rows(
            &mut network,
            &library,
            &placement,
            Some(&rows),
            &timing,
        );
        assert!(outcome.inverting_swaps_applied > 0, "c432 must accept ES swaps");
        assert_eq!(outcome.nudge_fallbacks, 0, "the die has plenty of free slots");
        assert!(check_equivalence_random(&reference, &network, 512, 5).is_equivalent());
        // Extend the (still untouched) caller placement with the hosted
        // coordinates: the grown result must be legal, and no inverter may
        // sit stacked on its driver.
        let mut grown = placement.clone();
        for &(inv, at) in &outcome.hosted_inverters {
            grown.host_at(inv, at);
            let driver = network.fanins(inv)[0];
            assert!(
                placement.position(driver).manhattan_distance_um(&at) > 0.0,
                "inverter {inv} is stacked on its driver"
            );
        }
        grown.assert_legal(&network, &library);
        // The caller's row model is as frozen as the caller's placement.
        assert_eq!(rows, RowModel::build(&reference, &library, &placement));
    }

    #[test]
    fn disabled_inverting_mode_never_grows_the_network() {
        let (reference, library, placement, timing) = setup("c432");
        let mut network = reference.clone();
        let outcome = Optimizer::new(OptimizerConfig::fast(OptimizerKind::Rewiring)).optimize(
            &mut network,
            &library,
            &placement,
            &timing,
        );
        assert_eq!(outcome.inverting_swaps_applied, 0);
        assert_eq!(network.live_gate_count(), reference.live_gate_count());
    }

    #[test]
    fn thread_count_does_not_change_optimizer_results() {
        let (reference, library, placement, timing) = setup("c432");
        let run = |threads: usize, kind: OptimizerKind| {
            let mut network = reference.clone();
            let config = OptimizerConfig { threads, ..OptimizerConfig::fast(kind) };
            let outcome =
                Optimizer::new(config).optimize(&mut network, &library, &placement, &timing);
            let wiring: Vec<Vec<GateId>> =
                network.iter_live().map(|g| network.fanins(g).to_vec()).collect();
            let classes: Vec<u8> =
                network.iter_live().map(|g| network.gate(g).size_class).collect();
            (outcome.final_delay_ns, outcome.swaps_applied, wiring, classes)
        };
        for kind in [OptimizerKind::Rewiring, OptimizerKind::Combined] {
            let sequential = run(1, kind);
            let threaded = run(8, kind);
            assert_eq!(sequential, threaded, "{kind} must be thread-count invariant");
        }
    }

    #[test]
    fn outcome_percentages() {
        let outcome = OptimizationOutcome {
            kind: OptimizerKind::Rewiring,
            initial_delay_ns: 10.0,
            final_delay_ns: 9.0,
            initial_area_um2: 100.0,
            final_area_um2: 100.0,
            initial_hpwl_um: 1000.0,
            final_hpwl_um: 950.0,
            swaps_applied: 3,
            inverting_swaps_applied: 1,
            gates_resized: 0,
            hosted_inverters: vec![(GateId(10), Point::new(1.0, 2.0))],
            nudge_fallbacks: 0,
            cpu_seconds: 0.1,
            statistics: SupergateStatistics {
                gate_count: 10,
                supergate_count: 5,
                nontrivial_count: 2,
                covered_gates: 5,
                largest_inputs: 4,
                redundancy_count: 0,
            },
            sta: IncrementalStats::default(),
        };
        assert!((outcome.delay_improvement_percent() - 10.0).abs() < 1e-9);
        assert_eq!(outcome.area_change_percent(), 0.0);
        assert!((outcome.hpwl_change_percent() + 5.0).abs() < 1e-9);
        assert_eq!(OptimizerKind::Combined.to_string(), "gsg+GS");
    }
}
