//! Post-placement timing optimization (§5 of the paper).
//!
//! Supergate rewiring is cast as a gate-sizing problem on the supergate
//! netlist: for every non-trivial supergate the set of symmetric pin
//! permutations plays the role of a set of alternative library
//! implementations, and a Coudert-style iteration — a **min-slack phase**
//! that visits critical supergates and takes the best swap, alternating with
//! a **relaxation phase** over the remaining supergates — drives the
//! optimization.  Three optimizers are provided, matching the paper's
//! evaluation:
//!
//! * [`OptimizerKind::Rewiring`] (`gsg`)   — supergate-based rewiring only;
//! * [`OptimizerKind::Sizing`]   (`GS`)    — classical gate sizing only;
//! * [`OptimizerKind::Combined`] (`gsg+GS`) — rewiring on gates covered by
//!   non-trivial supergates, sizing restricted to gates covered by trivial
//!   supergates — the minimum-perturbation combination the paper advocates.

use std::collections::HashSet;
use std::time::Instant;

use rapids_celllib::Library;
use rapids_netlist::{GateId, Network};
use rapids_placement::Placement;
use rapids_sim::check_equivalence_random;
use rapids_sizing::{
    estimated_arrival_ns, fanin_min_slack_ns, neighborhood_slack_ns, GateSizer, SizerConfig,
};
use rapids_timing::{gate_output_delay, net_delays, Sta, TimingConfig, TimingReport};

use crate::report::SupergateStatistics;
use crate::supergate::{extract_supergates, Supergate};
use crate::swap::{apply_swap, undo_swap, SwapCandidate};
use crate::symmetry::swap_candidates;

/// Which of the paper's three optimizers to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// `gsg`: supergate-based rewiring only.
    Rewiring,
    /// `GS`: gate sizing only.
    Sizing,
    /// `gsg+GS`: rewiring on non-trivial supergates, sizing on the rest.
    Combined,
}

impl std::fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizerKind::Rewiring => write!(f, "gsg"),
            OptimizerKind::Sizing => write!(f, "GS"),
            OptimizerKind::Combined => write!(f, "gsg+GS"),
        }
    }
}

/// Configuration of the post-placement optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerConfig {
    /// Which optimizer to run.
    pub kind: OptimizerKind,
    /// Maximum number of min-slack + relaxation passes.
    pub max_passes: usize,
    /// Gates within this margin of the worst slack count as critical, ns.
    pub critical_margin_ns: f64,
    /// Allow inverting (ES) swaps, which insert inverter pairs.
    pub include_inverting_swaps: bool,
    /// After every accepted batch of swaps, cross-check functional
    /// equivalence against the pre-optimization network with random
    /// simulation (a safety net; the structural theory guarantees it).
    pub verify_with_simulation: bool,
    /// Configuration of the embedded gate sizer (for `GS` and `gsg+GS`).
    pub sizer: SizerConfig,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            kind: OptimizerKind::Combined,
            max_passes: 4,
            critical_margin_ns: 0.2,
            include_inverting_swaps: false,
            verify_with_simulation: false,
            sizer: SizerConfig::default(),
        }
    }
}

impl OptimizerConfig {
    /// Convenience constructor for a specific optimizer kind.
    pub fn for_kind(kind: OptimizerKind) -> Self {
        OptimizerConfig { kind, ..Self::default() }
    }

    /// Reduced-effort configuration for tests and smoke benchmarks.
    pub fn fast(kind: OptimizerKind) -> Self {
        OptimizerConfig { kind, max_passes: 2, sizer: SizerConfig::fast(), ..Self::default() }
    }
}

/// Result of one optimization run (one cell of Table 1, essentially).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationOutcome {
    /// The optimizer that produced this outcome.
    pub kind: OptimizerKind,
    /// Critical-path delay before optimization, ns.
    pub initial_delay_ns: f64,
    /// Critical-path delay after optimization, ns.
    pub final_delay_ns: f64,
    /// Total cell area before optimization, µm².
    pub initial_area_um2: f64,
    /// Total cell area after optimization, µm².
    pub final_area_um2: f64,
    /// Total half-perimeter wire length before optimization, µm.
    pub initial_hpwl_um: f64,
    /// Total half-perimeter wire length after optimization, µm.
    pub final_hpwl_um: f64,
    /// Number of pin swaps applied.
    pub swaps_applied: usize,
    /// Number of gates whose drive strength changed.
    pub gates_resized: usize,
    /// Wall-clock run time, seconds.
    pub cpu_seconds: f64,
    /// Supergate statistics of the (pre-optimization) netlist.
    pub statistics: SupergateStatistics,
}

impl OptimizationOutcome {
    /// Delay improvement as a percentage of the initial delay.
    pub fn delay_improvement_percent(&self) -> f64 {
        if self.initial_delay_ns <= 0.0 {
            return 0.0;
        }
        100.0 * (self.initial_delay_ns - self.final_delay_ns) / self.initial_delay_ns
    }

    /// Area change as a percentage of the initial area (negative = smaller).
    pub fn area_change_percent(&self) -> f64 {
        if self.initial_area_um2 <= 0.0 {
            return 0.0;
        }
        100.0 * (self.final_area_um2 - self.initial_area_um2) / self.initial_area_um2
    }

    /// Wire-length change as a percentage of the initial HPWL.
    pub fn hpwl_change_percent(&self) -> f64 {
        if self.initial_hpwl_um <= 0.0 {
            return 0.0;
        }
        100.0 * (self.final_hpwl_um - self.initial_hpwl_um) / self.initial_hpwl_um
    }
}

/// The post-placement optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    config: OptimizerConfig,
}

impl Optimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: OptimizerConfig) -> Self {
        Optimizer { config }
    }

    /// Runs the configured optimizer on `network` in place.  The placement is
    /// never modified; only pin connections, drive strengths and (for
    /// inverting swaps) inverters change.
    pub fn optimize(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        timing: &TimingConfig,
    ) -> OptimizationOutcome {
        let start = Instant::now();
        let reference =
            if self.config.verify_with_simulation { Some(network.clone()) } else { None };
        let initial_report = Sta::analyze(network, library, placement, timing);
        let initial_delay_ns = initial_report.critical_delay_ns();
        let initial_area_um2 = library.network_area_um2(network);
        let initial_hpwl_um = placement.total_hpwl_um(network);
        let extraction = extract_supergates(network);
        let statistics = SupergateStatistics::compute(network, &extraction);

        let mut swaps_applied = 0usize;
        let mut gates_resized = 0usize;
        match self.config.kind {
            OptimizerKind::Sizing => {
                let outcome = GateSizer::new(self.config.sizer.clone())
                    .optimize(network, library, placement, timing);
                gates_resized = outcome.resized_gates;
            }
            OptimizerKind::Rewiring => {
                swaps_applied = self.rewiring_loop(network, library, placement, timing, None);
            }
            OptimizerKind::Combined => {
                // Gates covered by trivial supergates are the sizing domain.
                let trivial_gates: HashSet<GateId> = extraction
                    .supergates()
                    .iter()
                    .filter(|sg| sg.is_trivial())
                    .flat_map(|sg| sg.members.iter().copied())
                    .collect();
                swaps_applied =
                    self.rewiring_loop(network, library, placement, timing, Some(&trivial_gates));
                gates_resized =
                    self.restricted_sizing(network, library, placement, timing, &trivial_gates);
            }
        }

        if let Some(reference) = &reference {
            let check = check_equivalence_random(reference, network, 1024, 0xC0FFEE);
            assert!(check.is_equivalent(), "optimization broke functional equivalence: {check:?}");
        }

        let final_report = Sta::analyze(network, library, placement, timing);
        OptimizationOutcome {
            kind: self.config.kind,
            initial_delay_ns,
            final_delay_ns: final_report.critical_delay_ns(),
            initial_area_um2,
            final_area_um2: library.network_area_um2(network),
            initial_hpwl_um,
            final_hpwl_um: placement.total_hpwl_um(network),
            swaps_applied,
            gates_resized,
            cpu_seconds: start.elapsed().as_secs_f64(),
            statistics,
        }
    }

    /// The rewiring iteration: min-slack phase over critical supergates plus
    /// a relaxation phase over the rest, repeated until no improvement.
    /// When `sizing_domain` is given (`gsg+GS`), its gates are skipped here.
    fn rewiring_loop(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        timing: &TimingConfig,
        sizing_domain: Option<&HashSet<GateId>>,
    ) -> usize {
        let mut total_swaps = 0usize;
        let mut best_delay = f64::INFINITY;
        for _ in 0..self.config.max_passes {
            let report = Sta::analyze(network, library, placement, timing);
            if report.critical_delay_ns() + 1e-6 >= best_delay && total_swaps > 0 {
                break;
            }
            best_delay = best_delay.min(report.critical_delay_ns());
            // Snapshot so a pass whose locally-scored swaps turn out to hurt
            // the global critical path can be rolled back wholesale.
            let pass_start_delay = report.critical_delay_ns();
            let snapshot = network.clone();
            let extraction = extract_supergates(network);
            let worst_slack = report.worst_slack_ns();

            // Min-slack phase: supergates touching critical gates, worst first.
            let mut ordered: Vec<&Supergate> = extraction
                .supergates()
                .iter()
                .filter(|sg| !sg.is_trivial())
                .filter(|sg| {
                    sizing_domain.is_none_or(|dom| !sg.members.iter().all(|m| dom.contains(m)))
                })
                .collect();
            ordered.sort_by(|a, b| {
                supergate_slack(&report, a)
                    .partial_cmp(&supergate_slack(&report, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut pass_swaps = 0usize;
            for sg in &ordered {
                let critical =
                    supergate_slack(&report, sg) <= worst_slack + self.config.critical_margin_ns;
                if !critical {
                    continue;
                }
                if self.best_swap_for_supergate(network, library, placement, timing, &report, sg) {
                    pass_swaps += 1;
                }
            }
            // Relaxation phase: the remaining non-trivial supergates, aiming
            // at total-slack (wire-length) recovery to escape local minima.
            for sg in &ordered {
                let critical =
                    supergate_slack(&report, sg) <= worst_slack + self.config.critical_margin_ns;
                if critical {
                    continue;
                }
                if self.best_swap_for_supergate(network, library, placement, timing, &report, sg) {
                    pass_swaps += 1;
                }
            }
            if pass_swaps == 0 {
                break;
            }
            let after = Sta::analyze(network, library, placement, timing).critical_delay_ns();
            if after > pass_start_delay + 1e-9 {
                // The local metric misjudged this batch; restore and stop.
                *network = snapshot;
                break;
            }
            total_swaps += pass_swaps;
        }
        total_swaps
    }

    /// Evaluates every swap candidate of one supergate with the neighborhood
    /// metric and keeps the best one if it improves on the current wiring.
    /// Returns `true` if a swap was kept.
    fn best_swap_for_supergate(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        timing: &TimingConfig,
        report: &TimingReport,
        supergate: &Supergate,
    ) -> bool {
        let candidates = swap_candidates(supergate, self.config.include_inverting_swaps);
        if candidates.is_empty() {
            return false;
        }
        let baseline =
            swap_neighborhood_metric(network, library, placement, timing, report, supergate);
        let mut best: Option<(SwapCandidate, SwapMetric)> = None;
        for candidate in candidates {
            let Ok(applied) = apply_swap(network, &candidate) else {
                continue;
            };
            let metric =
                swap_neighborhood_metric(network, library, placement, timing, report, supergate);
            undo_swap(network, &applied).expect("undoing a just-applied swap succeeds");
            if metric.improves_on(&baseline)
                && best.as_ref().is_none_or(|(_, m)| metric.improves_on(m))
            {
                best = Some((candidate, metric));
            }
        }
        if let Some((candidate, _)) = best {
            apply_swap(network, &candidate).expect("re-applying the winning swap succeeds");
            true
        } else {
            false
        }
    }

    /// Coudert-style sizing restricted to a set of gates (the trivially
    /// covered gates in `gsg+GS`).
    fn restricted_sizing(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        timing: &TimingConfig,
        domain: &HashSet<GateId>,
    ) -> usize {
        let mut resized: HashSet<GateId> = HashSet::new();
        for _ in 0..self.config.sizer.max_passes {
            let report = Sta::analyze(network, library, placement, timing);
            let pass_start_delay = report.critical_delay_ns();
            let snapshot: Vec<(GateId, u8)> = domain
                .iter()
                .filter(|&&g| network.is_live(g))
                .map(|&g| (g, network.gate(g).size_class))
                .collect();
            let worst = report.worst_slack_ns();
            let mut changed = 0usize;
            let mut gates: Vec<GateId> = domain
                .iter()
                .copied()
                .filter(|&g| network.is_live(g) && !network.gate(g).gtype.is_source())
                .collect();
            gates.sort_by(|&a, &b| {
                report.slack(a).partial_cmp(&report.slack(b)).unwrap_or(std::cmp::Ordering::Equal)
            });
            for g in gates {
                let is_critical = report.slack(g) <= worst + self.config.critical_margin_ns;
                if !is_critical && !self.config.sizer.recover_area {
                    continue;
                }
                if choose_best_drive_local(
                    network,
                    library,
                    placement,
                    timing,
                    &report,
                    g,
                    !is_critical,
                ) {
                    resized.insert(g);
                    changed += 1;
                }
            }
            if changed == 0 {
                break;
            }
            let after = Sta::analyze(network, library, placement, timing).critical_delay_ns();
            if after > pass_start_delay + 1e-9 {
                for (g, class) in snapshot {
                    network.gate_mut(g).size_class = class;
                }
                break;
            }
        }
        resized.len()
    }
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::new(OptimizerConfig::default())
    }
}

/// Worst slack over the member gates of a supergate.
fn supergate_slack(report: &TimingReport, supergate: &Supergate) -> f64 {
    supergate.members.iter().map(|&m| report.slack(m)).fold(f64::INFINITY, f64::min)
}

/// Two-level swap-evaluation metric, compared lexicographically: first the
/// minimum neighborhood slack (the quantity Coudert's min-slack phase
/// maximizes), then the total neighborhood slack (the relaxation objective,
/// which also captures pure wire-length recovery on non-critical nets).
#[derive(Debug, Clone, Copy, PartialEq)]
struct SwapMetric {
    min_slack_ns: f64,
    total_slack_ns: f64,
}

impl SwapMetric {
    fn improves_on(&self, other: &SwapMetric) -> bool {
        if self.min_slack_ns > other.min_slack_ns + 1e-9 {
            return true;
        }
        self.min_slack_ns > other.min_slack_ns - 1e-9
            && self.total_slack_ns > other.total_slack_ns + 1e-9
    }
}

/// Neighborhood metric of the current wiring of a supergate: the minimum
/// (and total), over the supergate's members and the external drivers of its
/// leaves, of `required − locally re-estimated arrival`.
///
/// The arrival estimates recompute the wire (star) and cell delays from the
/// *current* network connectivity, so a candidate swap that shortens a
/// critical branch or unloads a critical driver is rewarded.
fn swap_neighborhood_metric(
    network: &Network,
    library: &Library,
    placement: &Placement,
    timing: &TimingConfig,
    report: &TimingReport,
    supergate: &Supergate,
) -> SwapMetric {
    let mut worst = f64::INFINITY;
    let mut total = 0.0f64;
    // External drivers: their load (and hence delay) changes with the swap.
    let mut drivers: Vec<GateId> = supergate
        .leaves
        .iter()
        .map(|l| network.pin_driver(l.pin).expect("supergate leaf pins always exist"))
        .collect();
    drivers.sort();
    drivers.dedup();
    for d in drivers {
        if network.gate(d).gtype.is_source() {
            continue;
        }
        let input_side = report.arrival(d).worst() - report.gate_delay(d).worst();
        let fresh = gate_output_delay(network, library, placement, timing, d).worst();
        let slack = report.required(d) - (input_side + fresh);
        worst = worst.min(slack);
        total += slack;
    }
    // Member gates: their input wire delays change with the swap.
    for &m in &supergate.members {
        let est = member_arrival_estimate(network, library, placement, timing, report, m);
        let slack = report.required(m) - est;
        worst = worst.min(slack);
        total += slack;
    }
    SwapMetric { min_slack_ns: worst, total_slack_ns: total }
}

/// Local arrival estimate of a member gate using fresh wire/cell delays but
/// frozen upstream arrivals.
fn member_arrival_estimate(
    network: &Network,
    library: &Library,
    placement: &Placement,
    timing: &TimingConfig,
    report: &TimingReport,
    gate: GateId,
) -> f64 {
    let own = gate_output_delay(network, library, placement, timing, gate).worst();
    let mut worst_in = 0.0f64;
    for &f in network.fanins(gate) {
        let star = rapids_placement::net_star(network, placement, f);
        let wires = net_delays(network, library, &star, timing);
        let wire = wires.delay_to_ns(gate).unwrap_or(0.0);
        let driver_input_side = report.arrival(f).worst() - report.gate_delay(f).worst();
        let driver_delay = gate_output_delay(network, library, placement, timing, f).worst();
        let arrival_f =
            if network.gate(f).gtype.is_source() { 0.0 } else { driver_input_side + driver_delay };
        worst_in = worst_in.max(arrival_f + wire);
    }
    worst_in + own
}

/// Tries every drive strength for one gate using the published neighborhood
/// slack helper; keeps the best.  Mirrors the logic of the stand-alone sizer
/// but operates on an arbitrary gate subset.
fn choose_best_drive_local(
    network: &mut Network,
    library: &Library,
    placement: &Placement,
    timing: &TimingConfig,
    report: &TimingReport,
    gate: GateId,
    prefer_small: bool,
) -> bool {
    let g = network.gate(gate);
    let drives = library.available_drives(g.gtype, g.fanin_count());
    if drives.len() <= 1 {
        return false;
    }
    let original = g.size_class;
    let baseline = neighborhood_slack_ns(network, library, placement, timing, report, gate);
    // Same do-no-harm floor as the stand-alone sizer's min-slack phase: a
    // candidate may load the drivers harder only while none of them falls
    // below the global worst slack (scoring the combined neighborhood
    // minimum instead deadlocks on uniformly critical paths — see
    // rapids_sizing::fanin_min_slack_ns).
    let driver_floor = fanin_min_slack_ns(network, library, placement, timing, report, gate)
        .min(report.worst_slack_ns());
    let mut best_class = original;
    let mut best_metric = f64::NEG_INFINITY;
    for drive in drives {
        network.gate_mut(gate).size_class = drive.size_class();
        let slack = neighborhood_slack_ns(network, library, placement, timing, report, gate);
        let area = library
            .cell(network.gate(gate).gtype, network.gate(gate).fanin_count(), drive)
            .map(|c| c.area_um2)
            .unwrap_or(0.0);
        let metric = if prefer_small {
            if slack + 1e-9 < baseline.min(0.0) {
                f64::NEG_INFINITY
            } else {
                -area
            }
        } else {
            let drivers = fanin_min_slack_ns(network, library, placement, timing, report, gate);
            if drivers + 1e-9 < driver_floor {
                f64::NEG_INFINITY
            } else {
                report.required(gate)
                    - estimated_arrival_ns(network, library, placement, timing, report, gate)
            }
        };
        if metric > best_metric {
            best_metric = metric;
            best_class = drive.size_class();
        }
    }
    network.gate_mut(gate).size_class = best_class;
    best_class != original
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_circuits::benchmark;
    use rapids_placement::{place, PlacerConfig};
    use rapids_sim::check_equivalence_random;

    fn setup(name: &str) -> (Network, Library, Placement, TimingConfig) {
        let network = benchmark(name).expect("known benchmark");
        let library = Library::standard_035um();
        let placement = place(&network, &library, &PlacerConfig::fast(), 7);
        (network, library, placement, TimingConfig::default())
    }

    #[test]
    fn rewiring_never_degrades_delay_and_preserves_function() {
        let (reference, library, placement, timing) = setup("c432");
        let mut network = reference.clone();
        let outcome = Optimizer::new(OptimizerConfig::fast(OptimizerKind::Rewiring)).optimize(
            &mut network,
            &library,
            &placement,
            &timing,
        );
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
        assert!(check_equivalence_random(&reference, &network, 512, 3).is_equivalent());
        // gsg never resizes and never adds gates (non-inverting swaps only).
        assert_eq!(outcome.gates_resized, 0);
        assert_eq!(network.live_gate_count(), reference.live_gate_count());
        assert!(outcome.statistics.coverage_percent() > 0.0);
    }

    #[test]
    fn sizing_kind_delegates_to_gate_sizer() {
        let (reference, library, placement, timing) = setup("c432");
        let mut network = reference.clone();
        let outcome = Optimizer::new(OptimizerConfig::fast(OptimizerKind::Sizing)).optimize(
            &mut network,
            &library,
            &placement,
            &timing,
        );
        assert_eq!(outcome.kind, OptimizerKind::Sizing);
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
        assert_eq!(outcome.swaps_applied, 0);
        assert!(check_equivalence_random(&reference, &network, 512, 3).is_equivalent());
    }

    #[test]
    fn combined_optimizer_improves_at_least_as_much_as_nothing() {
        let (reference, library, placement, timing) = setup("alu2");
        let mut network = reference.clone();
        let outcome = Optimizer::new(OptimizerConfig::fast(OptimizerKind::Combined)).optimize(
            &mut network,
            &library,
            &placement,
            &timing,
        );
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
        assert!(outcome.delay_improvement_percent() >= 0.0);
        assert!(check_equivalence_random(&reference, &network, 512, 9).is_equivalent());
        assert!(outcome.cpu_seconds > 0.0);
    }

    #[test]
    fn verification_mode_accepts_correct_optimization() {
        let (_, library, placement, timing) = setup("c432");
        let mut network = benchmark("c432").unwrap();
        let config = OptimizerConfig {
            verify_with_simulation: true,
            ..OptimizerConfig::fast(OptimizerKind::Rewiring)
        };
        let outcome = Optimizer::new(config).optimize(&mut network, &library, &placement, &timing);
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
    }

    #[test]
    fn outcome_percentages() {
        let outcome = OptimizationOutcome {
            kind: OptimizerKind::Rewiring,
            initial_delay_ns: 10.0,
            final_delay_ns: 9.0,
            initial_area_um2: 100.0,
            final_area_um2: 100.0,
            initial_hpwl_um: 1000.0,
            final_hpwl_um: 950.0,
            swaps_applied: 3,
            gates_resized: 0,
            cpu_seconds: 0.1,
            statistics: SupergateStatistics {
                gate_count: 10,
                supergate_count: 5,
                nontrivial_count: 2,
                covered_gates: 5,
                largest_inputs: 4,
                redundancy_count: 0,
            },
        };
        assert!((outcome.delay_improvement_percent() - 10.0).abs() < 1e-9);
        assert_eq!(outcome.area_change_percent(), 0.0);
        assert!((outcome.hpwl_change_percent() + 5.0).abs() < 1e-9);
        assert_eq!(OptimizerKind::Combined.to_string(), "gsg+GS");
    }
}
