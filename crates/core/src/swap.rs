//! Applying and undoing rewiring moves (§4.1).
//!
//! A swap exchanges the drivers of two symmetric in-pins.  Non-inverting
//! swaps leave the placement completely untouched; inverting swaps insert an
//! inverter on each of the two pins (the only placement perturbation the
//! `gsg` optimizer can make, as the paper notes).

use rapids_netlist::{GateId, NetlistError, Network, PinRef};

/// Whether a swap needs inverters (ES) or not (NES).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwapKind {
    /// Plain driver exchange.
    NonInverting,
    /// Driver exchange plus an inverter on each pin.
    Inverting,
}

/// A candidate rewiring move between two pins of the same supergate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapCandidate {
    /// Root of the supergate that justifies the swap.
    pub supergate_root: GateId,
    /// First pin.
    pub pin_a: PinRef,
    /// Second pin.
    pub pin_b: PinRef,
    /// Swap flavour.
    pub kind: SwapKind,
}

/// Record of an applied swap, sufficient to undo it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedSwap {
    candidate: SwapCandidate,
    inverters: Vec<GateId>,
}

impl AppliedSwap {
    /// The candidate that was applied.
    pub fn candidate(&self) -> &SwapCandidate {
        &self.candidate
    }

    /// Inverters inserted by an inverting swap (empty for non-inverting).
    pub fn inserted_inverters(&self) -> &[GateId] {
        &self.inverters
    }
}

/// Applies a swap candidate to the network.
///
/// # Errors
///
/// Propagates structural errors (unknown pins, cycles) from the netlist
/// layer; a candidate produced from a fresh extraction of the same network
/// never fails.
pub fn apply_swap(
    network: &mut Network,
    candidate: &SwapCandidate,
) -> Result<AppliedSwap, NetlistError> {
    network.swap_pin_drivers(candidate.pin_a, candidate.pin_b)?;
    let mut inverters = Vec::new();
    if candidate.kind == SwapKind::Inverting {
        let inv_a =
            network.insert_inverter(candidate.pin_a, format!("swapinv_{}", candidate.pin_a))?;
        let inv_b =
            network.insert_inverter(candidate.pin_b, format!("swapinv_{}", candidate.pin_b))?;
        inverters.push(inv_a);
        inverters.push(inv_b);
    }
    Ok(AppliedSwap { candidate: *candidate, inverters })
}

/// Undoes a previously applied swap, restoring the original connections and
/// removing any inserted inverters.  When the inverters occupy the trailing
/// gate slots — always the case when the undo immediately follows the apply,
/// or when a journal is replayed in reverse — their slots are popped too, so
/// the network's slot count (and every id-indexed side array keyed on it)
/// round-trips exactly through an apply/undo pair.
///
/// # Errors
///
/// Propagates structural errors; undoing immediately after a successful
/// apply never fails.
pub fn undo_swap(network: &mut Network, applied: &AppliedSwap) -> Result<(), NetlistError> {
    // Every edge this function rewires restores a journaled, previously
    // acyclic configuration, so the trusted `restore_pin_driver` applies —
    // no per-edge reachability DFS, which matters because the ES scorer
    // undoes every probe it makes (and `insert_inverter` dropped the
    // topological hint, so the checked path would fall back to full walks).
    if applied.candidate.kind == SwapKind::Inverting {
        // Remove the inverters by reconnecting the pins to the inverter
        // inputs, then sweeping the dangling inverters.
        for (&pin, &inv) in
            [applied.candidate.pin_a, applied.candidate.pin_b].iter().zip(&applied.inverters)
        {
            let source = network.fanins(inv)[0];
            network.restore_pin_driver(pin, source)?;
            network.remove_if_dangling(inv);
        }
    }
    let da = network.pin_driver(applied.candidate.pin_a)?;
    let db = network.pin_driver(applied.candidate.pin_b)?;
    if da != db {
        network.restore_pin_driver(applied.candidate.pin_a, db)?;
        network.restore_pin_driver(applied.candidate.pin_b, da)?;
    }
    // Retire the tomb-stoned inverter slots while they sit at the tail, so
    // probe sequences do not grow the slot count monotonically.
    for &inv in applied.inverters.iter().rev() {
        if inv.index() + 1 == network.gate_count() && !network.pop_trailing_tombstone() {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supergate::extract_supergates;
    use crate::symmetry::swap_candidates;
    use rapids_netlist::{GateType, NetworkBuilder};
    use rapids_sim::check_equivalence_exhaustive;

    fn and_or_network() -> Network {
        let mut b = NetworkBuilder::new("swapnet");
        b.inputs(["a", "b", "c", "d"]);
        b.gate("n1", GateType::Nand, &["a", "b"]);
        b.gate("n2", GateType::Inv, &["c"]);
        b.gate("f", GateType::Nor, &["n1", "n2"]);
        b.gate("g", GateType::And, &["d", "f"]);
        b.output("g");
        b.finish().unwrap()
    }

    #[test]
    fn non_inverting_swaps_preserve_function() {
        let reference = and_or_network();
        let ex = extract_supergates(&reference);
        for sg in ex.supergates() {
            for candidate in swap_candidates(sg, false) {
                let mut n = reference.clone();
                let applied = apply_swap(&mut n, &candidate).unwrap();
                assert!(
                    check_equivalence_exhaustive(&reference, &n).is_equivalent(),
                    "swap {candidate:?} broke the function"
                );
                undo_swap(&mut n, &applied).unwrap();
                assert!(check_equivalence_exhaustive(&reference, &n).is_equivalent());
                assert!(n.check_consistency().is_ok());
            }
        }
    }

    #[test]
    fn inverting_swaps_preserve_function() {
        // f = AND(a, INV(b)): inverting swap of the a-pin and b-pin.
        let mut b = NetworkBuilder::new("es");
        b.inputs(["a", "b"]);
        b.gate("nb", GateType::Inv, &["b"]);
        b.gate("f", GateType::And, &["a", "nb"]);
        b.output("f");
        let reference = b.finish().unwrap();
        let ex = extract_supergates(&reference);
        let f = reference.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        let candidates = swap_candidates(sg, true);
        assert_eq!(candidates.len(), 1);
        let mut n = reference.clone();
        let applied = apply_swap(&mut n, &candidates[0]).unwrap();
        assert_eq!(applied.inserted_inverters().len(), 2);
        assert!(check_equivalence_exhaustive(&reference, &n).is_equivalent());
        undo_swap(&mut n, &applied).unwrap();
        assert!(check_equivalence_exhaustive(&reference, &n).is_equivalent());
        assert_eq!(n.live_gate_count(), reference.live_gate_count());
    }

    #[test]
    fn swap_changes_wiring_but_not_gate_count() {
        let reference = and_or_network();
        let ex = extract_supergates(&reference);
        // `f` is fanout-free and absorbed into the supergate rooted at `g`.
        let g = reference.find_by_name("g").unwrap();
        let sg = ex.supergate_of_root(g).unwrap();
        let candidates = swap_candidates(sg, false);
        assert!(!candidates.is_empty());
        let mut n = reference.clone();
        let c = candidates[0];
        apply_swap(&mut n, &c).unwrap();
        assert_eq!(n.live_gate_count(), reference.live_gate_count());
        // The two pins now see exchanged drivers.
        assert_eq!(n.pin_driver(c.pin_a).unwrap(), reference.pin_driver(c.pin_b).unwrap());
        assert_eq!(n.pin_driver(c.pin_b).unwrap(), reference.pin_driver(c.pin_a).unwrap());
    }
}
