//! Cross-supergate swapping (Theorem 2, Fig. 3).
//!
//! Let SG1 and SG2 be AND/OR-family supergates with the same number of input
//! pins whose outputs are symmetric (e.g. they drive two swappable pins of a
//! common parent supergate).  Their whole fan-in *sets* can then be exchanged
//! without moving either supergate's cells:
//!
//! * if the two supergates compute the same base function, the fan-in sets
//!   are exchanged directly;
//! * if they compute dual functions (one AND-like, one OR-like), each
//!   supergate is first DeMorgan-transformed (Definition 4: inverters added
//!   to all of its input pins and to its output — the internal gates are
//!   untouched, so the transformed structure computes the *dual* function of
//!   its inputs), after which the hardware of SG1 computes SG2's original
//!   function of the transplanted fan-ins and vice versa.
//!
//! Because the parent pins receiving the two outputs are symmetric, having
//! the two functions appear on exchanged parent pins preserves the overall
//! network function.  The tests verify this with exhaustive equivalence
//! checking on the paper's Fig. 3 configuration.

use rapids_netlist::{BaseFunction, GateId, GateType, NetlistError, Network, PinRef};

use crate::supergate::Supergate;

/// Error conditions specific to cross-supergate swapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrossSwapError {
    /// The two supergates have different numbers of input pins.
    FaninCountMismatch {
        /// Inputs of the first supergate.
        first: usize,
        /// Inputs of the second supergate.
        second: usize,
    },
    /// One of the supergates is not an AND/OR-family supergate.
    UnsupportedKind,
    /// The supergates share gates (they must be disjoint).
    Overlapping,
    /// An underlying netlist edit failed.
    Netlist(NetlistError),
}

impl std::fmt::Display for CrossSwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrossSwapError::FaninCountMismatch { first, second } => {
                write!(f, "fanin counts differ: {first} vs {second}")
            }
            CrossSwapError::UnsupportedKind => {
                write!(f, "cross swapping requires AND/OR supergates")
            }
            CrossSwapError::Overlapping => write!(f, "supergates overlap"),
            CrossSwapError::Netlist(e) => write!(f, "netlist edit failed: {e}"),
        }
    }
}

impl std::error::Error for CrossSwapError {}

impl From<NetlistError> for CrossSwapError {
    fn from(value: NetlistError) -> Self {
        CrossSwapError::Netlist(value)
    }
}

/// Record of an applied cross-supergate swap (for reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossSwap {
    /// Root of the first supergate.
    pub root_a: GateId,
    /// Root of the second supergate.
    pub root_b: GateId,
    /// Whether the DeMorgan transform was applied (dual-function case).
    pub demorganized: bool,
    /// Inverters inserted by the DeMorgan transforms.
    pub inserted_inverters: usize,
}

/// Applies the DeMorgan transform of Definition 4 to a supergate: an
/// inverter is inserted on every input pin and after the output.  The
/// internal gates are untouched, so the transformed structure computes the
/// **dual** function of its (pre-inverter) inputs: `DeMorgan(AND)(x) =
/// ¬AND(¬x) = OR(x)` and vice versa.
///
/// Returns the ids of the inserted inverters (leaf inverters first, output
/// inverter last).
///
/// # Errors
///
/// Returns [`CrossSwapError::UnsupportedKind`] if the supergate contains an
/// XOR-family member, and propagates netlist errors otherwise.
pub fn demorgan_transform(
    network: &mut Network,
    supergate: &Supergate,
) -> Result<Vec<GateId>, CrossSwapError> {
    for &member in &supergate.members {
        if network.gate(member).gtype.is_xor_family() {
            return Err(CrossSwapError::UnsupportedKind);
        }
    }
    let mut inverters = Vec::new();
    // Invert every input pin.
    for leaf in &supergate.leaves {
        let inv = network.insert_inverter(leaf.pin, format!("dm_in_{}", leaf.pin))?;
        inverters.push(inv);
    }
    // Invert the output: create an inverter fed by the root and move all of
    // the root's former sinks and output ports onto it.
    let root = supergate.root;
    let sinks: Vec<GateId> = network.fanouts(root).to_vec();
    let out_inv = network.add_gate(GateType::Inv, &[root], format!("dm_out_{root}"))?;
    for sink in sinks {
        let pins: Vec<usize> = network
            .fanins(sink)
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == root)
            .map(|(i, _)| i)
            .collect();
        for idx in pins {
            network.replace_pin_driver(PinRef::new(sink, idx), out_inv)?;
        }
    }
    network.redirect_output_ports(root, out_inv)?;
    inverters.push(out_inv);
    Ok(inverters)
}

/// Exchanges the fan-in sets of two symmetric supergates (Theorem 2).
///
/// The caller is responsible for having established that the two supergate
/// *outputs* are symmetric (typically because they drive swappable pins of a
/// common parent supergate).  Leaf `i` of `a` receives the driver of leaf `i`
/// of `b` and vice versa; when the supergates compute dual base functions,
/// both are DeMorgan-transformed first.
///
/// # Errors
///
/// See [`CrossSwapError`].
pub fn cross_supergate_swap(
    network: &mut Network,
    a: &Supergate,
    b: &Supergate,
) -> Result<CrossSwap, CrossSwapError> {
    if a.input_count() != b.input_count() {
        return Err(CrossSwapError::FaninCountMismatch {
            first: a.input_count(),
            second: b.input_count(),
        });
    }
    let kind_a = base_kind(network, a)?;
    let kind_b = base_kind(network, b)?;
    if a.members.iter().any(|m| b.members.contains(m)) {
        return Err(CrossSwapError::Overlapping);
    }
    let mut inserted = 0usize;
    let demorganized = kind_a != kind_b;
    if demorganized {
        inserted += demorgan_transform(network, a)?.len();
        inserted += demorgan_transform(network, b)?.len();
    }
    // Exchange the external drivers of the paired leaves.  After a DeMorgan
    // transform the leaf pins are fed through fresh inverters, so the pins to
    // rewire are those inverters' inputs — either way the original external
    // drivers are what gets exchanged.
    for (la, lb) in a.leaves.iter().zip(&b.leaves) {
        let pin_a = current_external_pin(network, la.pin, demorganized);
        let pin_b = current_external_pin(network, lb.pin, demorganized);
        network.swap_pin_drivers(pin_a, pin_b)?;
    }
    Ok(CrossSwap { root_a: a.root, root_b: b.root, demorganized, inserted_inverters: inserted })
}

/// After a DeMorgan transform the leaf pin is driven by a fresh inverter; the
/// pin whose driver must then be exchanged is that inverter's input pin.
fn current_external_pin(network: &Network, pin: PinRef, demorganized: bool) -> PinRef {
    if !demorganized {
        return pin;
    }
    let driver = network.pin_driver(pin).expect("leaf pin exists after transform");
    PinRef::new(driver, 0)
}

fn base_kind(network: &Network, sg: &Supergate) -> Result<BaseFunction, CrossSwapError> {
    let base = network.gate(sg.root).gtype.base_function();
    match base {
        BaseFunction::And | BaseFunction::Or => Ok(base),
        _ => Err(CrossSwapError::UnsupportedKind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supergate::extract_supergates;
    use rapids_netlist::NetworkBuilder;
    use rapids_sim::check_equivalence_exhaustive;

    /// Fig. 3 configuration: two 3-input supergates SG1 = AND(a, b, c) and
    /// SG2 = OR(d, e, g) feeding the two (symmetric) pins of an XOR parent.
    fn fig3() -> Network {
        let mut builder = NetworkBuilder::new("fig3");
        builder.inputs(["a", "b", "c", "d", "e", "g"]);
        builder.gate("sg1", GateType::And, &["a", "b", "c"]);
        builder.gate("sg2", GateType::Or, &["d", "e", "g"]);
        builder.gate("parent", GateType::Xor, &["sg1", "sg2"]);
        builder.output("parent");
        builder.finish().unwrap()
    }

    #[test]
    fn demorgan_transform_computes_the_dual_function() {
        // Stand-alone AND(a, b, c) becomes OR(a, b, c) after the transform.
        let mut builder = NetworkBuilder::new("dm");
        builder.inputs(["a", "b", "c"]);
        builder.gate("f", GateType::And, &["a", "b", "c"]);
        builder.output("f");
        let mut n = builder.finish().unwrap();
        let ex = extract_supergates(&n);
        let sg = ex.supergate_of_root(n.find_by_name("f").unwrap()).unwrap().clone();
        let inverters = demorgan_transform(&mut n, &sg).unwrap();
        assert_eq!(inverters.len(), sg.input_count() + 1);
        assert!(n.check_consistency().is_ok());

        let mut reference_builder = NetworkBuilder::new("or");
        reference_builder.inputs(["a", "b", "c"]);
        reference_builder.gate("f", GateType::Or, &["a", "b", "c"]);
        reference_builder.output("f");
        let reference = reference_builder.finish().unwrap();
        assert!(check_equivalence_exhaustive(&reference, &n).is_equivalent());
    }

    #[test]
    fn cross_swap_between_dual_supergates_preserves_function() {
        let reference = fig3();
        let mut n = reference.clone();
        let ex = extract_supergates(&n);
        let sg1 = ex.supergate_of_root(n.find_by_name("sg1").unwrap()).unwrap().clone();
        let sg2 = ex.supergate_of_root(n.find_by_name("sg2").unwrap()).unwrap().clone();
        let record = cross_supergate_swap(&mut n, &sg1, &sg2).unwrap();
        assert!(record.demorganized);
        assert_eq!(record.inserted_inverters, 8);
        assert!(check_equivalence_exhaustive(&reference, &n).is_equivalent());
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn cross_swap_between_same_kind_supergates_needs_no_inverters() {
        let mut builder = NetworkBuilder::new("same");
        builder.inputs(["a", "b", "c", "d"]);
        builder.gate("sg1", GateType::And, &["a", "b"]);
        builder.gate("sg2", GateType::And, &["c", "d"]);
        builder.gate("parent", GateType::Xor, &["sg1", "sg2"]);
        builder.output("parent");
        let reference = builder.finish().unwrap();
        let mut n = reference.clone();
        let ex = extract_supergates(&n);
        let sg1 = ex.supergate_of_root(n.find_by_name("sg1").unwrap()).unwrap().clone();
        let sg2 = ex.supergate_of_root(n.find_by_name("sg2").unwrap()).unwrap().clone();
        let record = cross_supergate_swap(&mut n, &sg1, &sg2).unwrap();
        assert!(!record.demorganized);
        assert_eq!(record.inserted_inverters, 0);
        assert_eq!(n.live_gate_count(), reference.live_gate_count());
        assert!(check_equivalence_exhaustive(&reference, &n).is_equivalent());
    }

    #[test]
    fn nand_nor_duals_also_swap() {
        // NAND and NOR roots: the parent's pins must be symmetric for both
        // output polarities, which XNOR provides.
        let mut builder = NetworkBuilder::new("inverted_forms");
        builder.inputs(["a", "b", "c", "d"]);
        builder.gate("sg1", GateType::Nand, &["a", "b"]);
        builder.gate("sg2", GateType::Nor, &["c", "d"]);
        builder.gate("parent", GateType::Xnor, &["sg1", "sg2"]);
        builder.output("parent");
        let reference = builder.finish().unwrap();
        let mut n = reference.clone();
        let ex = extract_supergates(&n);
        let sg1 = ex.supergate_of_root(n.find_by_name("sg1").unwrap()).unwrap().clone();
        let sg2 = ex.supergate_of_root(n.find_by_name("sg2").unwrap()).unwrap().clone();
        let record = cross_supergate_swap(&mut n, &sg1, &sg2).unwrap();
        assert!(record.demorganized);
        assert!(check_equivalence_exhaustive(&reference, &n).is_equivalent());
    }

    #[test]
    fn mismatched_fanin_counts_rejected() {
        let mut builder = NetworkBuilder::new("bad");
        builder.inputs(["a", "b", "c", "d", "e"]);
        builder.gate("sg1", GateType::And, &["a", "b"]);
        builder.gate("sg2", GateType::Or, &["c", "d", "e"]);
        builder.gate("parent", GateType::Xor, &["sg1", "sg2"]);
        builder.output("parent");
        let mut n = builder.finish().unwrap();
        let ex = extract_supergates(&n);
        let sg1 = ex.supergate_of_root(n.find_by_name("sg1").unwrap()).unwrap().clone();
        let sg2 = ex.supergate_of_root(n.find_by_name("sg2").unwrap()).unwrap().clone();
        let err = cross_supergate_swap(&mut n, &sg1, &sg2).unwrap_err();
        assert!(matches!(err, CrossSwapError::FaninCountMismatch { first: 2, second: 3 }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn xor_supergates_rejected() {
        let mut builder = NetworkBuilder::new("badkind");
        builder.inputs(["a", "b", "c", "d"]);
        builder.gate("sg1", GateType::Xor, &["a", "b"]);
        builder.gate("sg2", GateType::Or, &["c", "d"]);
        builder.gate("parent", GateType::And, &["sg1", "sg2"]);
        builder.output("parent");
        let mut n = builder.finish().unwrap();
        let ex = extract_supergates(&n);
        let sg1 = ex.supergate_of_root(n.find_by_name("sg1").unwrap()).unwrap().clone();
        let sg2 = ex.supergate_of_root(n.find_by_name("sg2").unwrap()).unwrap().clone();
        let err = cross_supergate_swap(&mut n, &sg1, &sg2).unwrap_err();
        assert_eq!(err, CrossSwapError::UnsupportedKind);
    }

    #[test]
    fn demorgan_transform_handles_root_driving_primary_output() {
        let mut builder = NetworkBuilder::new("po");
        builder.inputs(["a", "b"]);
        builder.gate("f", GateType::Or, &["a", "b"]);
        builder.output("f");
        let mut n = builder.finish().unwrap();
        let ex = extract_supergates(&n);
        let sg = ex.supergate_of_root(n.find_by_name("f").unwrap()).unwrap().clone();
        demorgan_transform(&mut n, &sg).unwrap();
        // Output port must now be driven by the inserted output inverter.
        let driver = n.outputs()[0].driver;
        assert_eq!(n.gate(driver).gtype, GateType::Inv);
        assert!(n.check_consistency().is_ok());
    }
}
