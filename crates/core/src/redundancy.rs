//! Redundancy identification during supergate extraction (Fig. 1).
//!
//! When the fanout-free traversal of a supergate reaches the same external
//! driver through two different leaves, the two backward implications meet at
//! a fan-out stem:
//!
//! * **Conflicting implications** (Fig. 1a): one leaf requires the stem to be
//!   0 and the other requires it to be 1.  The supergate output can then
//!   never take its enabling value through both paths, one stem branch is
//!   untestable and the corresponding connection is redundant.
//! * **Agreeing implications** (Fig. 1b): both leaves require the same value,
//!   so one of the two connections is logically superfluous (`x·x = x`,
//!   `x+x = x`); one stem branch is stuck-at untestable and redundant.
//!
//! For XOR supergates, two leaves driven by the same signal with the same
//! path parity cancel (`x ⊕ x = 0`), which is likewise reported.
//!
//! Table 1 reports the *number* of redundancies found during extraction
//! (column 14); removal is provided for the simple same-gate duplicate case
//! and is exercised by the tests.

use rapids_netlist::{GateId, GateType, Logic, Network, PinRef};

use crate::supergate::{Extraction, PinClass, Supergate};

/// Kind of redundancy discovered at a fan-out stem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedundancyKind {
    /// Fig. 1a: the two implications conflict (driver must be 0 and 1).
    ConflictingImplication,
    /// Fig. 1b: the two implications agree (duplicate requirement).
    AgreeingImplication,
    /// Two xor-reachable pins with equal parity driven by the same signal.
    XorCancellation,
}

/// One redundancy finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redundancy {
    /// Root of the supergate in which the redundancy was found.
    pub supergate_root: GateId,
    /// The fan-out stem (external driver) reached twice.
    pub stem: GateId,
    /// First leaf pin reaching the stem.
    pub pin_a: PinRef,
    /// Second leaf pin reaching the stem.
    pub pin_b: PinRef,
    /// Classification of the finding.
    pub kind: RedundancyKind,
}

/// Scans one supergate for redundancies.
pub fn find_in_supergate(supergate: &Supergate) -> Vec<Redundancy> {
    let mut findings = Vec::new();
    let leaves = &supergate.leaves;
    for i in 0..leaves.len() {
        for j in (i + 1)..leaves.len() {
            let a = leaves[i];
            let b = leaves[j];
            if a.driver != b.driver {
                continue;
            }
            let kind = match (a.class, b.class) {
                (PinClass::AndOr { imp_value: va }, PinClass::AndOr { imp_value: vb }) => {
                    if va == vb {
                        RedundancyKind::AgreeingImplication
                    } else {
                        RedundancyKind::ConflictingImplication
                    }
                }
                (PinClass::Xor { inverted_path: pa }, PinClass::Xor { inverted_path: pb }) => {
                    if pa == pb {
                        RedundancyKind::XorCancellation
                    } else {
                        // Opposite parity: x ⊕ !x = 1, still a simplification
                        // opportunity reported as a conflict.
                        RedundancyKind::ConflictingImplication
                    }
                }
                _ => continue,
            };
            findings.push(Redundancy {
                supergate_root: supergate.root,
                stem: a.driver,
                pin_a: a.pin,
                pin_b: b.pin,
                kind,
            });
        }
    }
    findings
}

/// Scans every supergate of an extraction.
pub fn find_redundancies(extraction: &Extraction) -> Vec<Redundancy> {
    extraction.supergates().iter().flat_map(find_in_supergate).collect()
}

/// Removes an *agreeing-implication* redundancy whose two pins sit on the
/// same gate by dropping one of the duplicate fan-ins (`x·x → x`).  Returns
/// `true` if the network was modified.
///
/// Only this simple same-gate case is removed automatically; the general
/// cross-gate case requires a full redundancy-removal pass, which is outside
/// the paper's optimization loop (it only *counts* what extraction finds).
pub fn remove_same_gate_duplicate(network: &mut Network, finding: &Redundancy) -> bool {
    if finding.kind != RedundancyKind::AgreeingImplication {
        return false;
    }
    if finding.pin_a.gate != finding.pin_b.gate {
        return false;
    }
    let gate = finding.pin_a.gate;
    let gtype = network.gate(gate).gtype;
    let fanins = network.fanins(gate).to_vec();
    if fanins.len() <= 2 {
        // Dropping a pin would leave a one-input AND/OR; rewrite the gate as
        // a buffer/inverter of the surviving signal instead.
        let survivor = fanins[0];
        let replacement = if gtype.output_inverted() { GateType::Inv } else { GateType::Buf };
        let new_gate = network
            .add_gate(replacement, &[survivor], format!("red_{gate}"))
            .expect("buffer insertion is always valid");
        network.replace_all_uses(gate, new_gate).expect("replacing a live gate's uses succeeds");
        return true;
    }
    // Rebuild the gate without the duplicated pin.
    let mut kept: Vec<GateId> = Vec::with_capacity(fanins.len() - 1);
    for (idx, &driver) in fanins.iter().enumerate() {
        if idx == finding.pin_b.index {
            continue;
        }
        kept.push(driver);
    }
    let new_gate = network
        .add_gate(gtype, &kept, format!("red_{gate}"))
        .expect("reduced gate is structurally valid");
    network.replace_all_uses(gate, new_gate).expect("replacing a live gate's uses succeeds");
    true
}

/// Convenience: count redundancies of each kind.
pub fn count_by_kind(findings: &[Redundancy]) -> (usize, usize, usize) {
    let conflicting =
        findings.iter().filter(|f| f.kind == RedundancyKind::ConflictingImplication).count();
    let agreeing =
        findings.iter().filter(|f| f.kind == RedundancyKind::AgreeingImplication).count();
    let xor = findings.iter().filter(|f| f.kind == RedundancyKind::XorCancellation).count();
    (conflicting, agreeing, xor)
}

/// Returns `true` if an agreeing-implication stem really is redundant, i.e.
/// the supergate's function does not change when the duplicate requirement is
/// collapsed.  (Used by tests as an oracle; always true by construction.)
// The repeated operands are the whole point: this spells out the idempotence
// laws the redundancy collapse relies on, as an executable oracle.
#[allow(clippy::eq_op, clippy::nonminimal_bool)]
pub fn duplicate_is_logically_redundant(value: Logic) -> bool {
    // x·x = x and x+x = x for either polarity of x.
    let x = value.to_bool();
    (x && x) == x && (x || x) == x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supergate::extract_supergates;
    use rapids_netlist::{GateType, NetworkBuilder};
    use rapids_sim::check_equivalence_exhaustive;

    /// Fig. 1b-style network: the stem `g` feeds the AND cone twice with the
    /// same implied value.
    fn agreeing() -> Network {
        let mut b = NetworkBuilder::new("fig1b");
        b.inputs(["x", "y", "g"]);
        b.gate("n1", GateType::And, &["g", "x"]);
        b.gate("f", GateType::And, &["n1", "g"]);
        b.gate("sink", GateType::Or, &["f", "y"]);
        b.output("sink");
        b.finish().unwrap()
    }

    /// Fig. 1a-style network: the stem `g` is required to be both 1 and 0.
    fn conflicting() -> Network {
        let mut b = NetworkBuilder::new("fig1a");
        b.inputs(["x", "g"]);
        b.gate("ng", GateType::Inv, &["g"]);
        b.gate("n1", GateType::And, &["ng", "x"]);
        b.gate("f", GateType::And, &["n1", "g"]);
        b.output("f");
        b.finish().unwrap()
    }

    #[test]
    fn agreeing_duplicate_detected() {
        let n = agreeing();
        let ex = extract_supergates(&n);
        let findings = find_redundancies(&ex);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, RedundancyKind::AgreeingImplication);
        assert_eq!(findings[0].stem, n.find_by_name("g").unwrap());
        let (c, a, x) = count_by_kind(&findings);
        assert_eq!((c, a, x), (0, 1, 0));
    }

    #[test]
    fn conflicting_duplicate_detected() {
        let n = conflicting();
        let ex = extract_supergates(&n);
        let findings = find_redundancies(&ex);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, RedundancyKind::ConflictingImplication);
        // The function f = g·x·!g is constant 0 — genuinely redundant logic.
    }

    #[test]
    fn xor_cancellation_detected() {
        let mut b = NetworkBuilder::new("xc");
        b.inputs(["a", "g"]);
        b.gate("x1", GateType::Xor, &["g", "a"]);
        b.gate("f", GateType::Xor, &["x1", "g"]);
        b.output("f");
        let n = b.finish().unwrap();
        let ex = extract_supergates(&n);
        let findings = find_redundancies(&ex);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, RedundancyKind::XorCancellation);
    }

    #[test]
    fn same_gate_duplicate_removal_preserves_function() {
        // f = AND(a, a, b): removing one `a` pin keeps the function.
        let mut b = NetworkBuilder::new("dup");
        b.inputs(["a", "b"]);
        b.gate("f", GateType::And, &["a", "a", "b"]);
        b.output("f");
        let reference = b.finish().unwrap();
        let mut n = reference.clone();
        let ex = extract_supergates(&n);
        let findings = find_redundancies(&ex);
        assert_eq!(findings.len(), 1);
        assert!(remove_same_gate_duplicate(&mut n, &findings[0]));
        assert!(check_equivalence_exhaustive(&reference, &n).is_equivalent());
        let f_new = n.outputs()[0].driver;
        assert_eq!(n.fanins(f_new).len(), 2);
    }

    #[test]
    fn two_input_duplicate_becomes_buffer() {
        // f = NAND(a, a) ≡ INV(a).
        let mut b = NetworkBuilder::new("dup2");
        b.inputs(["a"]);
        b.gate("f", GateType::Nand, &["a", "a"]);
        b.output("f");
        let reference = b.finish().unwrap();
        let mut n = reference.clone();
        let ex = extract_supergates(&n);
        let findings = find_redundancies(&ex);
        assert_eq!(findings.len(), 1);
        assert!(remove_same_gate_duplicate(&mut n, &findings[0]));
        assert!(check_equivalence_exhaustive(&reference, &n).is_equivalent());
        let driver = n.outputs()[0].driver;
        assert_eq!(n.gate(driver).gtype, GateType::Inv);
    }

    #[test]
    fn cross_gate_findings_are_not_removed_automatically() {
        let n = conflicting();
        let ex = extract_supergates(&n);
        let findings = find_redundancies(&ex);
        let mut edited = n.clone();
        assert!(!remove_same_gate_duplicate(&mut edited, &findings[0]));
    }

    #[test]
    fn clean_networks_report_nothing() {
        let mut b = NetworkBuilder::new("clean");
        b.inputs(["a", "b", "c"]);
        b.gate("n1", GateType::And, &["a", "b"]);
        b.gate("f", GateType::And, &["n1", "c"]);
        b.output("f");
        let n = b.finish().unwrap();
        let ex = extract_supergates(&n);
        assert!(find_redundancies(&ex).is_empty());
        assert!(duplicate_is_logically_redundant(Logic::One));
        assert!(duplicate_is_logically_redundant(Logic::Zero));
    }
}
