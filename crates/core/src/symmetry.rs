//! Symmetry identification from supergate structure (Theorem 1, Lemmas 6–8).
//!
//! Within one generalized implication supergate every pair of leaves is
//! functionally symmetric with respect to the supergate output:
//!
//! * two **and-or-reachable** leaves are *non-inverting* swappable when their
//!   implied values agree and *inverting* swappable when they differ
//!   (Lemma 7);
//! * two **xor-reachable** leaves are both inverting and non-inverting
//!   swappable (Lemma 8).
//!
//! The non-proper-containment requirement of Lemma 6 is satisfied by
//! construction: a leaf's driver lies outside the supergate, so no leaf's
//! root path can pass through another leaf pin.

use rapids_netlist::{Logic, PinRef};

use crate::supergate::{PinClass, Supergate};
use crate::swap::{SwapCandidate, SwapKind};

/// The symmetry relation between two leaves of the same supergate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairSymmetry {
    /// Swappable without inverters (NES).
    NonInverting,
    /// Swappable with an inverter on each pin (ES).
    Inverting,
    /// Swappable either way (xor-reachable pins).
    Both,
}

impl PairSymmetry {
    /// Returns `true` if a plain (non-inverting) swap is permitted.
    pub fn allows_non_inverting(self) -> bool {
        matches!(self, PairSymmetry::NonInverting | PairSymmetry::Both)
    }

    /// Returns `true` if an inverting swap is permitted.
    pub fn allows_inverting(self) -> bool {
        matches!(self, PairSymmetry::Inverting | PairSymmetry::Both)
    }
}

/// Classifies the symmetry between two leaves of the same supergate per
/// Lemmas 7 and 8.  Returns `None` for a pin paired with itself.
pub fn classify_pair(supergate: &Supergate, a: PinRef, b: PinRef) -> Option<PairSymmetry> {
    if a == b {
        return None;
    }
    let leaf_a = supergate.leaves.iter().find(|l| l.pin == a)?;
    let leaf_b = supergate.leaves.iter().find(|l| l.pin == b)?;
    match (leaf_a.class, leaf_b.class) {
        (PinClass::AndOr { imp_value: va }, PinClass::AndOr { imp_value: vb }) => {
            if va == vb {
                Some(PairSymmetry::NonInverting)
            } else {
                Some(PairSymmetry::Inverting)
            }
        }
        (PinClass::Xor { .. }, PinClass::Xor { .. }) => Some(PairSymmetry::Both),
        // A supergate never mixes the two reachability kinds, but be safe.
        _ => None,
    }
}

/// Enumerates every swappable leaf pair of a supergate as concrete swap
/// candidates.  When `include_inverting` is `false`, only non-inverting swaps
/// are produced (the default of the optimizer, which keeps the placement
/// perturbation at zero).
///
/// Uses the leaf drivers recorded at extraction time; when the extraction is
/// cached across rewiring passes, use [`swap_candidates_in`] instead so the
/// same-signal skip sees the drivers as they are *now*.
pub fn swap_candidates(supergate: &Supergate, include_inverting: bool) -> Vec<SwapCandidate> {
    candidates_with(supergate, include_inverting, |leaf| leaf.driver)
}

/// Like [`swap_candidates`], but reads each leaf pin's current driver from
/// the network.  Symmetry classes are structural properties of the supergate
/// and survive driver exchanges, so a cached extraction plus this function
/// is equivalent to re-extracting after every non-inverting swap.
pub fn swap_candidates_in(
    network: &rapids_netlist::Network,
    supergate: &Supergate,
    include_inverting: bool,
) -> Vec<SwapCandidate> {
    candidates_with(supergate, include_inverting, |leaf| {
        network.pin_driver(leaf.pin).expect("supergate leaf pins always exist")
    })
}

fn candidates_with(
    supergate: &Supergate,
    include_inverting: bool,
    driver_of: impl Fn(&crate::supergate::SupergateLeaf) -> rapids_netlist::GateId,
) -> Vec<SwapCandidate> {
    let mut candidates = Vec::new();
    let leaves = &supergate.leaves;
    for i in 0..leaves.len() {
        for j in (i + 1)..leaves.len() {
            let a = leaves[i];
            let b = leaves[j];
            if driver_of(&a) == driver_of(&b) {
                // Swapping two pins fed by the same signal changes nothing.
                continue;
            }
            let Some(symmetry) = classify_pair(supergate, a.pin, b.pin) else {
                continue;
            };
            if symmetry.allows_non_inverting() {
                candidates.push(SwapCandidate {
                    supergate_root: supergate.root,
                    pin_a: a.pin,
                    pin_b: b.pin,
                    kind: SwapKind::NonInverting,
                });
            } else if include_inverting && symmetry.allows_inverting() {
                candidates.push(SwapCandidate {
                    supergate_root: supergate.root,
                    pin_a: a.pin,
                    pin_b: b.pin,
                    kind: SwapKind::Inverting,
                });
            }
        }
    }
    candidates
}

/// Groups the leaves of a supergate into symmetry classes of mutually
/// non-inverting-swappable pins (and-or leaves split by implied value; xor
/// leaves form a single class).
pub fn symmetry_classes(supergate: &Supergate) -> Vec<Vec<PinRef>> {
    let mut ones = Vec::new();
    let mut zeros = Vec::new();
    let mut xors = Vec::new();
    for leaf in &supergate.leaves {
        match leaf.class {
            PinClass::AndOr { imp_value: Logic::One } => ones.push(leaf.pin),
            PinClass::AndOr { imp_value: Logic::Zero } => zeros.push(leaf.pin),
            PinClass::Xor { .. } => xors.push(leaf.pin),
        }
    }
    [ones, zeros, xors].into_iter().filter(|c| !c.is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supergate::extract_supergates;
    use rapids_bdd::{
        are_equivalence_symmetric, are_nonequivalence_symmetric, build_output_bdds, Manager,
    };
    use rapids_netlist::{GateType, Network, NetworkBuilder};

    /// f = NOR(NAND(a, b), INV(c)): one supergate whose leaves are a, b
    /// (implied 1) and c (implied 1 through the inverter? no: NOR=1 ⇒ both
    /// fanins 0 ⇒ NAND=0 ⇒ a=b=1; INV=0 ⇒ c=1).
    fn mixed() -> Network {
        let mut b = NetworkBuilder::new("mixed");
        b.inputs(["a", "b", "c"]);
        b.gate("n1", GateType::Nand, &["a", "b"]);
        b.gate("n2", GateType::Inv, &["c"]);
        b.gate("f", GateType::Nor, &["n1", "n2"]);
        b.output("f");
        b.finish().unwrap()
    }

    #[test]
    fn all_three_pins_mutually_non_inverting_swappable() {
        let n = mixed();
        let ex = extract_supergates(&n);
        let f = n.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        assert_eq!(sg.input_count(), 3);
        let candidates = swap_candidates(sg, false);
        assert_eq!(candidates.len(), 3);
        assert!(candidates.iter().all(|c| c.kind == SwapKind::NonInverting));
        let classes = symmetry_classes(sg);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 3);
    }

    #[test]
    fn structural_symmetry_confirmed_by_bdd_oracle() {
        // Verify Lemma 7 against the classical cofactor definition: the
        // function is f = !(!(a·b) + !c) = a·b·c, totally symmetric.
        let n = mixed();
        let mut m = Manager::new();
        let bdds = build_output_bdds(&mut m, &n);
        let f = bdds.outputs[0];
        for (i, j) in [(0u32, 1u32), (0, 2), (1, 2)] {
            assert!(are_nonequivalence_symmetric(&mut m, f, i, j));
        }
    }

    #[test]
    fn mixed_polarity_gives_inverting_pairs() {
        // f = AND(a, INV(b)): a implied 1, b implied 0 ⇒ inverting swap only.
        let mut builder = NetworkBuilder::new("es");
        builder.inputs(["a", "b"]);
        builder.gate("nb", GateType::Inv, &["b"]);
        builder.gate("f", GateType::And, &["a", "nb"]);
        builder.output("f");
        let n = builder.finish().unwrap();
        let ex = extract_supergates(&n);
        let f = n.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        let a_pin =
            sg.leaves.iter().find(|l| l.driver == n.find_by_name("a").unwrap()).unwrap().pin;
        let b_pin =
            sg.leaves.iter().find(|l| l.driver == n.find_by_name("b").unwrap()).unwrap().pin;
        assert_eq!(classify_pair(sg, a_pin, b_pin), Some(PairSymmetry::Inverting));
        assert!(swap_candidates(sg, false).is_empty());
        let with_inverting = swap_candidates(sg, true);
        assert_eq!(with_inverting.len(), 1);
        assert_eq!(with_inverting[0].kind, SwapKind::Inverting);
        // Confirm with the BDD oracle: ES but not NES.
        let mut m = Manager::new();
        let bdds = build_output_bdds(&mut m, &n);
        assert!(!are_nonequivalence_symmetric(&mut m, bdds.outputs[0], 0, 1));
        assert!(are_equivalence_symmetric(&mut m, bdds.outputs[0], 0, 1));
    }

    #[test]
    fn xor_leaves_are_both() {
        let mut builder = NetworkBuilder::new("xs");
        builder.inputs(["a", "b", "c"]);
        builder.gate("x1", GateType::Xor, &["a", "b"]);
        builder.gate("f", GateType::Xnor, &["x1", "c"]);
        builder.output("f");
        let n = builder.finish().unwrap();
        let ex = extract_supergates(&n);
        let f = n.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        assert_eq!(sg.input_count(), 3);
        for i in 0..sg.leaves.len() {
            for j in (i + 1)..sg.leaves.len() {
                let s = classify_pair(sg, sg.leaves[i].pin, sg.leaves[j].pin).unwrap();
                assert_eq!(s, PairSymmetry::Both);
                assert!(s.allows_inverting() && s.allows_non_inverting());
            }
        }
        assert_eq!(swap_candidates(sg, false).len(), 3);
    }

    #[test]
    fn same_driver_pairs_skipped() {
        let mut builder = NetworkBuilder::new("dup");
        builder.inputs(["a", "b"]);
        builder.gate("f", GateType::And, &["a", "a", "b"]);
        builder.output("f");
        let n = builder.finish().unwrap();
        let ex = extract_supergates(&n);
        let f = n.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        let candidates = swap_candidates(sg, false);
        // Only the (a, b) pairs survive, not (a, a).
        assert_eq!(candidates.len(), 2);
    }

    #[test]
    fn self_pair_is_none() {
        let n = mixed();
        let ex = extract_supergates(&n);
        let f = n.find_by_name("f").unwrap();
        let sg = ex.supergate_of_root(f).unwrap();
        let p = sg.leaves[0].pin;
        assert_eq!(classify_pair(sg, p, p), None);
    }
}
