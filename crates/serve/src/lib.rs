//! # rapids-serve
//!
//! A long-running batch-optimization service over the
//! [`rapids_flow::Pipeline`]: jobs (a circuit source plus configuration
//! knobs) are scheduled across a bounded worker pool and their per-design
//! delay/area/swap reports stream out as JSONL as each design finishes —
//! no barrier on the whole batch.  The layers, bottom up:
//!
//! * **ingestion** ([`ingest`], [`job`]) — JSONL job specs, the 19-entry
//!   synthetic suite, and recursively discovered `.blif` directories, all
//!   normalized into [`Job`]s;
//! * **execution + caching** ([`engine`], [`fingerprint`]) — the
//!   [`Engine`] runs one job end to end (errors and panics are captured as
//!   `Failed` reports, never propagated) and memoizes results keyed by
//!   *(netlist content fingerprint, config fingerprint)*, so resubmitted
//!   designs are served without recompute;
//! * **scheduling** ([`server`]) — the [`BatchServer`] fans a batch out
//!   over `workers` threads with per-job status tracking and graceful
//!   cancellation, streaming completion-order results to the caller;
//! * **front ends** ([`net`] and the `rapids-serve` binary) — a CLI that
//!   writes streaming JSONL reports and an optional TCP line-protocol mode
//!   for true long-running use;
//! * **telemetry** ([`telemetry`], [`heartbeat`]) — a manual-tick
//!   time-series plane over the engine's metrics (CUSUM change detection,
//!   SLO burn tracking, a crash-safe JSONL journal, Prometheus-style
//!   exposition) plus the batch liveness heartbeat.  See
//!   `docs/observability.md`.
//!
//! Determinism: a job's report depends only on its netlist and config —
//! never on the worker count or completion order — so batch output is
//! byte-identical across worker counts once canonically sorted (see
//! `docs/serving.md`, and the `threads` determinism contract stated in the
//! `rapids_sizing::parallel` module docs).
//!
//! ```
//! use rapids_serve::{BatchServer, Engine, Job, JobSource};
//! use rapids_flow::PipelineConfig;
//!
//! let engine = Engine::new(PipelineConfig::fast());
//! let server = BatchServer::new(engine, 2);
//! let jobs = vec![Job::suite("c432", server.engine().base_config())];
//! let summary = server.run_streaming(&jobs, |report| {
//!     println!("{}", report.to_jsonl());
//! });
//! assert_eq!(summary.done, 1);
//! ```

pub mod engine;
pub mod faults;
pub mod fingerprint;
pub mod heartbeat;
pub mod ingest;
pub mod job;
pub mod json;
pub mod net;
pub mod report;
pub mod retry;
pub mod server;
pub mod store;
pub mod telemetry;

pub use engine::Engine;
pub use faults::{FaultAction, FaultPlan, FaultPoint};
pub use heartbeat::Heartbeat;
pub use ingest::{discover_blif_files, jobs_from_blif_dir, jobs_from_jsonl, suite_jobs};
pub use job::{Job, JobSource, JobStatus};
pub use report::{DesignQor, JobOutcome, JobReport, VerifyVerdict};
pub use retry::{with_backoff, BackoffPolicy};
pub use server::{BatchServer, BatchSummary, CancelFlag};
pub use store::ResultStore;
pub use telemetry::{Journal, TelemetryConfig, TelemetryPlane, WallClockSampler};
