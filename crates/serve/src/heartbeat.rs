//! The batch-mode liveness heartbeat (`--heartbeat-s N`): a thread that
//! reports progress every period while a long batch runs.
//!
//! Extracted from the `rapids-serve` binary so the cadence logic is
//! testable and shared.  Like `Engine`'s deadline watchdog and the
//! telemetry [`WallClockSampler`](crate::telemetry::WallClockSampler),
//! the thread sleeps on a condvar deadline rather than poll-sleeping, so
//! dropping the handle wakes and joins it immediately — even mid-period
//! with an hour-long cadence.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A live heartbeat thread; dropping it stops and joins the thread.
#[derive(Debug)]
pub struct Heartbeat {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Spawns a heartbeat that calls `emit(done, total)` every `period`
    /// (first beat one period from now) until dropped, reading progress
    /// from `completed`.
    pub fn arm(
        period: Duration,
        total: usize,
        completed: Arc<AtomicUsize>,
        mut emit: impl FnMut(usize, usize) + Send + 'static,
    ) -> Heartbeat {
        let period = period.max(Duration::from_millis(1));
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let (stop, wake) = &*shared;
            let mut next = Instant::now() + period;
            let mut stop = stop.lock().expect("heartbeat lock poisoned");
            loop {
                if *stop {
                    return;
                }
                let now = Instant::now();
                if now >= next {
                    emit(completed.load(Ordering::Relaxed), total);
                    next += period;
                    continue;
                }
                let (next_guard, _) =
                    wake.wait_timeout(stop, next - now).expect("heartbeat lock poisoned");
                stop = next_guard;
            }
        });
        Heartbeat { state, handle: Some(handle) }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        let (stop, wake) = &*self.state;
        *stop.lock().expect("heartbeat lock poisoned") = true;
        wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_carry_progress_and_stop_on_drop() {
        let completed = Arc::new(AtomicUsize::new(0));
        let beats = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&beats);
        let heartbeat = Heartbeat::arm(
            Duration::from_millis(15),
            10,
            Arc::clone(&completed),
            move |done, total| sink.lock().unwrap().push((done, total)),
        );
        completed.store(4, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_secs(10);
        while beats.lock().unwrap().is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(heartbeat);
        let beats = beats.lock().unwrap();
        assert!(!beats.is_empty(), "at least one beat must fire");
        assert!(beats.iter().all(|&(done, total)| done <= 10 && total == 10));
    }

    #[test]
    fn drop_joins_promptly_even_with_a_long_period() {
        let heartbeat =
            Heartbeat::arm(Duration::from_secs(3600), 1, Arc::new(AtomicUsize::new(0)), |_, _| {});
        std::thread::sleep(Duration::from_millis(20));
        let start = Instant::now();
        drop(heartbeat);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop must wake the condvar, not wait out the period"
        );
    }
}
