//! Bounded retry with deterministic exponential backoff.
//!
//! Transient file I/O (a BLIF read hit by an interrupted syscall, a store
//! append racing a flaky filesystem) is retried a fixed number of times
//! with exponentially growing, capped delays.  Every *decision* — whether
//! to retry, and how long to wait — is a pure function of the attempt
//! number and the error kind; nothing reads the wall clock, so a run under
//! fault injection retries identically every time.

use std::time::Duration;

/// The retry budget: attempt count and the delay ladder between attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total attempts (the first try included); at least 1.
    pub max_attempts: u32,
    /// Delay after the first failed attempt, ms.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay, ms.
    pub max_delay_ms: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy { max_attempts: 3, base_delay_ms: 10, max_delay_ms: 100 }
    }
}

impl BackoffPolicy {
    /// The delay slept after failed attempt `attempt` (1-based):
    /// `min(base << (attempt - 1), max)`.
    pub fn delay_for_attempt(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(63);
        let delay = self
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX))
            .min(self.max_delay_ms);
        Duration::from_millis(delay)
    }
}

/// Whether an I/O error is worth retrying.  Interrupted syscalls, timeouts
/// and uncategorized (`Other`) errors — the kind injected faults carry —
/// are transient; missing files and permission errors are permanent and
/// fail immediately.
pub fn is_transient_io(e: &std::io::Error) -> bool {
    use std::io::ErrorKind;
    matches!(
        e.kind(),
        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Other
    )
}

/// Runs `op` until it succeeds, the error is classified permanent by
/// `retryable`, or the policy's attempt budget runs out; returns the last
/// error in the latter two cases.
///
/// # Errors
///
/// The error of the final (non-retried) attempt.
pub fn with_backoff<T, E>(
    policy: &BackoffPolicy,
    retryable: impl Fn(&E) -> bool,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 1;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) => {
                if attempt >= attempts || !retryable(&e) {
                    return Err(e);
                }
                rapids_obs::metrics::counter("serve.retry_attempts").inc();
                std::thread::sleep(policy.delay_for_attempt(attempt));
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Error, ErrorKind};

    #[test]
    fn delay_ladder_is_exponential_and_capped() {
        let p = BackoffPolicy::default();
        assert_eq!(p.delay_for_attempt(1), Duration::from_millis(10));
        assert_eq!(p.delay_for_attempt(2), Duration::from_millis(20));
        assert_eq!(p.delay_for_attempt(3), Duration::from_millis(40));
        assert_eq!(p.delay_for_attempt(5), Duration::from_millis(100), "capped at max");
        assert_eq!(p.delay_for_attempt(64), Duration::from_millis(100), "no shift overflow");
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let mut calls = 0;
        let result: Result<u32, Error> = with_backoff(
            &BackoffPolicy { base_delay_ms: 0, ..BackoffPolicy::default() },
            is_transient_io,
            || {
                calls += 1;
                if calls < 3 {
                    Err(Error::new(ErrorKind::Interrupted, "flaky"))
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(result.unwrap(), 7);
        assert_eq!(calls, 3);
    }

    #[test]
    fn gives_up_after_the_attempt_budget() {
        let mut calls = 0;
        let result: Result<(), Error> = with_backoff(
            &BackoffPolicy { base_delay_ms: 0, ..BackoffPolicy::default() },
            is_transient_io,
            || {
                calls += 1;
                Err(Error::other("always down"))
            },
        );
        assert!(result.is_err());
        assert_eq!(calls, 3, "default policy tries exactly 3 times");
    }

    #[test]
    fn permanent_errors_fail_immediately() {
        let mut calls = 0;
        let result: Result<(), Error> =
            with_backoff(&BackoffPolicy::default(), is_transient_io, || {
                calls += 1;
                Err(Error::new(ErrorKind::NotFound, "no such file"))
            });
        assert!(result.is_err());
        assert_eq!(calls, 1, "a missing file is not retried");
    }
}
