//! The batch scheduler: a bounded worker pool over a shared job queue,
//! streaming results as each design finishes.
//!
//! Scheduling never influences results — a job's report is a pure function
//! of its netlist and config ([`Engine::execute`]) — so the only thing the
//! worker count changes is completion order.  Callers that need canonical
//! output sort the lines ([`crate::report::canonical_sort`]).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use crate::engine::Engine;
use crate::job::{Job, JobStatus};
use crate::report::JobReport;

/// A cooperative cancellation flag shared between a running batch and
/// whoever wants to stop it (a signal handler, the TCP front end, a test).
///
/// Cancellation is *graceful*: workers finish the job they are on and stop
/// picking up new ones; jobs never started stay `Queued`.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// What a finished (or cancelled) batch looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSummary {
    /// Jobs that completed with a QoR report.
    pub done: usize,
    /// Jobs that completed with a captured error.
    pub failed: usize,
    /// Among `done`, how many were served from the cache.
    pub cached: usize,
    /// Jobs never started because the batch was cancelled.
    pub skipped: usize,
    /// Final per-job status, indexed like the submitted job slice.
    pub statuses: Vec<JobStatus>,
}

/// A bounded worker pool around a shared [`Engine`].
#[derive(Debug)]
pub struct BatchServer {
    engine: Engine,
    workers: usize,
}

impl BatchServer {
    /// A server executing at most `workers` jobs concurrently (0 is
    /// treated as 1).  The engine — and with it the result cache — is
    /// shared by every batch this server runs.
    pub fn new(engine: Engine, workers: usize) -> Self {
        BatchServer { engine, workers: workers.max(1) }
    }

    /// The shared execution core (cache probes, base config).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Configured worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch, invoking `on_result` on the caller's thread as each
    /// job finishes (completion order).  Blocks until every job has
    /// finished or, after cancellation, until in-flight jobs drain.
    pub fn run_streaming<F: FnMut(&JobReport)>(&self, jobs: &[Job], on_result: F) -> BatchSummary {
        self.run_streaming_with_cancel(jobs, &CancelFlag::new(), on_result)
    }

    /// [`BatchServer::run_streaming`] with an external cancellation flag.
    pub fn run_streaming_with_cancel<F: FnMut(&JobReport)>(
        &self,
        jobs: &[Job],
        cancel: &CancelFlag,
        mut on_result: F,
    ) -> BatchSummary {
        let statuses: Vec<Mutex<JobStatus>> =
            jobs.iter().map(|_| Mutex::new(JobStatus::Queued)).collect();
        let next = AtomicUsize::new(0);
        let mut done = 0;
        let mut failed = 0;
        let mut cached = 0;

        std::thread::scope(|s| {
            let (tx, rx) = mpsc::channel::<JobReport>();
            for _ in 0..self.workers.min(jobs.len()) {
                let tx = tx.clone();
                let statuses = &statuses;
                let next = &next;
                s.spawn(move || loop {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    // Unclaimed jobs behind this one (a level, not a rate).
                    self.engine.set_queue_depth(jobs.len().saturating_sub(i + 1) as i64);
                    *statuses[i].lock().expect("status lock poisoned") = JobStatus::Running;
                    let report = self.engine.execute(&jobs[i]);
                    *statuses[i].lock().expect("status lock poisoned") =
                        if report.is_done() { JobStatus::Done } else { JobStatus::Failed };
                    // Manual-tick telemetry samples here — a quiescent
                    // point with respect to this job: its metrics are
                    // fully recorded, its report not yet handed on.
                    self.engine.telemetry_tick();
                    if tx.send(report).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Streaming happens here, on the calling thread, as workers
            // finish designs — no barrier on the whole batch.
            for report in rx {
                match report.is_done() {
                    true => done += 1,
                    false => failed += 1,
                }
                if report.cached {
                    cached += 1;
                }
                on_result(&report);
            }
        });

        let statuses: Vec<JobStatus> =
            statuses.into_iter().map(|m| m.into_inner().expect("status lock poisoned")).collect();
        let skipped = statuses.iter().filter(|&&st| st == JobStatus::Queued).count();
        BatchSummary { done, failed, cached, skipped, statuses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_flow::PipelineConfig;

    fn server(workers: usize) -> BatchServer {
        BatchServer::new(Engine::new(PipelineConfig::fast()), workers)
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let summary = server(4).run_streaming(&[], |_| panic!("no results expected"));
        assert_eq!(
            summary,
            BatchSummary { done: 0, failed: 0, cached: 0, skipped: 0, statuses: vec![] }
        );
    }

    #[test]
    fn statuses_track_outcomes() {
        let s = server(2);
        let base = s.engine().base_config().clone();
        let jobs = vec![
            Job::suite("c432", &base),
            Job::blif_text("poison", "garbage", &base),
            Job::suite("c432", &base),
        ];
        let mut lines = Vec::new();
        let summary = s.run_streaming(&jobs, |r| lines.push(r.to_jsonl()));
        assert_eq!((summary.done, summary.failed, summary.skipped), (2, 1, 0));
        assert_eq!(summary.statuses[0], JobStatus::Done);
        assert_eq!(summary.statuses[1], JobStatus::Failed);
        assert_eq!(summary.statuses[2], JobStatus::Done);
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn pre_cancelled_batch_skips_everything() {
        let s = server(2);
        let base = s.engine().base_config().clone();
        let jobs = vec![Job::suite("c432", &base), Job::suite("alu2", &base)];
        let cancel = CancelFlag::new();
        cancel.cancel();
        let summary = s.run_streaming_with_cancel(&jobs, &cancel, |_| {});
        assert_eq!(summary.skipped, 2);
        assert_eq!(summary.statuses, vec![JobStatus::Queued, JobStatus::Queued]);
        assert_eq!(s.engine().optimizer_runs(), 0);
    }

    #[test]
    fn cancel_mid_batch_drains_in_flight_jobs() {
        let s = server(1);
        let base = s.engine().base_config().clone();
        // Distinct designs: repeated submissions would be near-instant
        // cache hits, letting the single worker drain the whole queue
        // before the callback's cancel becomes visible.
        let jobs: Vec<Job> =
            ["c432", "alu2", "c499", "c1908"].iter().map(|n| Job::suite(*n, &base)).collect();
        let cancel = CancelFlag::new();
        let mut seen = 0;
        let summary = s.run_streaming_with_cancel(&jobs, &cancel, |_| {
            seen += 1;
            cancel.cancel();
        });
        // One worker: the first job finishes, the callback cancels, the
        // worker exits before picking up the rest.
        assert_eq!(seen, summary.done);
        assert!(summary.skipped >= 1, "later jobs should stay queued");
        assert_eq!(summary.done + summary.failed + summary.skipped, jobs.len());
    }
}
