//! The serve-tier telemetry plane: periodic sampling of the engine's
//! merged metrics into time series, online change detection over those
//! series, SLO burn tracking, and a crash-safe JSONL journal.
//!
//! A [`TelemetryPlane`] owns an [`rapids_obs::Sampler`] plus the armed
//! [`Cusum`] detectors and [`SloTracker`]s.  Every call to
//! [`TelemetryPlane::tick_now`] snapshots the process-global registry
//! merged with the engine's per-instance registry (the same view
//! `{"cmd":"metrics"}` answers), derives one tick of series points, feeds
//! every detector, and appends one checksummed line to the journal (when
//! one is attached).
//!
//! **Manual-tick contract** (`docs/observability.md`): the plane has no
//! clock of its own.  In manual mode (`--telemetry-s 0`, and every test
//! and CI smoke) the serve layer ticks it at quiescent points — after a
//! job finishes, before its report is handed on — so the tick sequence,
//! and with it every series point and alert, is a pure function of the
//! workload.  In production (`--telemetry-s N`, N > 0) a
//! [`WallClockSampler`] thread ticks it every N seconds instead; nothing
//! else changes.
//!
//! The journal reuses the `serve::store` crash-safety discipline: every
//! line carries an FNV-1a checksum over its own prefix and is appended
//! with a single `write_all`, so a crash can only tear the final line —
//! which [`Journal::open`] detects and truncates on replay.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rapids_obs::timeseries::number;
use rapids_obs::{Alert, Cusum, CusumConfig, Sampler, SamplerConfig, SloConfig, SloTracker};
use rapids_obs::{Registry, TickSample};

use crate::fingerprint::fnv1a;

/// Most recent alerts retained for the `{"cmd":"alerts"}` verb; older
/// ones fall off (the journal keeps the full history).
const MAX_RETAINED_ALERTS: usize = 256;

/// Everything needed to arm a [`TelemetryPlane`].
#[derive(Debug, Default)]
pub struct TelemetryConfig {
    /// Series ring capacity (points per series).
    pub sampler: SamplerConfig,
    /// `true` = the serve layer ticks the plane at quiescent points;
    /// `false` = a [`WallClockSampler`] thread does, on its period.
    pub manual: bool,
    /// CUSUM detectors to attach, by series name.
    pub cusum: Vec<CusumConfig>,
    /// SLOs to track, each over a pair of counter-delta series.
    pub slos: Vec<SloConfig>,
}

/// The armed telemetry plane (see the module docs).
pub struct TelemetryPlane {
    /// The engine's per-instance registry; [`tick_now`](Self::tick_now)
    /// merges it over the process-global one, matching
    /// `Engine::metrics_snapshot`.
    registry: Registry,
    manual: bool,
    sampler: Sampler,
    detectors: Mutex<Vec<Cusum>>,
    slos: Mutex<Vec<SloTracker>>,
    alerts: Mutex<std::collections::VecDeque<Alert>>,
    journal: Option<Journal>,
}

impl std::fmt::Debug for TelemetryPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryPlane")
            .field("manual", &self.manual)
            .field("ticks", &self.sampler.ticks())
            .finish_non_exhaustive()
    }
}

impl TelemetryPlane {
    /// Arms a plane over `registry` (the engine's per-instance registry;
    /// pass `Engine::metrics_registry()`).
    pub fn new(registry: Registry, config: TelemetryConfig) -> Self {
        TelemetryPlane {
            registry,
            manual: config.manual,
            sampler: Sampler::new(config.sampler),
            detectors: Mutex::new(config.cusum.into_iter().map(Cusum::new).collect()),
            slos: Mutex::new(config.slos.into_iter().map(SloTracker::new).collect()),
            alerts: Mutex::new(std::collections::VecDeque::new()),
            journal: None,
        }
    }

    /// Attaches a crash-safe JSONL journal (`--telemetry-out`): every
    /// tick appends one checksummed line.
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Whether the serve layer should tick this plane at quiescent
    /// points (manual mode) instead of a wall-clock thread.
    pub fn is_manual(&self) -> bool {
        self.manual
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.sampler.ticks()
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Establishes the sampler's delta baseline from the current merged
    /// registry state without taking a tick — no points, no detector
    /// feed, no journal line.  Call once at arm time so the first real
    /// tick reports per-interval increments rather than the lifetime
    /// absolutes the registry accumulated before telemetry was armed.
    pub fn prime(&self) {
        let mut snapshot = rapids_obs::global().snapshot();
        snapshot.merge(&self.registry.snapshot());
        self.sampler.prime(&snapshot);
    }

    /// Takes one sample of the merged (global ⊕ engine) registry state,
    /// feeds the detectors and SLOs, journals the tick, and returns the
    /// alerts that fired on it.
    pub fn tick_now(&self) -> Vec<Alert> {
        let mut snapshot = rapids_obs::global().snapshot();
        snapshot.merge(&self.registry.snapshot());
        let sample = self.sampler.tick(&snapshot);

        let mut fired: Vec<Alert> = Vec::new();
        {
            let mut detectors = self.detectors.lock().expect("detector lock poisoned");
            for detector in detectors.iter_mut() {
                let value = sample.points().find(|(name, _)| *name == detector.series());
                if let Some((_, value)) = value {
                    fired.extend(detector.observe(sample.tick, value));
                }
            }
        }
        let slo_status = {
            let lookup = |series: &str| {
                sample
                    .counters
                    .iter()
                    .find(|(name, _)| name == series)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0)
            };
            let mut slos = self.slos.lock().expect("slo lock poisoned");
            for slo in slos.iter_mut() {
                let bad = lookup(slo.bad_series());
                let total = lookup(slo.total_series());
                fired.extend(slo.observe(sample.tick, bad, total));
            }
            slos.iter().map(SloTracker::status_json).collect::<Vec<_>>()
        };

        if let Some(journal) = &self.journal {
            // Best-effort durability: a failing journal write costs
            // history, never the serving path.
            let _ = journal.append_tick(&sample, &fired, &slo_status);
        }
        {
            let mut alerts = self.alerts.lock().expect("alert lock poisoned");
            for alert in &fired {
                if alerts.len() == MAX_RETAINED_ALERTS {
                    alerts.pop_front();
                }
                alerts.push_back(alert.clone());
            }
        }
        fired
    }

    /// Every alert retained so far (the most recent
    /// `MAX_RETAINED_ALERTS`), in firing order.
    pub fn alerts(&self) -> Vec<Alert> {
        self.alerts.lock().expect("alert lock poisoned").iter().cloned().collect()
    }

    /// The `{"cmd":"alerts"}` reply line:
    /// `{"ok":"alerts","alerts":[…],"slo":[…]}`.
    pub fn alerts_json(&self) -> String {
        let alerts = self.alerts();
        let mut out = String::from("{\"ok\":\"alerts\",\"alerts\":[");
        for (i, alert) in alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&alert.to_json());
        }
        out.push_str("],\"slo\":[");
        let slos = self.slos.lock().expect("slo lock poisoned");
        for (i, slo) in slos.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&slo.status_json());
        }
        out.push_str("]}");
        out
    }

    /// The `{"cmd":"series"}` reply line for `name` (`None` when the
    /// series does not exist yet).
    pub fn series_json(&self, name: &str, last: usize) -> Option<String> {
        self.sampler.window_json(name, last)
    }

    /// Every series name currently tracked, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.sampler.names()
    }
}

/// The production wall-clock driver: a thread that calls
/// [`TelemetryPlane::tick_now`] every `period` until dropped.  Tests
/// never use this — they tick manually — which is exactly why series
/// stay byte-reproducible under test.
#[derive(Debug)]
pub struct WallClockSampler {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl WallClockSampler {
    /// Spawns the sampling thread (first tick one `period` from now).
    pub fn spawn(plane: Arc<TelemetryPlane>, period: Duration) -> WallClockSampler {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let (stop, wake) = &*shared;
            let mut next = Instant::now() + period;
            let mut stop = stop.lock().expect("sampler lock poisoned");
            loop {
                if *stop {
                    return;
                }
                let now = Instant::now();
                if now >= next {
                    drop(stop);
                    plane.tick_now();
                    next += period;
                    stop = shared.0.lock().expect("sampler lock poisoned");
                    continue;
                }
                let (next_guard, _) =
                    wake.wait_timeout(stop, next - now).expect("sampler lock poisoned");
                stop = next_guard;
            }
        });
        WallClockSampler { state, handle: Some(handle) }
    }
}

impl Drop for WallClockSampler {
    fn drop(&mut self) {
        let (stop, wake) = &*self.state;
        *stop.lock().expect("sampler lock poisoned") = true;
        wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A crash-safe JSONL telemetry journal (`--telemetry-out FILE`).
///
/// Line format: `{<fields>,"ck":"<16 hex>"}` where the checksum is
/// FNV-1a over the line's own bytes up to and including `,"ck":"`.
/// Appends are a single `write_all` + flush under a mutex, so a crash
/// can only tear the final line; [`Journal::open`] validates every line
/// on replay and truncates the file at the first torn or corrupt one
/// (the `serve::store` discipline, line-oriented).
pub struct Journal {
    file: Mutex<File>,
    recovered_lines: usize,
    dropped_tail_bytes: u64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("recovered_lines", &self.recovered_lines)
            .field("dropped_tail_bytes", &self.dropped_tail_bytes)
            .finish_non_exhaustive()
    }
}

/// `,"ck":"` — the tail marker a valid journal line carries its checksum
/// behind.
const CK_MARKER: &str = ",\"ck\":\"";
/// Bytes after the checksummed prefix: 16 hex digits + `"}`.
const CK_SUFFIX_LEN: usize = 16 + 2;

impl Journal {
    /// Opens (creating if missing) the journal at `path`, replaying
    /// existing lines and truncating a torn/corrupt tail.
    ///
    /// # Errors
    ///
    /// Propagates file open/read/truncate failures; line-level corruption
    /// is *handled* (truncated), not an error.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut text = Vec::new();
        file.read_to_end(&mut text)?;

        let mut valid_len = 0usize;
        let mut recovered_lines = 0usize;
        let mut pos = 0usize;
        while pos < text.len() {
            let Some(nl) = text[pos..].iter().position(|&b| b == b'\n') else {
                break; // unterminated tail: torn mid-append
            };
            let line = &text[pos..pos + nl];
            if !line_checksum_valid(line) {
                break;
            }
            recovered_lines += 1;
            pos += nl + 1;
            valid_len = pos;
        }
        let dropped_tail_bytes = (text.len() - valid_len) as u64;
        if dropped_tail_bytes > 0 {
            file.set_len(valid_len as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Journal { file: Mutex::new(file), recovered_lines, dropped_tail_bytes })
    }

    /// Valid lines found (and kept) at open.
    pub fn recovered_lines(&self) -> usize {
        self.recovered_lines
    }

    /// Torn/corrupt tail bytes truncated at open (0 for a clean file).
    pub fn dropped_tail_bytes(&self) -> u64 {
        self.dropped_tail_bytes
    }

    /// Appends one record.  `fields` is the line's JSON body without the
    /// outer braces (`"tick":3,…`); the journal wraps it and stamps the
    /// checksum.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write/flush failure; the caller decides
    /// whether durability loss is fatal (the telemetry plane treats it
    /// as best-effort).
    pub fn append(&self, fields: &str) -> std::io::Result<()> {
        let prefix = format!("{{{fields}{CK_MARKER}");
        let line = format!("{prefix}{:016x}\"}}\n", fnv1a(prefix.as_bytes()));
        let mut file = self.file.lock().expect("journal lock poisoned");
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Renders and appends one tick record:
    /// `{"tick":…,"counters":{…},"gauges":{…},"latency":{…},"alerts":[…],"slo":[…],"ck":…}`.
    ///
    /// The `counters` and `gauges` sections are deterministic under the
    /// manual-tick contract; `latency` (quantile tracks) carries
    /// wall-clock data — CI strips it (and the checksum that covers it)
    /// before diffing against the pinned expectation.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write/flush failure.
    pub fn append_tick(
        &self,
        sample: &TickSample,
        fired: &[Alert],
        slo_status: &[String],
    ) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut fields = format!("\"tick\":{}", sample.tick);
        let section = |name: &str, points: &[(String, f64)]| {
            let mut out = format!(",\"{name}\":{{");
            for (i, (k, v)) in points.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":{}", number(*v));
            }
            out.push('}');
            out
        };
        fields.push_str(&section("counters", &sample.counters));
        fields.push_str(&section("gauges", &sample.gauges));
        fields.push_str(&section("latency", &sample.quantiles));
        fields.push_str(",\"alerts\":[");
        for (i, alert) in fired.iter().enumerate() {
            if i > 0 {
                fields.push(',');
            }
            fields.push_str(&alert.to_json());
        }
        fields.push_str("],\"slo\":[");
        for (i, status) in slo_status.iter().enumerate() {
            if i > 0 {
                fields.push(',');
            }
            fields.push_str(status);
        }
        fields.push(']');
        self.append(&fields)
    }
}

/// Whether one journal line's embedded checksum matches its prefix.
fn line_checksum_valid(line: &[u8]) -> bool {
    if line.len() < CK_MARKER.len() + CK_SUFFIX_LEN + 2 || !line.ends_with(b"\"}") {
        return false;
    }
    let split = line.len() - CK_SUFFIX_LEN;
    let (prefix, suffix) = line.split_at(split);
    if !prefix.ends_with(CK_MARKER.as_bytes()) {
        return false;
    }
    let Ok(hex) = std::str::from_utf8(&suffix[..16]) else {
        return false;
    };
    let Ok(claimed) = u64::from_str_radix(hex, 16) else {
        return false;
    };
    claimed == fnv1a(prefix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir();
        dir.join(format!("rapids_telemetry_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn journal_round_trips_and_counts_recovered_lines() {
        let path = temp_journal("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::open(&path).unwrap();
            assert_eq!(journal.recovered_lines(), 0);
            journal.append("\"tick\":0,\"counters\":{}").unwrap();
            journal.append("\"tick\":1,\"counters\":{\"a\":2}").unwrap();
        }
        let journal = Journal::open(&path).unwrap();
        assert_eq!(journal.recovered_lines(), 2);
        assert_eq!(journal.dropped_tail_bytes(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line_checksum_valid(line.as_bytes()), "{line}");
            assert!(line.starts_with("{\"tick\":") && line.ends_with("\"}"));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_byte_boundary() {
        let path = temp_journal("torn");
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::open(&path).unwrap();
            journal.append("\"tick\":0,\"x\":1").unwrap();
            journal.append("\"tick\":1,\"x\":2").unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let first_line_len =
            full.iter().position(|&b| b == b'\n').expect("two whole lines on disk") + 1;

        // Tear the second line at every possible byte boundary: replay
        // must keep exactly the first line and truncate the rest.
        for cut in first_line_len..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let journal = Journal::open(&path).unwrap();
            assert_eq!(journal.recovered_lines(), 1, "cut at {cut}");
            assert_eq!(journal.dropped_tail_bytes(), (cut - first_line_len) as u64);
            assert_eq!(std::fs::read(&path).unwrap(), &full[..first_line_len]);
        }

        // A corrupted (bit-flipped) middle byte of the final line is
        // dropped the same way.
        let mut corrupt = full.clone();
        let target = first_line_len + 5;
        corrupt[target] ^= 0x01;
        std::fs::write(&path, &corrupt).unwrap();
        let journal = Journal::open(&path).unwrap();
        assert_eq!(journal.recovered_lines(), 1);
        assert_eq!(std::fs::read(&path).unwrap(), &full[..first_line_len]);

        // And appends after a truncating replay keep the journal valid.
        journal.append("\"tick\":1,\"x\":9").unwrap();
        drop(journal);
        assert_eq!(Journal::open(&path).unwrap().recovered_lines(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn plane_ticks_detect_and_retain_alerts() {
        let registry = Registry::new();
        let config = TelemetryConfig {
            cusum: vec![CusumConfig::fixed("serve.test_plane_jobs", 0.0, 0.5, 2.0)],
            slos: vec![SloConfig {
                name: "test-slo".to_string(),
                bad_series: "serve.test_plane_bad".to_string(),
                total_series: "serve.test_plane_jobs".to_string(),
                target: 0.5,
            }],
            manual: true,
            ..TelemetryConfig::default()
        };
        let plane = TelemetryPlane::new(registry.clone(), config);
        assert!(plane.is_manual());

        let jobs = registry.counter("serve.test_plane_jobs");
        let bad = registry.counter("serve.test_plane_bad");

        // Flat ticks: nothing fires.
        assert!(plane.tick_now().is_empty());
        assert!(plane.tick_now().is_empty());

        // A burst of 4 jobs/tick (drift 0.5, threshold 2) fires CUSUM
        // immediately; 3 of them bad fires the SLO too (3/4 > 0.5).
        jobs.add(4);
        bad.add(3);
        let fired = plane.tick_now();
        assert_eq!(fired.len(), 2, "{fired:?}");
        assert_eq!(plane.alerts().len(), 2);
        let reply = plane.alerts_json();
        assert!(reply.starts_with("{\"ok\":\"alerts\",\"alerts\":[{\"kind\":\"cusum\""), "{reply}");
        assert!(reply.contains("\"kind\":\"slo\"") && reply.contains("\"breached\":true"));

        // Series are queryable through the plane.
        let series = plane.series_json("serve.test_plane_jobs", 2).unwrap();
        assert!(series.contains("\"points\":[[1,0],[2,4]]"), "{series}");
        assert!(plane.series_json("no.such.series", 0).is_none());
        assert_eq!(plane.ticks(), 3);
    }

    #[test]
    fn wall_clock_sampler_ticks_and_joins_on_drop() {
        let plane = Arc::new(TelemetryPlane::new(
            Registry::new(),
            TelemetryConfig { manual: false, ..TelemetryConfig::default() },
        ));
        let sampler = WallClockSampler::spawn(Arc::clone(&plane), Duration::from_millis(20));
        let deadline = Instant::now() + Duration::from_secs(10);
        while plane.ticks() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(plane.ticks() >= 2, "wall-clock ticks must accumulate");
        let start = Instant::now();
        drop(sampler);
        assert!(start.elapsed() < Duration::from_secs(5), "drop must join promptly");
    }
}
