//! The execution core: runs one job end to end, with result caching.
//!
//! The [`Engine`] is the part of the service that is shared across
//! batches, TCP connections and worker threads: it owns the result cache
//! and the run-count probes.  `execute` never panics and never returns an
//! error — every failure mode (unknown suite name, unreadable file, BLIF
//! parse error, optimizer panic) is captured as a `Failed` report so one
//! poisoned job cannot take down a batch or a connection.
//!
//! The result cache can be **bounded** ([`Engine::with_cache_capacity`],
//! `rapids-serve --cache-max-entries`): when full, the least-recently-used
//! entry is evicted on insert, so a long-running listener's memory stays
//! flat under an unbounded stream of distinct designs.  Evictions are
//! counted ([`Engine::cache_evictions`], the `stats` protocol line).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rapids_flow::netlist::Network;
use rapids_flow::{CircuitSource, Pipeline, PipelineConfig};

use crate::fingerprint::{config_fingerprint, fnv1a, netlist_fingerprint};
use crate::job::{Job, JobSource};
use crate::report::{DesignQor, JobOutcome, JobReport};

/// The bounded LRU result cache (unbounded when `capacity` is `None`).
///
/// Recency is a monotone tick bumped on every hit and insert; eviction
/// scans for the minimum tick, which is O(n) but runs only when a full
/// cache inserts — negligible next to the optimizer run that produced the
/// entry.
#[derive(Debug)]
struct LruCache {
    capacity: Option<usize>,
    entries: HashMap<(u64, u64), (DesignQor, u64)>,
    tick: u64,
    evictions: usize,
}

impl LruCache {
    fn new(capacity: Option<usize>) -> Self {
        LruCache { capacity, entries: HashMap::new(), tick: 0, evictions: 0 }
    }

    fn get(&mut self, key: &(u64, u64)) -> Option<DesignQor> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(qor, used)| {
            *used = tick;
            qor.clone()
        })
    }

    fn insert(&mut self, key: (u64, u64), qor: DesignQor) {
        self.tick += 1;
        let fresh = self.entries.insert(key, (qor, self.tick)).is_none();
        if let Some(capacity) = self.capacity {
            if fresh && self.entries.len() > capacity {
                // Evict the least-recently-used entry (never the one just
                // inserted — its tick is the maximum).
                let oldest = self
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, used))| *used)
                    .map(|(&k, _)| k)
                    .expect("a full cache has entries");
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
    }
}

/// Shared execution core: base configuration, result cache, probes.
#[derive(Debug)]
pub struct Engine {
    base: PipelineConfig,
    cache: Mutex<LruCache>,
    /// Second-level memo: (spec fingerprint, config fingerprint) → netlist
    /// fingerprint, so a *literally repeated* submission skips generation
    /// and technology mapping too, not just the optimizer.  Only specs
    /// whose content is fully determined by the spec itself (suite names,
    /// inline text) are memoized — a `.blif` file's bytes can change
    /// between submissions, so file jobs always re-resolve.
    spec_memo: Mutex<HashMap<(u64, u64), u64>>,
    optimizer_runs: AtomicUsize,
    cache_hits: AtomicUsize,
    resolutions: AtomicUsize,
}

impl Engine {
    /// An engine whose jobs default to `base` (per-job specs may override
    /// individual knobs; see [`Job::from_spec_line`]) and whose result
    /// cache is unbounded.
    pub fn new(base: PipelineConfig) -> Self {
        Self::with_capacity(base, None)
    }

    /// [`Engine::new`] with the result cache bounded to `capacity` entries
    /// (LRU eviction on insert).  `0` means *unbounded*, same as
    /// [`Engine::new`] — a zero-entry cache would silently recompute every
    /// submission, which no caller ever wants.
    pub fn with_cache_capacity(base: PipelineConfig, capacity: usize) -> Self {
        Self::with_capacity(base, (capacity > 0).then_some(capacity))
    }

    fn with_capacity(base: PipelineConfig, capacity: Option<usize>) -> Self {
        Engine {
            base,
            cache: Mutex::new(LruCache::new(capacity)),
            spec_memo: Mutex::new(HashMap::new()),
            optimizer_runs: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            resolutions: AtomicUsize::new(0),
        }
    }

    /// The configuration jobs are resolved against.
    pub fn base_config(&self) -> &PipelineConfig {
        &self.base
    }

    /// How many times the optimizer actually ran (cache misses).  This is
    /// the probe the cache tests assert on: a resubmission that hits the
    /// cache leaves it unchanged.
    pub fn optimizer_runs(&self) -> usize {
        self.optimizer_runs.load(Ordering::Relaxed)
    }

    /// How many jobs were served from the cache without recompute.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of distinct (netlist, config) results currently cached.
    pub fn cached_results(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").entries.len()
    }

    /// How many cached results were evicted by the LRU bound (always 0 for
    /// an unbounded cache).
    pub fn cache_evictions(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").evictions
    }

    /// How many times a circuit was actually resolved (generated/parsed
    /// and mapped).  Repeat suite/inline submissions skip this via the
    /// spec memo; `.blif` file jobs never do.
    pub fn resolutions(&self) -> usize {
        self.resolutions.load(Ordering::Relaxed)
    }

    /// Runs one job to completion: resolve the source, consult the cache,
    /// optimize on a miss, and return the report.  Infallible by design —
    /// errors and panics become `Failed` reports.
    pub fn execute(&self, job: &Job) -> JobReport {
        let fail = |error: String| JobReport {
            job: job.name.clone(),
            outcome: JobOutcome::Failed(error),
            cached: false,
        };

        let config_fp = config_fingerprint(&job.config);
        let hit = |qor: DesignQor| JobReport {
            job: job.name.clone(),
            outcome: JobOutcome::Done(qor),
            cached: true,
        };

        // Fast path: a literally repeated submission (same spec, same
        // config) already knows its netlist fingerprint, so it can answer
        // from the result cache without re-generating or re-mapping.
        let spec_key = spec_fingerprint(&job.source).map(|spec_fp| (spec_fp, config_fp));
        if let Some(spec_key) = spec_key {
            let memoized =
                self.spec_memo.lock().expect("spec memo lock poisoned").get(&spec_key).copied();
            if let Some(netlist_fp) = memoized {
                let cached =
                    self.cache.lock().expect("cache lock poisoned").get(&(netlist_fp, config_fp));
                if let Some(qor) = cached {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return hit(qor);
                }
            }
        }

        // Resolve to the mapped network: the cache key is defined over
        // *content*, so equal designs hit regardless of how they were
        // submitted (suite name, file path, inline text).
        self.resolutions.fetch_add(1, Ordering::Relaxed);
        let pipeline = Pipeline::new(job.config.clone());
        let source = match &job.source {
            JobSource::Suite(name) => CircuitSource::Suite(name.clone()),
            JobSource::BlifFile(path) => {
                CircuitSource::BlifFile { path: path.clone(), max_fanin: job.config.map_max_fanin }
            }
            JobSource::BlifText(text) => {
                CircuitSource::Blif { text: text.clone(), max_fanin: job.config.map_max_fanin }
            }
        };
        let network = match resolve_guarded(&pipeline, source) {
            Ok(network) => network,
            Err(error) => return fail(error),
        };

        let netlist_fp = netlist_fingerprint(&network);
        if let Some(spec_key) = spec_key {
            self.spec_memo.lock().expect("spec memo lock poisoned").insert(spec_key, netlist_fp);
        }
        let key = (netlist_fp, config_fp);
        if let Some(qor) = self.cache.lock().expect("cache lock poisoned").get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return hit(qor);
        }

        self.optimizer_runs.fetch_add(1, Ordering::Relaxed);
        let comparison = catch_unwind(AssertUnwindSafe(|| {
            pipeline.compare_optimizers(CircuitSource::Mapped(network))
        }));
        let qor = match comparison {
            Ok(Ok(comparison)) => DesignQor::from_comparison(&comparison),
            Ok(Err(e)) => return fail(e.to_string()),
            Err(payload) => {
                return fail(format!("optimizer panicked: {}", panic_message(&payload)))
            }
        };

        // Two workers racing on the same key both compute and both insert;
        // the values are identical by determinism, so last-write-wins is
        // benign and cheaper than holding the lock across the optimizer.
        self.cache.lock().expect("cache lock poisoned").insert(key, qor.clone());
        JobReport { job: job.name.clone(), outcome: JobOutcome::Done(qor), cached: false }
    }
}

/// Fingerprint of a job *spec* whose circuit content is fully determined
/// by the spec itself; `None` for file-backed sources, whose bytes can
/// change between submissions.
fn spec_fingerprint(source: &JobSource) -> Option<u64> {
    match source {
        JobSource::Suite(name) => Some(fnv1a(format!("suite\u{0}{name}").as_bytes())),
        JobSource::BlifText(text) => Some(fnv1a(format!("text\u{0}{text}").as_bytes())),
        JobSource::BlifFile(_) => None,
    }
}

/// `Pipeline::build_network` behind a panic guard, with errors rendered.
fn resolve_guarded(pipeline: &Pipeline, source: CircuitSource) -> Result<Network, String> {
    match catch_unwind(AssertUnwindSafe(|| pipeline.build_network(source))) {
        Ok(Ok(network)) => Ok(network),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!("circuit resolution panicked: {}", panic_message(&payload))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(PipelineConfig::fast())
    }

    #[test]
    fn unknown_suite_name_fails_without_panicking() {
        let e = engine();
        let report = e.execute(&Job::suite("made_up", e.base_config()));
        assert!(!report.is_done());
        assert!(matches!(&report.outcome, JobOutcome::Failed(msg) if msg.contains("made_up")));
        assert_eq!(e.optimizer_runs(), 0);
    }

    #[test]
    fn unparsable_blif_text_fails_cleanly() {
        let e = engine();
        let job = Job::blif_text("poison", "this is not blif", e.base_config());
        let report = e.execute(&job);
        assert!(matches!(&report.outcome, JobOutcome::Failed(msg) if msg.contains("parse error")));
    }

    #[test]
    fn missing_blif_file_reports_the_path() {
        let e = engine();
        let job = Job::blif_file("ghost", "/no/such/file.blif", e.base_config());
        let report = e.execute(&job);
        assert!(matches!(&report.outcome, JobOutcome::Failed(msg) if msg.contains("file.blif")));
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let e = Engine::with_cache_capacity(PipelineConfig::fast(), 2);
        for name in ["c432", "alu2", "c499"] {
            assert!(e.execute(&Job::suite(name, e.base_config())).is_done());
        }
        // Capacity 2: the third insert evicted the least-recent (c432).
        assert_eq!(e.cached_results(), 2);
        assert_eq!(e.cache_evictions(), 1);
        assert_eq!(e.optimizer_runs(), 3);
        // Touch alu2 (hit, refreshes recency), then insert a fourth design:
        // c499 — now the least-recent — is the one evicted.
        assert!(e.execute(&Job::suite("alu2", e.base_config())).cached);
        assert!(e.execute(&Job::suite("c1908", e.base_config())).is_done());
        assert_eq!(e.cache_evictions(), 2);
        assert!(e.execute(&Job::suite("alu2", e.base_config())).cached, "alu2 was kept");
        assert_eq!(e.optimizer_runs(), 4);
        assert!(!e.execute(&Job::suite("c499", e.base_config())).cached, "c499 was evicted");
        assert_eq!(e.optimizer_runs(), 5);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        // Capacity 0 means unbounded, matching `Engine::new`.
        let e = Engine::with_cache_capacity(PipelineConfig::fast(), 0);
        for name in ["c432", "alu2", "c499"] {
            e.execute(&Job::suite(name, e.base_config()));
        }
        assert_eq!(e.cached_results(), 3);
        assert_eq!(e.cache_evictions(), 0);
    }

    #[test]
    fn cache_serves_resubmissions_without_recompute() {
        let e = engine();
        let suite = Job::suite("c432", e.base_config());
        let first = e.execute(&suite);
        assert!(first.is_done() && !first.cached);
        assert_eq!(e.optimizer_runs(), 1);

        // Resubmission: cache hit, byte-identical line, no recompute —
        // and the spec memo skips even generation/mapping.
        let second = e.execute(&suite);
        assert!(second.cached);
        assert_eq!(e.optimizer_runs(), 1);
        assert_eq!(e.cache_hits(), 1);
        assert_eq!(e.resolutions(), 1, "repeat suite submission must not re-resolve");
        assert_eq!(first.to_jsonl(), second.to_jsonl());

        // Different config (seed) → miss.
        let mut other = Job::suite("c432", e.base_config());
        other.config.seed ^= 1;
        assert!(!e.execute(&other).cached);
        assert_eq!(e.optimizer_runs(), 2);
        assert_eq!(e.cached_results(), 2);
    }
}
