//! The execution core: runs one job end to end, with result caching.
//!
//! The [`Engine`] is the part of the service that is shared across
//! batches, TCP connections and worker threads: it owns the result cache
//! and the run-count probes.  `execute` never panics and never returns an
//! error — every failure mode (unknown suite name, unreadable file, BLIF
//! parse error, optimizer panic) is captured as a `Failed` report so one
//! poisoned job cannot take down a batch or a connection.
//!
//! The result cache can be **bounded** ([`Engine::with_cache_capacity`],
//! `rapids-serve --cache-max-entries`): when full, the least-recently-used
//! entry is evicted on insert, so a long-running listener's memory stays
//! flat under an unbounded stream of distinct designs.  Evictions are
//! counted ([`Engine::cache_evictions`], the `stats` protocol line).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rapids_flow::netlist::Network;
use rapids_flow::{CancelToken, CircuitSource, Pipeline, PipelineConfig};

use crate::faults::{FaultPlan, FaultPoint};
use crate::fingerprint::{config_fingerprint, fnv1a, netlist_fingerprint};
use crate::job::{Job, JobSource};
use crate::report::{DesignQor, JobOutcome, JobReport, VerifyVerdict};
use crate::retry::{is_transient_io, with_backoff, BackoffPolicy};
use crate::store::ResultStore;

/// The bounded LRU result cache (unbounded when `capacity` is `None`).
///
/// Recency is a monotone tick bumped on every hit and insert; eviction
/// scans for the minimum tick, which is O(n) but runs only when a full
/// cache inserts — negligible next to the optimizer run that produced the
/// entry.
#[derive(Debug)]
struct LruCache {
    capacity: Option<usize>,
    entries: HashMap<(u64, u64), (DesignQor, u64)>,
    tick: u64,
    evictions: usize,
}

impl LruCache {
    fn new(capacity: Option<usize>) -> Self {
        LruCache { capacity, entries: HashMap::new(), tick: 0, evictions: 0 }
    }

    fn get(&mut self, key: &(u64, u64)) -> Option<DesignQor> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(qor, used)| {
            *used = tick;
            qor.clone()
        })
    }

    fn insert(&mut self, key: (u64, u64), qor: DesignQor) {
        self.tick += 1;
        let fresh = self.entries.insert(key, (qor, self.tick)).is_none();
        if let Some(capacity) = self.capacity {
            if fresh && self.entries.len() > capacity {
                // Evict the least-recently-used entry (never the one just
                // inserted — its tick is the maximum).
                let oldest = self
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, used))| *used)
                    .map(|(&k, _)| k)
                    .expect("a full cache has entries");
                self.entries.remove(&oldest);
                self.evictions += 1;
                rapids_obs::metrics::counter("serve.evictions").inc();
            }
        }
    }
}

/// Shared execution core: base configuration, result cache, probes.
#[derive(Debug)]
pub struct Engine {
    base: PipelineConfig,
    cache: Mutex<LruCache>,
    /// Second-level memo: (spec fingerprint, config fingerprint) → netlist
    /// fingerprint, so a *literally repeated* submission skips generation
    /// and technology mapping too, not just the optimizer.  Only specs
    /// whose content is fully determined by the spec itself (suite names,
    /// inline text) are memoized — a `.blif` file's bytes can change
    /// between submissions, so file jobs always re-resolve.
    spec_memo: Mutex<HashMap<(u64, u64), u64>>,
    /// Optional crash-safe on-disk spill of the result cache; consulted on
    /// memory misses, appended to on fresh computes.
    store: Option<ResultStore>,
    /// The armed fault-injection plan (empty — a no-op — by default).
    faults: Arc<FaultPlan>,
    /// Retry budget for transient file I/O (BLIF reads, store appends).
    backoff: BackoffPolicy,
    /// Verdicts of `verify` jobs, keyed by the *(fingerprint A,
    /// fingerprint B)* netlist pair — resubmitting the same pair answers
    /// from here, byte-identically, without re-running the SAT check.
    verify_cache: Mutex<HashMap<(u64, u64), VerifyVerdict>>,
    /// Per-engine metrics registry: run/hit counters and the per-job
    /// latency histogram live here (not in the process-global registry),
    /// so each engine's tallies stay exact under concurrent engines — the
    /// cache tests assert exact counts.  [`Engine::metrics_snapshot`]
    /// merges this registry over the global one.
    metrics: rapids_obs::Registry,
    optimizer_runs: rapids_obs::Counter,
    verify_runs: rapids_obs::Counter,
    cache_hits: rapids_obs::Counter,
    resolutions: rapids_obs::Counter,
    job_us: rapids_obs::Histogram,
    /// Jobs claimed by a batch worker but not yet started (set by the
    /// scheduler; see `BatchServer`).
    queue_depth: rapids_obs::Gauge,
    /// Jobs currently inside [`Engine::execute`], across all threads.
    inflight: rapids_obs::Gauge,
    /// The armed telemetry plane, if any (see [`crate::telemetry`]).
    /// `None` — the default — keeps the job hot path allocation-free:
    /// [`Engine::telemetry_tick`] is a single branch.
    telemetry: Option<Arc<crate::telemetry::TelemetryPlane>>,
}

impl Engine {
    /// An engine whose jobs default to `base` (per-job specs may override
    /// individual knobs; see [`Job::from_spec_line`]) and whose result
    /// cache is unbounded.
    pub fn new(base: PipelineConfig) -> Self {
        Self::with_capacity(base, None)
    }

    /// [`Engine::new`] with the result cache bounded to `capacity` entries
    /// (LRU eviction on insert).  `0` means *unbounded*, same as
    /// [`Engine::new`] — a zero-entry cache would silently recompute every
    /// submission, which no caller ever wants.
    pub fn with_cache_capacity(base: PipelineConfig, capacity: usize) -> Self {
        Self::with_capacity(base, (capacity > 0).then_some(capacity))
    }

    fn with_capacity(base: PipelineConfig, capacity: Option<usize>) -> Self {
        let metrics = rapids_obs::Registry::new();
        Engine {
            base,
            cache: Mutex::new(LruCache::new(capacity)),
            spec_memo: Mutex::new(HashMap::new()),
            store: None,
            faults: Arc::new(FaultPlan::default()),
            backoff: BackoffPolicy::default(),
            verify_cache: Mutex::new(HashMap::new()),
            optimizer_runs: metrics.counter("serve.optimizer_runs"),
            verify_runs: metrics.counter("serve.verify_runs"),
            cache_hits: metrics.counter("serve.cache_hits"),
            resolutions: metrics.counter("serve.resolutions"),
            job_us: metrics.histogram("serve.job_us"),
            queue_depth: metrics.gauge("serve.queue_depth"),
            inflight: metrics.gauge("serve.inflight_jobs"),
            telemetry: None,
            metrics,
        }
    }

    /// Arms a telemetry plane (see [`crate::telemetry::TelemetryPlane`]):
    /// in manual mode the serve layer ticks it after each completed job
    /// via [`Engine::telemetry_tick`].
    pub fn with_telemetry(mut self, plane: Arc<crate::telemetry::TelemetryPlane>) -> Self {
        self.telemetry = Some(plane);
        self
    }

    /// Attaches a crash-safe on-disk result store (see [`ResultStore`]):
    /// memory-cache misses consult it before computing, fresh results are
    /// appended to it, and restarts with the same store directory are
    /// cache-warm.
    pub fn with_store(mut self, store: ResultStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Arms a fault-injection plan (tests, `--fault-plan`).  The default
    /// plan is empty and never fires.
    pub fn with_fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = Arc::new(faults);
        self
    }

    /// The attached on-disk store, if any.
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// The armed fault plan (the empty, never-firing plan by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Results served from the on-disk store (0 without a store).
    pub fn disk_hits(&self) -> usize {
        self.store.as_ref().map_or(0, ResultStore::disk_hits)
    }

    /// Records the attached store replayed at open (0 without a store).
    pub fn recovered_records(&self) -> usize {
        self.store.as_ref().map_or(0, ResultStore::recovered_records)
    }

    /// Torn/corrupt store records dropped at open (0 without a store).
    pub fn dropped_corrupt_records(&self) -> usize {
        self.store.as_ref().map_or(0, ResultStore::dropped_corrupt_records)
    }

    /// The configuration jobs are resolved against.
    pub fn base_config(&self) -> &PipelineConfig {
        &self.base
    }

    /// How many times the optimizer actually ran (cache misses).  This is
    /// the probe the cache tests assert on: a resubmission that hits the
    /// cache leaves it unchanged.
    pub fn optimizer_runs(&self) -> usize {
        self.optimizer_runs.get() as usize
    }

    /// How many times the SAT equivalence checker actually ran (verify-job
    /// cache misses).
    pub fn verify_runs(&self) -> usize {
        self.verify_runs.get() as usize
    }

    /// Number of distinct netlist pairs with a cached verify verdict.
    pub fn cached_verifications(&self) -> usize {
        self.verify_cache.lock().expect("verify cache lock poisoned").len()
    }

    /// How many jobs were served from the cache without recompute.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits.get() as usize
    }

    /// Number of distinct (netlist, config) results currently cached.
    pub fn cached_results(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").entries.len()
    }

    /// How many cached results were evicted by the LRU bound (always 0 for
    /// an unbounded cache).
    pub fn cache_evictions(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").evictions
    }

    /// How many times a circuit was actually resolved (generated/parsed
    /// and mapped).  Repeat suite/inline submissions skip this via the
    /// spec memo; `.blif` file jobs never do.
    pub fn resolutions(&self) -> usize {
        self.resolutions.get() as usize
    }

    /// Per-job wall-clock latency distribution (microseconds), over every
    /// [`Engine::execute`] call — hits and misses alike.
    pub fn job_latency_us(&self) -> rapids_obs::metrics::HistogramSnapshot {
        self.job_us.snapshot()
    }

    /// One merged metrics snapshot: the process-global registry (timing,
    /// sizing, legalize, cec, serve-wide counters) overlaid with this
    /// engine's per-instance counters and latency histogram.
    pub fn metrics_snapshot(&self) -> rapids_obs::Snapshot {
        let mut snapshot = rapids_obs::global().snapshot();
        snapshot.merge(&self.metrics.snapshot());
        snapshot
    }

    /// This engine's per-instance registry (a cheap shared handle) — what
    /// a [`TelemetryPlane`](crate::telemetry::TelemetryPlane) merges over
    /// the global registry each tick.
    pub fn metrics_registry(&self) -> rapids_obs::Registry {
        self.metrics.clone()
    }

    /// The armed telemetry plane, if any.
    pub fn telemetry(&self) -> Option<&Arc<crate::telemetry::TelemetryPlane>> {
        self.telemetry.as_ref()
    }

    /// Takes one **manual** telemetry tick, when a plane is armed in
    /// manual mode.  The serve layer calls this at quiescent points —
    /// after a job finishes, before its report is handed on — so the tick
    /// sequence is a pure function of the workload.  A no-op (one branch,
    /// zero allocations) without a plane; a no-op in wall-clock mode,
    /// where the [`WallClockSampler`](crate::telemetry::WallClockSampler)
    /// thread owns the cadence.
    pub fn telemetry_tick(&self) {
        if let Some(plane) = &self.telemetry {
            if plane.is_manual() {
                plane.tick_now();
            }
        }
    }

    /// Publishes the batch scheduler's unclaimed-job count to the
    /// `serve.queue_depth` gauge.
    pub fn set_queue_depth(&self, depth: i64) {
        self.queue_depth.set(depth);
    }

    /// Probes the two cache levels for `key`: the in-memory LRU first,
    /// then the on-disk store (promoting a disk hit into memory so later
    /// submissions stay hot).  A store-read fault degrades gracefully to a
    /// miss — the job recomputes instead of failing.
    fn probe_caches(&self, key: (u64, u64), name: &str) -> Option<DesignQor> {
        if let Some(qor) = self.cache.lock().expect("cache lock poisoned").get(&key) {
            self.cache_hits.inc();
            return Some(qor);
        }
        let store = self.store.as_ref()?;
        if self.faults.fire(FaultPoint::StoreRead, Some(name), None).is_err() {
            return None;
        }
        let qor = store.lookup(key)?;
        self.cache.lock().expect("cache lock poisoned").insert(key, qor.clone());
        Some(qor)
    }

    /// Spills a freshly computed result to the on-disk store (when one is
    /// attached), retrying transient write failures.  A permanently failed
    /// append costs only durability — the job still reports `done` from
    /// the in-memory result.
    fn spill_to_store(&self, key: (u64, u64), qor: &DesignQor, name: &str) {
        let Some(store) = self.store.as_ref() else { return };
        let _store_span = rapids_obs::span("serve.store");
        let _ = with_backoff(&self.backoff, is_transient_io, || {
            self.faults.fire(FaultPoint::StoreWrite, Some(name), None)?;
            store.append(key, qor)
        });
    }

    /// Runs one job to completion: resolve the source, consult the caches,
    /// optimize on a miss (under the job's deadline, when it has one), and
    /// return the report.  Infallible by design — errors, panics and
    /// timeouts become `Failed` reports.
    pub fn execute(&self, job: &Job) -> JobReport {
        let _job_span = rapids_obs::span("serve.job");
        let start = Instant::now();
        self.inflight.add(1);
        let report = self.execute_inner(job);
        self.inflight.add(-1);
        self.job_us.record(start.elapsed().as_micros() as u64);
        report
    }

    fn execute_inner(&self, job: &Job) -> JobReport {
        let fail = |error: String| JobReport {
            job: job.name.clone(),
            outcome: JobOutcome::Failed(error),
            cached: false,
        };

        if job.verify_with.is_some() {
            return self.execute_verify(job);
        }

        let config_fp = config_fingerprint(&job.config);
        let hit = |qor: DesignQor| JobReport {
            job: job.name.clone(),
            outcome: JobOutcome::Done(qor),
            cached: true,
        };

        // Fast path: a literally repeated submission (same spec, same
        // config) already knows its netlist fingerprint, so it can answer
        // from the result cache without re-generating or re-mapping.
        let spec_key = spec_fingerprint(&job.source).map(|spec_fp| (spec_fp, config_fp));
        if let Some(spec_key) = spec_key {
            let memoized =
                self.spec_memo.lock().expect("spec memo lock poisoned").get(&spec_key).copied();
            if let Some(netlist_fp) = memoized {
                if let Some(qor) = self.probe_caches((netlist_fp, config_fp), &job.name) {
                    return hit(qor);
                }
            }
        }

        // Resolve to the mapped network: the cache key is defined over
        // *content*, so equal designs hit regardless of how they were
        // submitted (suite name, file path, inline text).
        let pipeline = Pipeline::new(job.config.clone());
        let network = match self.resolve_source(&pipeline, &job.name, &job.source) {
            Ok(network) => network,
            Err(error) => return fail(error),
        };

        let netlist_fp = netlist_fingerprint(&network);
        if let Some(spec_key) = spec_key {
            self.spec_memo.lock().expect("spec memo lock poisoned").insert(spec_key, netlist_fp);
        }
        let key = (netlist_fp, config_fp);
        if let Some(qor) = self.probe_caches(key, &job.name) {
            return hit(qor);
        }

        // Cache miss: run the optimizer flow, under a watchdog when the
        // job carries a deadline.  The watchdog cancels the token at the
        // deadline; the optimizer pass loops poll it cooperatively, so an
        // over-deadline job stops at the next pass boundary (or mid-sleep
        // for an injected hang) — never a wedged worker.
        self.optimizer_runs.inc();
        let run_span = rapids_obs::span("serve.run");
        let token = CancelToken::new();
        let watchdog =
            job.timeout_s.map(|secs| Watchdog::arm(token.clone(), Duration::from_secs_f64(secs)));
        let comparison = catch_unwind(AssertUnwindSafe(|| {
            self.faults
                .fire(FaultPoint::JobRun, Some(&job.name), Some(&token))
                .map_err(|e| e.to_string())?;
            pipeline
                .compare_optimizers_cancellable(CircuitSource::Mapped(network), &token)
                .map_err(|e| e.to_string())
        }));
        drop(watchdog);
        drop(run_span);
        // The deadline verdict comes first: a cancelled run's result — even
        // a structurally valid one the cooperative stop produced — was cut
        // short, and reporting it as `done` would cache a truncated QoR.
        if token.is_cancelled() {
            rapids_obs::metrics::counter("serve.deadline_cuts").inc();
            let secs = job.timeout_s.unwrap_or(0.0);
            return fail(format!("timeout after {secs}s"));
        }
        let qor = match comparison {
            Ok(Ok(comparison)) => DesignQor::from_comparison(&comparison),
            Ok(Err(e)) => return fail(e),
            Err(payload) => {
                return fail(format!("optimizer panicked: {}", panic_message(payload.as_ref())))
            }
        };

        // Two workers racing on the same key both compute and both insert;
        // the values are identical by determinism, so last-write-wins is
        // benign and cheaper than holding the lock across the optimizer.
        self.cache.lock().expect("cache lock poisoned").insert(key, qor.clone());
        self.spill_to_store(key, &qor, &job.name);
        JobReport { job: job.name.clone(), outcome: JobOutcome::Done(qor), cached: false }
    }

    /// Resolves one job source to its mapped network — shared by the
    /// optimize and verify paths.  File reads go through the blif-read
    /// fault point and the transient-I/O retry, and parse/map failures
    /// carry the offending path.
    fn resolve_source(
        &self,
        pipeline: &Pipeline,
        job_name: &str,
        source: &JobSource,
    ) -> Result<Network, String> {
        self.resolutions.inc();
        let _resolve_span = rapids_obs::span("serve.resolve");
        let max_fanin = pipeline.config().map_max_fanin;
        let circuit = match source {
            JobSource::Suite(name) => CircuitSource::Suite(name.clone()),
            JobSource::BlifFile(path) => {
                let read = with_backoff(&self.backoff, is_transient_io, || {
                    self.faults.fire(FaultPoint::BlifRead, Some(job_name), None)?;
                    std::fs::read_to_string(path)
                });
                match read {
                    Ok(text) => CircuitSource::Blif { text, max_fanin },
                    Err(e) => return Err(format!("i/o error on `{}`: {e}", path.display())),
                }
            }
            JobSource::BlifText(text) => CircuitSource::Blif { text: text.clone(), max_fanin },
        };
        resolve_guarded(pipeline, circuit).map_err(|error| {
            // Inline text made from a file has lost its origin; put the
            // path back so parse/map failures stay attributable.
            match source {
                JobSource::BlifFile(path) => format!("`{}`: {error}", path.display()),
                _ => error,
            }
        })
    }

    /// Runs a `verify` job: resolve both sources, consult the verdict
    /// cache keyed by the netlist fingerprint *pair*, and on a miss decide
    /// equivalence with the SAT prover (under the job's deadline, when it
    /// has one).  A refuting model is cross-confirmed on the independent
    /// simulator before it is reported.
    fn execute_verify(&self, job: &Job) -> JobReport {
        let fail = |error: String| JobReport {
            job: job.name.clone(),
            outcome: JobOutcome::Failed(error),
            cached: false,
        };
        let against = job.verify_with.as_ref().expect("verify job has a second source");
        let pipeline = Pipeline::new(job.config.clone());
        let a = match self.resolve_source(&pipeline, &job.name, &job.source) {
            Ok(network) => network,
            Err(error) => return fail(error),
        };
        let b = match self.resolve_source(&pipeline, &job.name, against) {
            Ok(network) => network,
            Err(error) => return fail(error),
        };

        let key = (netlist_fingerprint(&a), netlist_fingerprint(&b));
        let cached =
            self.verify_cache.lock().expect("verify cache lock poisoned").get(&key).cloned();
        if let Some(verdict) = cached {
            self.cache_hits.inc();
            return JobReport {
                job: job.name.clone(),
                outcome: JobOutcome::Verified(verdict),
                cached: true,
            };
        }

        self.verify_runs.inc();
        let run_span = rapids_obs::span("serve.run");
        let token = CancelToken::new();
        let watchdog =
            job.timeout_s.map(|secs| Watchdog::arm(token.clone(), Duration::from_secs_f64(secs)));
        let cec_config = rapids_flow::cec::CecConfig {
            cancel: Some(token.clone()),
            ..rapids_flow::cec::CecConfig::default()
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.faults
                .fire(FaultPoint::Cec, Some(&job.name), Some(&token))
                .map_err(|e| e.to_string())?;
            Ok::<_, String>(rapids_flow::cec::check_equivalence(&a, &b, &cec_config))
        }));
        drop(watchdog);
        drop(run_span);
        if token.is_cancelled() {
            rapids_obs::metrics::counter("serve.deadline_cuts").inc();
            let secs = job.timeout_s.unwrap_or(0.0);
            return fail(format!("timeout after {secs}s"));
        }
        use rapids_flow::cec::CecResult;
        let verdict = match result {
            Ok(Ok(CecResult::EquivalentProven)) => VerifyVerdict::equivalent(),
            Ok(Ok(CecResult::NotEquivalent(cex))) => {
                // Cross-confirm the refuting vector on the simulator before
                // answering; a model that does not replay would be a solver
                // bug and must surface as a failure, not a bogus verdict.
                let sim_a = rapids_flow::sim::Simulator::new(&a);
                let sim_b = rapids_flow::sim::Simulator::new(&b);
                let ya = sim_a.simulate_bools(&a, &cex.inputs);
                let yb = sim_b.simulate_bools(&b, &cex.inputs);
                if ya[cex.output_index] == yb[cex.output_index] {
                    return fail(
                        "internal error: counterexample does not replay on the simulator".into(),
                    );
                }
                VerifyVerdict::counterexample(cex.input_bits(), cex.output_index)
            }
            Ok(Ok(CecResult::InterfaceMismatch { inputs, outputs })) => {
                return fail(format!(
                    "interface mismatch: {}x{} vs {}x{} inputs/outputs",
                    inputs.0, outputs.0, inputs.1, outputs.1
                ))
            }
            Ok(Ok(CecResult::Aborted(reason))) => return fail(format!("cec aborted: {reason}")),
            Ok(Err(e)) => return fail(e),
            Err(payload) => {
                return fail(format!("cec panicked: {}", panic_message(payload.as_ref())))
            }
        };
        self.verify_cache.lock().expect("verify cache lock poisoned").insert(key, verdict.clone());
        JobReport { job: job.name.clone(), outcome: JobOutcome::Verified(verdict), cached: false }
    }
}

/// A per-job deadline guard: a thread that cancels the job's token when
/// the deadline passes, and exits promptly (on drop) when the job finishes
/// first.  Purely time-based — it never inspects results, so it cannot
/// change what a within-deadline job reports.
#[derive(Debug)]
struct Watchdog {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn arm(token: CancelToken, timeout: Duration) -> Watchdog {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let deadline = Instant::now() + timeout;
            let (done, wake) = &*shared;
            let mut done = done.lock().expect("watchdog lock poisoned");
            loop {
                if *done {
                    return;
                }
                let now = Instant::now();
                if now >= deadline {
                    token.cancel();
                    return;
                }
                let (next, _) =
                    wake.wait_timeout(done, deadline - now).expect("watchdog lock poisoned");
                done = next;
            }
        });
        Watchdog { state, handle: Some(handle) }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let (done, wake) = &*self.state;
        *done.lock().expect("watchdog lock poisoned") = true;
        wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Fingerprint of a job *spec* whose circuit content is fully determined
/// by the spec itself; `None` for file-backed sources, whose bytes can
/// change between submissions.
fn spec_fingerprint(source: &JobSource) -> Option<u64> {
    match source {
        JobSource::Suite(name) => Some(fnv1a(format!("suite\u{0}{name}").as_bytes())),
        JobSource::BlifText(text) => Some(fnv1a(format!("text\u{0}{text}").as_bytes())),
        JobSource::BlifFile(_) => None,
    }
}

/// `Pipeline::build_network` behind a panic guard, with errors rendered.
fn resolve_guarded(pipeline: &Pipeline, source: CircuitSource) -> Result<Network, String> {
    match catch_unwind(AssertUnwindSafe(|| pipeline.build_network(source))) {
        Ok(Ok(network)) => Ok(network),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => {
            Err(format!("circuit resolution panicked: {}", panic_message(payload.as_ref())))
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(PipelineConfig::fast())
    }

    #[test]
    fn unknown_suite_name_fails_without_panicking() {
        let e = engine();
        let report = e.execute(&Job::suite("made_up", e.base_config()));
        assert!(!report.is_done());
        assert!(matches!(&report.outcome, JobOutcome::Failed(msg) if msg.contains("made_up")));
        assert_eq!(e.optimizer_runs(), 0);
    }

    #[test]
    fn unparsable_blif_text_fails_cleanly() {
        let e = engine();
        let job = Job::blif_text("poison", "this is not blif", e.base_config());
        let report = e.execute(&job);
        assert!(matches!(&report.outcome, JobOutcome::Failed(msg) if msg.contains("parse error")));
    }

    #[test]
    fn missing_blif_file_reports_the_path() {
        let e = engine();
        let job = Job::blif_file("ghost", "/no/such/file.blif", e.base_config());
        let report = e.execute(&job);
        assert!(matches!(&report.outcome, JobOutcome::Failed(msg) if msg.contains("file.blif")));
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let e = Engine::with_cache_capacity(PipelineConfig::fast(), 2);
        for name in ["c432", "alu2", "c499"] {
            assert!(e.execute(&Job::suite(name, e.base_config())).is_done());
        }
        // Capacity 2: the third insert evicted the least-recent (c432).
        assert_eq!(e.cached_results(), 2);
        assert_eq!(e.cache_evictions(), 1);
        assert_eq!(e.optimizer_runs(), 3);
        // Touch alu2 (hit, refreshes recency), then insert a fourth design:
        // c499 — now the least-recent — is the one evicted.
        assert!(e.execute(&Job::suite("alu2", e.base_config())).cached);
        assert!(e.execute(&Job::suite("c1908", e.base_config())).is_done());
        assert_eq!(e.cache_evictions(), 2);
        assert!(e.execute(&Job::suite("alu2", e.base_config())).cached, "alu2 was kept");
        assert_eq!(e.optimizer_runs(), 4);
        assert!(!e.execute(&Job::suite("c499", e.base_config())).cached, "c499 was evicted");
        assert_eq!(e.optimizer_runs(), 5);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        // Capacity 0 means unbounded, matching `Engine::new`.
        let e = Engine::with_cache_capacity(PipelineConfig::fast(), 0);
        for name in ["c432", "alu2", "c499"] {
            e.execute(&Job::suite(name, e.base_config()));
        }
        assert_eq!(e.cached_results(), 3);
        assert_eq!(e.cache_evictions(), 0);
    }

    #[test]
    fn cache_serves_resubmissions_without_recompute() {
        let e = engine();
        let suite = Job::suite("c432", e.base_config());
        let first = e.execute(&suite);
        assert!(first.is_done() && !first.cached);
        assert_eq!(e.optimizer_runs(), 1);

        // Resubmission: cache hit, byte-identical line, no recompute —
        // and the spec memo skips even generation/mapping.
        let second = e.execute(&suite);
        assert!(second.cached);
        assert_eq!(e.optimizer_runs(), 1);
        assert_eq!(e.cache_hits(), 1);
        assert_eq!(e.resolutions(), 1, "repeat suite submission must not re-resolve");
        assert_eq!(first.to_jsonl(), second.to_jsonl());

        // Different config (seed) → miss.
        let mut other = Job::suite("c432", e.base_config());
        other.config.seed ^= 1;
        assert!(!e.execute(&other).cached);
        assert_eq!(e.optimizer_runs(), 2);
        assert_eq!(e.cached_results(), 2);
    }

    use crate::faults::FaultAction;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rapids_engine_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_mux_path() -> String {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/fixtures/tiny_mux.blif").to_string()
    }

    #[test]
    fn injected_job_run_panic_becomes_a_failed_report() {
        let plan = FaultPlan::single(FaultPoint::JobRun, Some("c432"), 0, FaultAction::Panic);
        let e = Engine::new(PipelineConfig::fast()).with_fault_plan(plan);
        let report = e.execute(&Job::suite("c432", e.base_config()));
        assert!(
            matches!(&report.outcome,
                JobOutcome::Failed(msg) if msg.contains("optimizer panicked")
                    && msg.contains("injected panic at job-run")),
            "unexpected outcome: {:?}",
            report.outcome
        );
        // The engine is not wedged: an unfaulted job still runs.
        assert!(e.execute(&Job::suite("alu2", e.base_config())).is_done());
    }

    #[test]
    fn transient_blif_read_fault_is_retried_to_success() {
        // One injected error on the first read attempt; the backoff retry
        // absorbs it and the job completes as if nothing happened.
        let plan = FaultPlan::single(FaultPoint::BlifRead, None, 0, FaultAction::IoError);
        let e = Engine::new(PipelineConfig::fast()).with_fault_plan(plan);
        let report = e.execute(&Job::blif_file("tiny_mux", tiny_mux_path(), e.base_config()));
        assert!(report.is_done(), "retry should absorb the injected error: {:?}", report.outcome);
        assert_eq!(e.optimizer_runs(), 1);
    }

    #[test]
    fn persistent_blif_read_faults_exhaust_the_retry_budget() {
        // Every attempt fails → permanent failure carrying the path.
        let plan = FaultPlan::parse("blif-read=io").unwrap();
        let e = Engine::new(PipelineConfig::fast()).with_fault_plan(plan);
        let report = e.execute(&Job::blif_file("tiny_mux", tiny_mux_path(), e.base_config()));
        assert!(matches!(&report.outcome,
            JobOutcome::Failed(msg) if msg.contains("tiny_mux.blif")
                && msg.contains("injected i/o error")));
        assert_eq!(e.optimizer_runs(), 0);
    }

    #[test]
    fn disk_store_survives_engine_restart() {
        let dir = temp_dir("store");
        let first_line;
        {
            let e =
                Engine::new(PipelineConfig::fast()).with_store(ResultStore::open(&dir).unwrap());
            let report = e.execute(&Job::suite("c432", e.base_config()));
            assert!(report.is_done() && !report.cached);
            assert_eq!(e.optimizer_runs(), 1);
            first_line = report.to_jsonl();
        }
        // "Restart": a fresh engine, warm only from disk.
        let e = Engine::new(PipelineConfig::fast()).with_store(ResultStore::open(&dir).unwrap());
        assert_eq!(e.recovered_records(), 1);
        let report = e.execute(&Job::suite("c432", e.base_config()));
        assert!(report.cached, "second run must be served from the disk store");
        assert_eq!(e.optimizer_runs(), 0);
        assert_eq!(e.disk_hits(), 1);
        assert_eq!(report.to_jsonl(), first_line, "disk round trip is byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_write_faults_degrade_to_memory_only_operation() {
        // A store append that keeps failing must not fail the job.
        let dir = temp_dir("wfault");
        let plan = FaultPlan::parse("store-write@c432=io").unwrap();
        let e = Engine::new(PipelineConfig::fast())
            .with_store(ResultStore::open(&dir).unwrap())
            .with_fault_plan(plan);
        assert!(e.execute(&Job::suite("c432", e.base_config())).is_done());
        assert_eq!(e.store().unwrap().len(), 0, "append was suppressed by the fault");
        // Memory cache still answers.
        assert!(e.execute(&Job::suite("c432", e.base_config())).cached);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_cuts_an_injected_hang() {
        // A 60 s injected hang under a 0.2 s deadline: the watchdog cancels
        // the token, the sliced delay loop notices, and the job is reported
        // `Failed(timeout …)` — promptly, not after the full hang.
        let plan =
            FaultPlan::single(FaultPoint::JobRun, Some("c432"), 0, FaultAction::DelayMs(60_000));
        let e = Engine::new(PipelineConfig::fast()).with_fault_plan(plan);
        let mut job = Job::suite("c432", e.base_config());
        job.timeout_s = Some(0.2);
        let start = Instant::now();
        let report = e.execute(&job);
        assert!(start.elapsed() < Duration::from_secs(30), "watchdog must cut the 60 s hang");
        assert!(matches!(&report.outcome,
            JobOutcome::Failed(msg) if msg == "timeout after 0.2s"));
        assert!(!report.cached);
        // The worker is healthy: the next job runs to completion.
        assert!(e.execute(&Job::suite("alu2", e.base_config())).is_done());
    }

    fn fixture_path(name: &str) -> String {
        format!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/fixtures/{}"), name)
    }

    fn verify_job(name: &str, b: &str, config: &PipelineConfig) -> Job {
        Job::verify(
            name,
            JobSource::BlifFile(fixture_path("tiny_mux.blif").into()),
            JobSource::BlifFile(fixture_path(b).into()),
            config,
        )
    }

    #[test]
    fn verify_job_proves_equivalent_pair_and_caches_the_verdict() {
        let e = engine();
        let job = verify_job("pair", "tiny_mux_demorgan.blif", e.base_config());
        let first = e.execute(&job);
        assert!(first.is_done() && !first.cached);
        assert_eq!(
            first.to_jsonl(),
            "{\"job\":\"pair\",\"status\":\"verified\",\"equivalent\":true}"
        );
        assert_eq!(e.verify_runs(), 1);
        assert_eq!(e.optimizer_runs(), 0, "verify jobs never run the optimizer");

        // Resubmission: the fingerprint-pair cache answers byte-identically
        // without re-running the SAT check.
        let second = e.execute(&job);
        assert!(second.cached);
        assert_eq!(second.to_jsonl(), first.to_jsonl());
        assert_eq!(e.verify_runs(), 1);
        assert_eq!(e.cached_verifications(), 1);
        assert_eq!(e.cache_hits(), 1);
    }

    #[test]
    fn verify_job_refutes_a_mutated_pair_with_a_counterexample() {
        let e = engine();
        let report = e.execute(&verify_job("pair", "tiny_mux_mutated.blif", e.base_config()));
        match &report.outcome {
            JobOutcome::Verified(verdict) => {
                assert!(!verdict.equivalent);
                // The mutation flips AND→OR on output g (index 1); the
                // counterexample is simulator-confirmed by the engine
                // before it is reported.
                assert_eq!(verdict.output_index, Some(1));
                let bits = verdict.counterexample.as_deref().unwrap();
                assert_eq!(bits.len(), 4, "one bit per primary input");
                assert!(bits.chars().all(|c| c == '0' || c == '1'));
            }
            other => panic!("expected a refuted verdict, got {other:?}"),
        }
        let line = report.to_jsonl();
        assert!(line.contains("\"status\":\"verified\"") && line.contains("\"equivalent\":false"));
        assert!(line.contains("\"counterexample\":") && line.contains("\"output_index\":1"));
    }

    #[test]
    fn verify_job_with_mismatched_interfaces_fails_cleanly() {
        let e = engine();
        let job = Job::verify(
            "bad-pair",
            JobSource::BlifFile(fixture_path("tiny_mux.blif").into()),
            JobSource::BlifText(".model t\n.inputs x\n.outputs y\n.gate inv y x\n.end".into()),
            e.base_config(),
        );
        let report = e.execute(&job);
        assert!(matches!(&report.outcome,
            JobOutcome::Failed(msg) if msg.contains("interface mismatch")));
    }

    #[test]
    fn injected_cec_panic_becomes_a_failed_report() {
        let plan = FaultPlan::single(FaultPoint::Cec, Some("pair"), 0, FaultAction::Panic);
        let e = Engine::new(PipelineConfig::fast()).with_fault_plan(plan);
        let report = e.execute(&verify_job("pair", "tiny_mux_demorgan.blif", e.base_config()));
        assert!(matches!(&report.outcome,
            JobOutcome::Failed(msg) if msg.contains("cec panicked")
                && msg.contains("injected panic at cec")));
        // The engine is not wedged, and the failure was not cached: an
        // unfaulted resubmission verifies for real.
        let retry = e.execute(&verify_job("pair", "tiny_mux_demorgan.blif", e.base_config()));
        assert!(retry.is_done() && !retry.cached);
        assert_eq!(e.verify_runs(), 2);
    }

    #[test]
    fn verify_deadline_cuts_an_injected_hang() {
        let plan =
            FaultPlan::single(FaultPoint::Cec, Some("pair"), 0, FaultAction::DelayMs(60_000));
        let e = Engine::new(PipelineConfig::fast()).with_fault_plan(plan);
        let mut job = verify_job("pair", "tiny_mux_demorgan.blif", e.base_config());
        job.timeout_s = Some(0.2);
        let start = Instant::now();
        let report = e.execute(&job);
        assert!(start.elapsed() < Duration::from_secs(30), "watchdog must cut the hang");
        assert!(matches!(&report.outcome,
            JobOutcome::Failed(msg) if msg == "timeout after 0.2s"));
        assert_eq!(e.cached_verifications(), 0, "a timed-out check is not cached");
    }

    #[test]
    fn generous_deadline_does_not_perturb_the_result() {
        let e = engine();
        let baseline = e.execute(&Job::suite("c432", e.base_config()));
        let e2 = engine();
        let mut job = Job::suite("c432", e2.base_config());
        job.timeout_s = Some(600.0);
        let timed = e2.execute(&job);
        assert!(timed.is_done() && !timed.cached);
        assert_eq!(timed.to_jsonl(), baseline.to_jsonl());
    }
}
