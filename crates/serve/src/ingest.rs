//! Ingestion: turning job files, benchmark suites and `.blif` directory
//! trees into [`Job`] batches with deterministic ordering.

use std::path::{Path, PathBuf};

use rapids_flow::netlist::{blif, NetlistError};
use rapids_flow::PipelineConfig;

use crate::job::Job;

/// Recursively discovers every `*.blif` file under `root` in the shared
/// loader's deterministic order — a re-export seam over
/// [`blif::discover_files`], which `table1 --blif-dir` rides too.
///
/// # Errors
///
/// [`NetlistError::Io`] on the first unreadable directory entry.
pub fn discover_blif_files(root: impl AsRef<Path>) -> Result<Vec<PathBuf>, NetlistError> {
    blif::discover_files(root)
}

/// One job per discovered `.blif` file under `root`, named by the file's
/// path relative to `root` with the extension stripped (`sub/foo.blif` →
/// `sub/foo`), so names stay unique and stable across machines.
///
/// # Errors
///
/// [`NetlistError::Io`] if the directory walk fails.  Unparsable *files*
/// are not an error here — parsing happens when the job runs, and a bad
/// file yields a `Failed` report rather than sinking the batch.
pub fn jobs_from_blif_dir(
    root: impl AsRef<Path>,
    config: &PipelineConfig,
) -> Result<Vec<Job>, NetlistError> {
    let root = root.as_ref();
    let jobs = discover_blif_files(root)?
        .into_iter()
        .map(|path| {
            let name = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .with_extension("")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            Job::blif_file(name, path, config)
        })
        .collect();
    Ok(jobs)
}

/// One job per named suite benchmark (pass
/// [`rapids_circuits::suite_names`] for the whole Table 1 suite).
pub fn suite_jobs(names: &[&str], config: &PipelineConfig) -> Vec<Job> {
    names.iter().map(|name| Job::suite(*name, config)).collect()
}

/// Parses a JSONL job file: one job spec per line, blank lines and `#`
/// comment lines skipped (see [`Job::from_spec_line`] for the schema).
///
/// # Errors
///
/// The first offending line, as `(1-based line number, description)`.
pub fn jobs_from_jsonl(text: &str, config: &PipelineConfig) -> Result<Vec<Job>, (usize, String)> {
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let job = Job::from_spec_line(line, config).map_err(|e| (lineno + 1, e))?;
        jobs.push(job);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSource;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rapids_serve_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn discovery_is_recursive_sorted_and_blif_only() {
        let dir = scratch_dir("discover");
        std::fs::create_dir_all(dir.join("sub/inner")).unwrap();
        std::fs::write(dir.join("b.blif"), ".model b\n.end\n").unwrap();
        std::fs::write(dir.join("a.blif"), ".model a\n.end\n").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        std::fs::write(dir.join("sub/inner/c.blif"), ".model c\n.end\n").unwrap();

        let found = discover_blif_files(&dir).unwrap();
        let rel: Vec<String> = found
            .iter()
            .map(|p| p.strip_prefix(&dir).unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(rel, ["a.blif", "b.blif", "sub/inner/c.blif"]);

        let jobs = jobs_from_blif_dir(&dir, &PipelineConfig::fast()).unwrap();
        let names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "sub/inner/c"]);
        assert!(jobs.iter().all(|j| matches!(j.source, JobSource::BlifFile(_))));

        std::fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(discover_blif_files(&dir), Err(NetlistError::Io { .. })));
    }

    #[test]
    fn jsonl_job_files_parse_with_comments_and_report_bad_lines() {
        let config = PipelineConfig::fast();
        let text = "# batch\n\n{\"suite\":\"c432\"}\n{\"blif\":\"x.blif\",\"es\":true}\n";
        let jobs = jobs_from_jsonl(text, &config).unwrap();
        assert_eq!(jobs.len(), 2);
        assert!(jobs[1].config.optimizer.include_inverting_swaps);

        let err = jobs_from_jsonl("{\"suite\":\"ok\"}\n{\"nope\":1}\n", &config).unwrap_err();
        assert_eq!(err.0, 2);
    }

    #[test]
    fn suite_jobs_carry_the_config() {
        let config = PipelineConfig::fast();
        let jobs = suite_jobs(&["alu2", "c432"], &config);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "alu2");
        assert_eq!(jobs[1].config, config);
    }
}
