//! Content fingerprints for the result cache.
//!
//! The cache key is the pair *(netlist fingerprint, config fingerprint)*:
//! two submissions collide exactly when they optimize the same mapped
//! netlist under the same decision-relevant configuration, in which case
//! the whole run — placement seed included — is deterministic and the
//! cached QoR report is byte-identical to a recompute.

use rapids_flow::netlist::{blif, Network};
use rapids_flow::PipelineConfig;

/// 64-bit FNV-1a over a byte string — small, dependency-free, and stable
/// across platforms, which is all a process-local cache key needs (this is
/// not a cryptographic hash; a hostile netlist could engineer collisions).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of a mapped netlist's *content*: the canonical BLIF
/// serialization (topological order, tombstones skipped) extended with each
/// live gate's drive strength, which the BLIF dialect does not carry but
/// the sizing optimizers read.
pub fn netlist_fingerprint(network: &Network) -> u64 {
    let mut text = blif::write_string(network);
    for id in network.iter_live() {
        let gate = network.gate(id);
        text.push_str(&gate.name);
        text.push('=');
        text.push_str(&gate.size_class.to_string());
        text.push('\n');
    }
    fnv1a(text.as_bytes())
}

/// Fingerprint of the full effective configuration.
///
/// Hashes the `Debug` rendering of the [`PipelineConfig`], which covers
/// every knob of every stage (placer, timing model, optimizer, seed,
/// mapping bound, verification).  `threads` is deliberately *included*:
/// decisions are thread-count invariant, but rewiring float sums may move
/// in the final ulp across thread counts (see the determinism contract in
/// `rapids_sizing::parallel`), and the cache promises byte-identical
/// replays.
pub fn config_fingerprint(config: &PipelineConfig) -> u64 {
    fnv1a(format!("{config:?}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_flow::netlist::{GateType, NetworkBuilder};

    fn tiny(size_class: u8) -> Network {
        let mut b = NetworkBuilder::new("tiny");
        b.inputs(["a", "b"]);
        b.gate("f", GateType::Nand, &["a", "b"]);
        b.output("f");
        let mut n = b.finish().unwrap();
        let f = n.find_by_name("f").unwrap();
        n.gate_mut(f).size_class = size_class;
        n
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn netlist_fingerprint_sees_structure_and_sizes() {
        assert_eq!(netlist_fingerprint(&tiny(2)), netlist_fingerprint(&tiny(2)));
        // Same structure, different drive strength: must not collide —
        // sizing reads the strengths even though BLIF does not carry them.
        assert_ne!(netlist_fingerprint(&tiny(2)), netlist_fingerprint(&tiny(3)));
    }

    #[test]
    fn config_fingerprint_sees_every_knob() {
        let base = PipelineConfig::default();
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base.clone()));
        for mutated in [
            PipelineConfig { seed: base.seed + 1, ..base.clone() },
            PipelineConfig { map_max_fanin: 3, ..base.clone() },
            PipelineConfig { threads: 2, ..base.clone() },
            PipelineConfig::fast(),
        ] {
            assert_ne!(config_fingerprint(&base), config_fingerprint(&mutated));
        }
        let mut es = base.clone();
        es.optimizer.include_inverting_swaps = true;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&es));
    }
}
