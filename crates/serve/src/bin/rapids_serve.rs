//! `rapids-serve` — the batch-optimization service front end.
//!
//! Usage:
//!
//! ```text
//! rapids-serve --suite --workers 8                     # whole Table 1 suite
//! rapids-serve c432 alu2 --fast --sort                 # named suite designs, canonical order
//! rapids-serve --jobs batch.jsonl --workers 4          # JSONL job file
//! rapids-serve --blif-dir designs/ --out reports.jsonl # every .blif under designs/
//! rapids-serve --suite --legalize --es                 # row-legal placements + ES nudging
//! rapids-serve --listen 127.0.0.1:7171                 # TCP line protocol (concurrent)
//! rapids-serve --listen 127.0.0.1:7171 --cache-max-entries 64  # bounded LRU result cache
//! rapids-serve --suite --store cache/ --timeout-s 300          # crash-safe disk cache + deadlines
//! rapids-serve --listen 127.0.0.1:7171 --max-pending 8         # admission-controlled listener
//! ```
//!
//! Reports stream to stdout (or `--out`) as JSONL, one line per design, as
//! each finishes; `--sort` buffers and emits the canonical sorted order
//! instead (byte-identical for every `--workers` count).  The summary goes
//! to stderr so stdout stays machine-readable.  See `docs/serving.md` for
//! the job schema, report fields, cache key and determinism guarantees.

use std::io::Write as _;
use std::net::TcpListener;

use rapids_circuits::suite_names;
use rapids_flow::PipelineConfig;
use rapids_serve::report::canonical_sort;
use rapids_serve::{
    jobs_from_blif_dir, jobs_from_jsonl, suite_jobs, BatchServer, Engine, FaultPlan, Job,
    ResultStore,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs_path: Option<String> = None;
    let mut blif_dirs: Vec<String> = Vec::new();
    let mut whole_suite = false;
    let mut names: Vec<String> = Vec::new();
    let mut workers = 1usize;
    let mut sort = false;
    let mut out_path: Option<String> = None;
    let mut listen_addr: Option<String> = None;
    let mut fast = false;
    let mut es = false;
    let mut legalize = false;
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut cache_max_entries: Option<usize> = None;
    let mut store_dir: Option<String> = None;
    let mut timeout_s: Option<f64> = None;
    let mut max_pending = 0usize;
    let mut fault_plan_spec: Option<String> = None;

    let mut iter = args.into_iter();
    let value_arg = |iter: &mut std::vec::IntoIter<String>, flag: &str| -> String {
        iter.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    let parse_num = |value: &str, flag: &str| -> u64 {
        value.parse().unwrap_or_else(|_| {
            eprintln!("{flag} requires a non-negative integer, got `{value}`");
            std::process::exit(2);
        })
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--jobs" => jobs_path = Some(value_arg(&mut iter, "--jobs")),
            "--blif-dir" => blif_dirs.push(value_arg(&mut iter, "--blif-dir")),
            "--suite" => whole_suite = true,
            "--workers" => {
                workers = parse_num(&value_arg(&mut iter, "--workers"), "--workers") as usize
            }
            "--sort" => sort = true,
            "--out" => out_path = Some(value_arg(&mut iter, "--out")),
            "--listen" => listen_addr = Some(value_arg(&mut iter, "--listen")),
            "--fast" => fast = true,
            "--es" => es = true,
            "--legalize" => legalize = true,
            "--cache-max-entries" => {
                let value =
                    parse_num(&value_arg(&mut iter, "--cache-max-entries"), "--cache-max-entries")
                        as usize;
                if value == 0 {
                    eprintln!("--cache-max-entries must be at least 1 (omit it for no bound)");
                    std::process::exit(2);
                }
                cache_max_entries = Some(value);
            }
            "--seed" => seed = Some(parse_num(&value_arg(&mut iter, "--seed"), "--seed")),
            "--store" => store_dir = Some(value_arg(&mut iter, "--store")),
            "--timeout-s" => {
                let value = value_arg(&mut iter, "--timeout-s");
                match value.parse::<f64>() {
                    Ok(x) if x.is_finite() && x > 0.0 => timeout_s = Some(x),
                    _ => {
                        eprintln!("--timeout-s requires a positive number, got `{value}`");
                        std::process::exit(2);
                    }
                }
            }
            "--max-pending" => {
                max_pending =
                    parse_num(&value_arg(&mut iter, "--max-pending"), "--max-pending") as usize
            }
            // Hidden knob: deterministic fault injection (docs/robustness.md).
            "--fault-plan" => fault_plan_spec = Some(value_arg(&mut iter, "--fault-plan")),
            "--threads" => {
                threads = Some(parse_num(&value_arg(&mut iter, "--threads"), "--threads") as usize)
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
            name => names.push(name.to_string()),
        }
    }

    let mut config = if fast { PipelineConfig::fast() } else { PipelineConfig::default() };
    config.optimizer.include_inverting_swaps = es;
    config.legalize.enabled = legalize;
    if let Some(seed) = seed {
        config.seed = seed;
    }
    if let Some(threads) = threads {
        config.threads = threads.max(1);
    }

    // Assemble the batch in a deterministic order: job file, named suite
    // designs, the whole suite, then each --blif-dir in flag order.
    let mut jobs: Vec<Job> = Vec::new();
    if let Some(path) = &jobs_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read job file {path}: {e}");
            std::process::exit(2);
        });
        match jobs_from_jsonl(&text, &config) {
            Ok(parsed) => jobs.extend(parsed),
            Err((line, error)) => {
                eprintln!("{path}:{line}: bad job spec: {error}");
                std::process::exit(2);
            }
        }
    }
    let names: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    jobs.extend(suite_jobs(&names, &config));
    if whole_suite {
        jobs.extend(suite_jobs(&suite_names(), &config));
    }
    for dir in &blif_dirs {
        match jobs_from_blif_dir(dir, &config) {
            Ok(discovered) => {
                if discovered.is_empty() {
                    eprintln!("note: no .blif files under {dir}");
                }
                jobs.extend(discovered);
            }
            Err(e) => {
                eprintln!("cannot scan {dir}: {e}");
                std::process::exit(2);
            }
        }
    }

    if jobs.is_empty() && listen_addr.is_none() {
        eprintln!(
            "nothing to do: pass suite names, --suite, --jobs FILE, --blif-dir DIR or --listen ADDR"
        );
        std::process::exit(2);
    }

    // --timeout-s sets a default deadline; per-job `timeout_s` spec keys win.
    if let Some(secs) = timeout_s {
        for job in &mut jobs {
            if job.timeout_s.is_none() {
                job.timeout_s = Some(secs);
            }
        }
    }

    let mut engine = match cache_max_entries {
        Some(capacity) => Engine::with_cache_capacity(config, capacity),
        None => Engine::new(config),
    };
    if let Some(dir) = &store_dir {
        let store = ResultStore::open(dir).unwrap_or_else(|e| {
            eprintln!("cannot open result store {dir}: {e}");
            std::process::exit(2);
        });
        if store.dropped_corrupt_records() > 0 {
            eprintln!(
                "store: recovered {} record(s), truncated a torn/corrupt tail",
                store.recovered_records()
            );
        }
        engine = engine.with_store(store);
    }
    if let Some(spec) = &fault_plan_spec {
        let plan = FaultPlan::parse(spec).unwrap_or_else(|e| {
            eprintln!("bad --fault-plan: {e}");
            std::process::exit(2);
        });
        engine = engine.with_fault_plan(plan);
    }
    let server = BatchServer::new(engine, workers);

    let mut sink: Box<dyn std::io::Write> = match &out_path {
        Some(path) => Box::new(std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(2);
        })),
        None => Box::new(std::io::stdout()),
    };

    if !jobs.is_empty() {
        let start = std::time::Instant::now();
        let mut buffered: Vec<String> = Vec::new();
        let summary = server.run_streaming(&jobs, |report| {
            let line = report.to_jsonl();
            if sort {
                buffered.push(line);
            } else {
                writeln!(sink, "{line}").expect("write report line");
                sink.flush().expect("flush report line");
            }
        });
        if sort {
            canonical_sort(&mut buffered);
            for line in &buffered {
                writeln!(sink, "{line}").expect("write report line");
            }
            sink.flush().expect("flush report lines");
        }
        eprintln!(
            "serve: {} jobs — {} done ({} cached), {} failed — {:.1} s with {} worker(s)",
            jobs.len(),
            summary.done,
            summary.cached,
            summary.failed,
            start.elapsed().as_secs_f64(),
            server.workers(),
        );
        if store_dir.is_some() {
            // Deterministic shape so CI can grep it.
            eprintln!(
                "store: optimizer_runs={} disk_hits={} recovered_records={} dropped_corrupt_records={}",
                server.engine().optimizer_runs(),
                server.engine().disk_hits(),
                server.engine().recovered_records(),
                server.engine().dropped_corrupt_records(),
            );
        }
    }

    if let Some(addr) = listen_addr {
        let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(2);
        });
        eprintln!("listening on {addr} (send {{\"cmd\":\"shutdown\"}} to stop)");
        match rapids_serve::net::serve_connections_bounded(server.engine(), &listener, max_pending)
        {
            Ok(served) => eprintln!("served {served} job line(s); shutting down"),
            Err(e) => {
                eprintln!("listener error: {e}");
                std::process::exit(1);
            }
        }
    }
}
