//! `rapids-serve` — the batch-optimization service front end.
//!
//! Usage:
//!
//! ```text
//! rapids-serve --suite --workers 8                     # whole Table 1 suite
//! rapids-serve c432 alu2 --fast --sort                 # named suite designs, canonical order
//! rapids-serve --jobs batch.jsonl --workers 4          # JSONL job file
//! rapids-serve --blif-dir designs/ --out reports.jsonl # every .blif under designs/
//! rapids-serve --suite --legalize --es                 # row-legal placements + ES nudging
//! rapids-serve --listen 127.0.0.1:7171                 # TCP line protocol (concurrent)
//! rapids-serve --listen 127.0.0.1:7171 --cache-max-entries 64  # bounded LRU result cache
//! rapids-serve --suite --store cache/ --timeout-s 300          # crash-safe disk cache + deadlines
//! rapids-serve --listen 127.0.0.1:7171 --max-pending 8         # admission-controlled listener
//! ```
//!
//! Reports stream to stdout (or `--out`) as JSONL, one line per design, as
//! each finishes; `--sort` buffers and emits the canonical sorted order
//! instead (byte-identical for every `--workers` count).  The summary goes
//! to stderr so stdout stays machine-readable.  See `docs/serving.md` for
//! the job schema, report fields, cache key and determinism guarantees.
//!
//! Observability (`docs/observability.md`): `--trace-out FILE` writes a
//! Chrome trace-event JSON of the run's span tree, `--metrics-out FILE`
//! writes the final metrics snapshot, `--heartbeat-s N` prints a progress
//! line to stderr every N seconds, and `--quiet` suppresses everything on
//! stderr except errors.  None of these change a single stdout byte.
//!
//! Telemetry (same doc): `--telemetry-s N` arms the time-series plane —
//! `0` means **manual tick** (one sample per completed job; deterministic,
//! what tests and CI use), `N > 0` spawns a wall-clock sampler thread.
//! `--telemetry-out FILE` appends one checksummed JSONL line per tick
//! (crash-safe; torn tails are truncated on restart), `--cusum
//! SERIES:DRIFT:THRESHOLD[:BASELINE]` (repeatable) arms a change detector
//! (baseline omitted = learned from the first 8 ticks), and
//! `--slo-timeout-frac F` tracks the fraction of jobs cut by their
//! deadline against target `F`.  A `--listen` server then answers the
//! `series` / `alerts` / `prom` verbs — `rapids-top ADDR` renders them.

use std::io::Write as _;
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rapids_circuits::suite_names;
use rapids_flow::PipelineConfig;
use rapids_obs::{CusumConfig, SloConfig};
use rapids_serve::report::canonical_sort;
use rapids_serve::{
    jobs_from_blif_dir, jobs_from_jsonl, suite_jobs, BatchServer, Engine, FaultPlan, Heartbeat,
    Job, Journal, ResultStore, TelemetryConfig, TelemetryPlane, WallClockSampler,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs_path: Option<String> = None;
    let mut blif_dirs: Vec<String> = Vec::new();
    let mut whole_suite = false;
    let mut names: Vec<String> = Vec::new();
    let mut workers = 1usize;
    let mut sort = false;
    let mut out_path: Option<String> = None;
    let mut listen_addr: Option<String> = None;
    let mut fast = false;
    let mut es = false;
    let mut legalize = false;
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut cache_max_entries: Option<usize> = None;
    let mut store_dir: Option<String> = None;
    let mut timeout_s: Option<f64> = None;
    let mut max_pending = 0usize;
    let mut fault_plan_spec: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut heartbeat_s: Option<u64> = None;
    let mut telemetry_s: Option<u64> = None;
    let mut telemetry_out: Option<String> = None;
    let mut cusum_specs: Vec<String> = Vec::new();
    let mut slo_timeout_frac: Option<f64> = None;
    let mut quiet = false;

    let mut iter = args.into_iter();
    let value_arg = |iter: &mut std::vec::IntoIter<String>, flag: &str| -> String {
        iter.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    let parse_num = |value: &str, flag: &str| -> u64 {
        value.parse().unwrap_or_else(|_| {
            eprintln!("{flag} requires a non-negative integer, got `{value}`");
            std::process::exit(2);
        })
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--jobs" => jobs_path = Some(value_arg(&mut iter, "--jobs")),
            "--blif-dir" => blif_dirs.push(value_arg(&mut iter, "--blif-dir")),
            "--suite" => whole_suite = true,
            "--workers" => {
                workers = parse_num(&value_arg(&mut iter, "--workers"), "--workers") as usize
            }
            "--sort" => sort = true,
            "--out" => out_path = Some(value_arg(&mut iter, "--out")),
            "--listen" => listen_addr = Some(value_arg(&mut iter, "--listen")),
            "--fast" => fast = true,
            "--es" => es = true,
            "--legalize" => legalize = true,
            "--cache-max-entries" => {
                let value =
                    parse_num(&value_arg(&mut iter, "--cache-max-entries"), "--cache-max-entries")
                        as usize;
                if value == 0 {
                    eprintln!("--cache-max-entries must be at least 1 (omit it for no bound)");
                    std::process::exit(2);
                }
                cache_max_entries = Some(value);
            }
            "--seed" => seed = Some(parse_num(&value_arg(&mut iter, "--seed"), "--seed")),
            "--store" => store_dir = Some(value_arg(&mut iter, "--store")),
            "--timeout-s" => {
                let value = value_arg(&mut iter, "--timeout-s");
                match value.parse::<f64>() {
                    Ok(x) if x.is_finite() && x > 0.0 => timeout_s = Some(x),
                    _ => {
                        eprintln!("--timeout-s requires a positive number, got `{value}`");
                        std::process::exit(2);
                    }
                }
            }
            "--max-pending" => {
                max_pending =
                    parse_num(&value_arg(&mut iter, "--max-pending"), "--max-pending") as usize
            }
            // Hidden knob: deterministic fault injection (docs/robustness.md).
            "--fault-plan" => fault_plan_spec = Some(value_arg(&mut iter, "--fault-plan")),
            "--trace-out" => trace_out = Some(value_arg(&mut iter, "--trace-out")),
            "--metrics-out" => metrics_out = Some(value_arg(&mut iter, "--metrics-out")),
            "--heartbeat-s" => {
                let value = parse_num(&value_arg(&mut iter, "--heartbeat-s"), "--heartbeat-s");
                if value == 0 {
                    eprintln!("--heartbeat-s must be at least 1");
                    std::process::exit(2);
                }
                heartbeat_s = Some(value);
            }
            "--telemetry-s" => {
                telemetry_s =
                    Some(parse_num(&value_arg(&mut iter, "--telemetry-s"), "--telemetry-s"))
            }
            "--telemetry-out" => telemetry_out = Some(value_arg(&mut iter, "--telemetry-out")),
            "--cusum" => cusum_specs.push(value_arg(&mut iter, "--cusum")),
            "--slo-timeout-frac" => {
                let value = value_arg(&mut iter, "--slo-timeout-frac");
                match value.parse::<f64>() {
                    Ok(x) if x.is_finite() && (0.0..1.0).contains(&x) => slo_timeout_frac = Some(x),
                    _ => {
                        eprintln!("--slo-timeout-frac requires a fraction in [0,1), got `{value}`");
                        std::process::exit(2);
                    }
                }
            }
            "--quiet" => quiet = true,
            "--threads" => {
                threads = Some(parse_num(&value_arg(&mut iter, "--threads"), "--threads") as usize)
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
            name => names.push(name.to_string()),
        }
    }

    // Observability setup, before any work runs: `--quiet` drops the
    // stderr level to errors only, `--trace-out` installs the span sink
    // (spans are no-ops without it).
    if quiet {
        rapids_obs::log::set_max_level(rapids_obs::log::Level::Error);
    }
    if trace_out.is_some() {
        rapids_obs::trace::install();
    }

    let mut config = if fast { PipelineConfig::fast() } else { PipelineConfig::default() };
    config.optimizer.include_inverting_swaps = es;
    config.legalize.enabled = legalize;
    if let Some(seed) = seed {
        config.seed = seed;
    }
    if let Some(threads) = threads {
        config.threads = threads.max(1);
    }

    // Assemble the batch in a deterministic order: job file, named suite
    // designs, the whole suite, then each --blif-dir in flag order.
    let mut jobs: Vec<Job> = Vec::new();
    if let Some(path) = &jobs_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            rapids_obs::error!("cannot read job file {path}: {e}");
            std::process::exit(2);
        });
        match jobs_from_jsonl(&text, &config) {
            Ok(parsed) => jobs.extend(parsed),
            Err((line, error)) => {
                rapids_obs::error!("{path}:{line}: bad job spec: {error}");
                std::process::exit(2);
            }
        }
    }
    let names: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    jobs.extend(suite_jobs(&names, &config));
    if whole_suite {
        jobs.extend(suite_jobs(&suite_names(), &config));
    }
    for dir in &blif_dirs {
        match jobs_from_blif_dir(dir, &config) {
            Ok(discovered) => {
                if discovered.is_empty() {
                    rapids_obs::info!("note: no .blif files under {dir}");
                }
                jobs.extend(discovered);
            }
            Err(e) => {
                rapids_obs::error!("cannot scan {dir}: {e}");
                std::process::exit(2);
            }
        }
    }

    if jobs.is_empty() && listen_addr.is_none() {
        rapids_obs::error!(
            "nothing to do: pass suite names, --suite, --jobs FILE, --blif-dir DIR or --listen ADDR"
        );
        std::process::exit(2);
    }

    // --timeout-s sets a default deadline; per-job `timeout_s` spec keys win.
    if let Some(secs) = timeout_s {
        for job in &mut jobs {
            if job.timeout_s.is_none() {
                job.timeout_s = Some(secs);
            }
        }
    }

    let mut engine = match cache_max_entries {
        Some(capacity) => Engine::with_cache_capacity(config, capacity),
        None => Engine::new(config),
    };
    if let Some(dir) = &store_dir {
        let store = ResultStore::open(dir).unwrap_or_else(|e| {
            rapids_obs::error!("cannot open result store {dir}: {e}");
            std::process::exit(2);
        });
        if store.dropped_corrupt_records() > 0 {
            rapids_obs::warn!(
                "store: recovered {} record(s), truncated a torn/corrupt tail",
                store.recovered_records()
            );
        }
        engine = engine.with_store(store);
    }
    if let Some(spec) = &fault_plan_spec {
        let plan = FaultPlan::parse(spec).unwrap_or_else(|e| {
            rapids_obs::error!("bad --fault-plan: {e}");
            std::process::exit(2);
        });
        engine = engine.with_fault_plan(plan);
    }

    // Telemetry plane: armed by --telemetry-s (0 = manual tick per
    // completed job, N > 0 = wall-clock sampling).  The dependent flags
    // are meaningless without it, so reject them early.
    if telemetry_s.is_none()
        && (telemetry_out.is_some() || !cusum_specs.is_empty() || slo_timeout_frac.is_some())
    {
        rapids_obs::error!(
            "--telemetry-out/--cusum/--slo-timeout-frac need --telemetry-s N (0 = manual)"
        );
        std::process::exit(2);
    }
    let telemetry_plane = telemetry_s.map(|secs| {
        let mut tconfig = TelemetryConfig { manual: secs == 0, ..TelemetryConfig::default() };
        for spec in &cusum_specs {
            tconfig.cusum.push(parse_cusum_spec(spec));
        }
        if let Some(target) = slo_timeout_frac {
            tconfig.slos.push(SloConfig {
                name: "timeouts".to_string(),
                bad_series: "serve.deadline_cuts".to_string(),
                total_series: "serve.job_us.count".to_string(),
                target,
            });
        }
        let mut plane = TelemetryPlane::new(engine.metrics_registry(), tconfig);
        if let Some(path) = &telemetry_out {
            let journal = Journal::open(path).unwrap_or_else(|e| {
                rapids_obs::error!("cannot open telemetry journal {path}: {e}");
                std::process::exit(2);
            });
            if journal.dropped_tail_bytes() > 0 {
                rapids_obs::warn!(
                    "telemetry journal: recovered {} line(s), truncated a torn/corrupt tail",
                    journal.recovered_lines()
                );
            }
            plane = plane.with_journal(journal);
        }
        // Baseline at arm time: the first tick reports deltas, not the
        // absolutes accumulated before telemetry existed.
        plane.prime();
        Arc::new(plane)
    });
    if let Some(plane) = &telemetry_plane {
        engine = engine.with_telemetry(Arc::clone(plane));
    }
    let server = BatchServer::new(engine, workers);
    // Production cadence: a sampler thread ticks the plane every N
    // seconds until main exits (manual mode never spawns it).
    let _wall_clock = match (&telemetry_plane, telemetry_s) {
        (Some(plane), Some(secs)) if secs > 0 => {
            Some(WallClockSampler::spawn(Arc::clone(plane), Duration::from_secs(secs)))
        }
        _ => None,
    };

    let mut sink: Box<dyn std::io::Write> = match &out_path {
        Some(path) => Box::new(std::fs::File::create(path).unwrap_or_else(|e| {
            rapids_obs::error!("cannot create {path}: {e}");
            std::process::exit(2);
        })),
        None => Box::new(std::io::stdout()),
    };

    if !jobs.is_empty() {
        let start = std::time::Instant::now();
        // Heartbeat: a watcher thread summarizing progress on stderr every
        // N seconds.  Purely observational — it reads a counter the result
        // callback bumps and never touches jobs or reports.
        let completed = Arc::new(AtomicUsize::new(0));
        let heartbeat = heartbeat_s.map(|secs| {
            Heartbeat::arm(
                Duration::from_secs(secs),
                jobs.len(),
                Arc::clone(&completed),
                |done, total| rapids_obs::info!("heartbeat: {done}/{total} jobs done"),
            )
        });
        let mut buffered: Vec<String> = Vec::new();
        let summary = server.run_streaming(&jobs, |report| {
            completed.fetch_add(1, Ordering::Relaxed);
            let line = report.to_jsonl();
            if sort {
                buffered.push(line);
            } else {
                writeln!(sink, "{line}").expect("write report line");
                sink.flush().expect("flush report line");
            }
        });
        drop(heartbeat); // stop and join the beat thread before the summary
        if sort {
            canonical_sort(&mut buffered);
            for line in &buffered {
                writeln!(sink, "{line}").expect("write report line");
            }
            sink.flush().expect("flush report lines");
        }
        rapids_obs::info!(
            "serve: {} jobs — {} done ({} cached), {} failed — {:.1} s with {} worker(s)",
            jobs.len(),
            summary.done,
            summary.cached,
            summary.failed,
            start.elapsed().as_secs_f64(),
            server.workers(),
        );
        if store_dir.is_some() {
            // Deterministic shape so CI can grep it (byte-identical at the
            // default log level — `obs::log` adds no prefix).
            rapids_obs::info!(
                "store: optimizer_runs={} disk_hits={} recovered_records={} dropped_corrupt_records={}",
                server.engine().optimizer_runs(),
                server.engine().disk_hits(),
                server.engine().recovered_records(),
                server.engine().dropped_corrupt_records(),
            );
        }
    }

    if let Some(addr) = listen_addr {
        let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
            rapids_obs::error!("cannot bind {addr}: {e}");
            std::process::exit(2);
        });
        // Report the *bound* address: with `--listen 127.0.0.1:0` the OS
        // picks the port, and scripts need the real one.
        let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
        rapids_obs::info!("listening on {bound} (send {{\"cmd\":\"shutdown\"}} to stop)");
        match rapids_serve::net::serve_connections_bounded(server.engine(), &listener, max_pending)
        {
            Ok(served) => rapids_obs::info!("served {served} job line(s); shutting down"),
            Err(e) => {
                rapids_obs::error!("listener error: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(plane) = &telemetry_plane {
        // Deterministic shape so CI can grep it (manual-tick runs have
        // workload-determined tick/alert counts).
        rapids_obs::info!("telemetry: ticks={} alerts={}", plane.ticks(), plane.alerts().len());
    }

    if let Some(path) = &trace_out {
        if let Err(e) = rapids_obs::trace::write_chrome_trace(std::path::Path::new(path)) {
            rapids_obs::error!("cannot write trace {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, server.engine().metrics_snapshot().to_json_pretty()) {
            rapids_obs::error!("cannot write metrics {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Parses one `--cusum SERIES:DRIFT:THRESHOLD[:BASELINE]` spec (baseline
/// omitted = learned from the first 8 ticks).  Series names never contain
/// `:`, so a plain split is unambiguous.
fn parse_cusum_spec(spec: &str) -> CusumConfig {
    let bail = |why: &str| -> ! {
        eprintln!("bad --cusum `{spec}`: {why} (want SERIES:DRIFT:THRESHOLD[:BASELINE])");
        std::process::exit(2);
    };
    let parts: Vec<&str> = spec.split(':').collect();
    if !(3..=4).contains(&parts.len()) || parts[0].is_empty() {
        bail("expected 3 or 4 `:`-separated fields");
    }
    let num = |text: &str, what: &str| -> f64 {
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => x,
            _ => bail(&format!("{what} `{text}` is not a finite number")),
        }
    };
    let drift = num(parts[1], "drift");
    let threshold = num(parts[2], "threshold");
    match parts.get(3) {
        Some(baseline) => CusumConfig::fixed(parts[0], num(baseline, "baseline"), drift, threshold),
        None => CusumConfig::warmup(parts[0], 8, drift, threshold),
    }
}
