//! Streaming report records.
//!
//! One JSONL line per finished job.  Successful lines carry exactly the
//! deterministic QoR projection of `docs/benchmarking.md` (the
//! `--qor-out` field contract), prefixed with the job envelope; failed
//! lines carry the captured error.  Wall-clock numbers and cache/worker
//! provenance are deliberately *excluded* from the line so that any two
//! runs of the same job — fresh or cached, any worker count — produce
//! byte-identical output (the envelope of [`JobReport`] still records
//! provenance for programmatic consumers).

use rapids_flow::FlowComparison;

use crate::json::{escape_string, number, parse_flat_object, JsonValue};

/// The deterministic per-design QoR record — the serve-side twin of the
/// `table1 --qor-out` row, field for field.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignQor {
    /// Design name (the netlist's model name).
    pub name: String,
    /// Mapped logic gate count before optimization.
    pub gate_count: usize,
    /// Post-placement, pre-optimization critical-path delay, ns.
    pub initial_delay_ns: f64,
    /// Final delay of the rewiring-only (`gsg`) optimizer, ns.
    pub gsg_final_delay_ns: f64,
    /// Final delay of the sizing-only (`GS`) optimizer, ns.
    pub gs_final_delay_ns: f64,
    /// Final delay of the combined (`gsg+GS`) optimizer, ns.
    pub combined_final_delay_ns: f64,
    /// Final area after `GS`, µm².
    pub gs_final_area_um2: f64,
    /// Final area after `gsg+GS`, µm².
    pub combined_final_area_um2: f64,
    /// Swaps applied by `gsg`.
    pub gsg_swaps: usize,
    /// Inverting (ES) swaps among `gsg`'s swaps.
    pub gsg_es_swaps: usize,
    /// Inverting (ES) swaps applied by `gsg+GS`.
    pub combined_es_swaps: usize,
    /// Gates resized by `GS`.
    pub gs_resized: usize,
    /// Whether the pipeline's legalize stage ran on this design.
    pub legalized: bool,
    /// Total HPWL of the shared pre-optimization placement, µm (the
    /// legalized + refined value when the stage ran).
    pub hpwl_um: f64,
    /// Largest single-gate displacement of the full legalizer, µm (0 while
    /// the stage is disabled).
    pub max_displacement_um: f64,
}

impl DesignQor {
    /// Projects a three-way pipeline comparison onto the QoR record.
    pub fn from_comparison(comparison: &FlowComparison) -> Self {
        let gsg = &comparison.rewiring.outcome;
        let gs = &comparison.sizing.outcome;
        let combined = &comparison.combined.outcome;
        DesignQor {
            name: comparison.name.clone(),
            gate_count: comparison.gate_count,
            initial_delay_ns: comparison.initial_delay_ns,
            gsg_final_delay_ns: gsg.final_delay_ns,
            gs_final_delay_ns: gs.final_delay_ns,
            combined_final_delay_ns: combined.final_delay_ns,
            gs_final_area_um2: gs.final_area_um2,
            combined_final_area_um2: combined.final_area_um2,
            gsg_swaps: gsg.swaps_applied,
            gsg_es_swaps: gsg.inverting_swaps_applied,
            combined_es_swaps: combined.inverting_swaps_applied,
            gs_resized: gs.gates_resized,
            legalized: comparison.legalization.is_some(),
            hpwl_um: comparison
                .legalization
                .map_or(gsg.initial_hpwl_um, |legalization| legalization.hpwl_um),
            max_displacement_um: comparison
                .legalization
                .map_or(0.0, |legalization| legalization.max_displacement_um()),
        }
    }

    /// Serializes the record as one flat JSON object — the on-disk store's
    /// payload format.  Uses the same float/escape conventions as the
    /// report lines, so a record that round-trips through
    /// [`DesignQor::from_json`] re-renders byte-identically.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.json_fields())
    }

    /// Parses a [`DesignQor::to_json`] payload.  Strict: every field must
    /// be present with the right type, so a corrupted store payload is
    /// rejected (and its record dropped) instead of yielding a half-default
    /// record.
    ///
    /// # Errors
    ///
    /// A description of the first missing or ill-typed field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let pairs = parse_flat_object(text)?;
        let field = |key: &str| -> Result<&JsonValue, String> {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`"))
        };
        let str_of = |key: &str| -> Result<String, String> {
            field(key)?.as_str().map(str::to_string).ok_or_else(|| format!("`{key}` not a string"))
        };
        let num_of = |key: &str| -> Result<f64, String> {
            field(key)?.as_num().ok_or_else(|| format!("`{key}` not a number"))
        };
        let count_of = |key: &str| -> Result<usize, String> {
            match field(key)?.as_num() {
                Some(x) if x >= 0.0 && x.fract() == 0.0 && x < (1u64 << 53) as f64 => {
                    Ok(x as usize)
                }
                _ => Err(format!("`{key}` not a count")),
            }
        };
        let bool_of = |key: &str| -> Result<bool, String> {
            field(key)?.as_bool().ok_or_else(|| format!("`{key}` not a boolean"))
        };
        Ok(DesignQor {
            name: str_of("name")?,
            gate_count: count_of("gate_count")?,
            initial_delay_ns: num_of("initial_delay_ns")?,
            gsg_final_delay_ns: num_of("gsg_final_delay_ns")?,
            gs_final_delay_ns: num_of("gs_final_delay_ns")?,
            combined_final_delay_ns: num_of("combined_final_delay_ns")?,
            gs_final_area_um2: num_of("gs_final_area_um2")?,
            combined_final_area_um2: num_of("combined_final_area_um2")?,
            gsg_swaps: count_of("gsg_swaps")?,
            gsg_es_swaps: count_of("gsg_es_swaps")?,
            combined_es_swaps: count_of("combined_es_swaps")?,
            gs_resized: count_of("gs_resized")?,
            legalized: bool_of("legalized")?,
            hpwl_um: num_of("hpwl_um")?,
            max_displacement_um: num_of("max_displacement_um")?,
        })
    }

    fn json_fields(&self) -> String {
        format!(
            concat!(
                "\"name\":{},\"gate_count\":{},\"initial_delay_ns\":{},",
                "\"gsg_final_delay_ns\":{},\"gs_final_delay_ns\":{},",
                "\"combined_final_delay_ns\":{},\"gs_final_area_um2\":{},",
                "\"combined_final_area_um2\":{},\"gsg_swaps\":{},",
                "\"gsg_es_swaps\":{},\"combined_es_swaps\":{},\"gs_resized\":{},",
                "\"legalized\":{},\"hpwl_um\":{},\"max_displacement_um\":{}"
            ),
            escape_string(&self.name),
            self.gate_count,
            number(self.initial_delay_ns),
            number(self.gsg_final_delay_ns),
            number(self.gs_final_delay_ns),
            number(self.combined_final_delay_ns),
            number(self.gs_final_area_um2),
            number(self.combined_final_area_um2),
            self.gsg_swaps,
            self.gsg_es_swaps,
            self.combined_es_swaps,
            self.gs_resized,
            self.legalized,
            number(self.hpwl_um),
            number(self.max_displacement_um),
        )
    }
}

/// The answer of a `verify` job: a SAT-proven equivalence verdict.
///
/// Deterministic and minimal by design — the report line it renders to is
/// a pure function of this record, so a cached replay of the same netlist
/// pair is byte-identical to the fresh computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyVerdict {
    /// `true` when the SAT check returned UNSAT — a *proof* that the two
    /// networks compute identical primary-output functions.
    pub equivalent: bool,
    /// For a non-equivalent pair: the distinguishing input vector as a bit
    /// string (`'0'`/`'1'`, primary-input order), simulator-confirmed.
    pub counterexample: Option<String>,
    /// For a non-equivalent pair: the index of a primary output the
    /// counterexample drives to different values.
    pub output_index: Option<usize>,
}

impl VerifyVerdict {
    /// The proven-equivalent verdict.
    pub fn equivalent() -> Self {
        VerifyVerdict { equivalent: true, counterexample: None, output_index: None }
    }

    /// A refuted verdict carrying its counterexample.
    pub fn counterexample(inputs: String, output_index: usize) -> Self {
        VerifyVerdict {
            equivalent: false,
            counterexample: Some(inputs),
            output_index: Some(output_index),
        }
    }

    fn json_fields(&self) -> String {
        match (&self.counterexample, self.output_index) {
            (Some(inputs), Some(output_index)) => format!(
                "\"equivalent\":{},\"counterexample\":{},\"output_index\":{}",
                self.equivalent,
                escape_string(inputs),
                output_index
            ),
            _ => format!("\"equivalent\":{}", self.equivalent),
        }
    }
}

/// Terminal result of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The flow completed; the QoR record is attached.
    Done(DesignQor),
    /// A `verify` job completed with an equivalence verdict (either way —
    /// "not equivalent" is a successful check, not a failure).
    Verified(VerifyVerdict),
    /// The job failed (parse error, flow error, or captured panic).
    Failed(String),
}

/// A finished job: the submission name, its outcome, and whether the
/// result was served from the cache (provenance only — not serialized).
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Submission name ([`crate::Job::name`]).
    pub job: String,
    /// What happened.
    pub outcome: JobOutcome,
    /// `true` when the result came from the cache without recompute.
    /// Excluded from [`JobReport::to_jsonl`] so cached replays are
    /// byte-identical to fresh runs.
    pub cached: bool,
}

impl JobReport {
    /// `true` when the job completed — with a QoR record, or (for a
    /// `verify` job) with an equivalence verdict of either polarity.
    pub fn is_done(&self) -> bool {
        matches!(self.outcome, JobOutcome::Done(_) | JobOutcome::Verified(_))
    }

    /// The QoR record of a completed job.
    pub fn qor(&self) -> Option<&DesignQor> {
        match &self.outcome {
            JobOutcome::Done(qor) => Some(qor),
            JobOutcome::Verified(_) | JobOutcome::Failed(_) => None,
        }
    }

    /// Serializes the report as one JSONL line (no trailing newline).
    ///
    /// `{"job":…,"status":"done",…qor fields…}` on success,
    /// `{"job":…,"status":"verified","equivalent":…}` for a verify job
    /// (plus `counterexample` and `output_index` when not equivalent),
    /// `{"job":…,"status":"failed","error":…}` on failure.
    pub fn to_jsonl(&self) -> String {
        match &self.outcome {
            JobOutcome::Done(qor) => format!(
                "{{\"job\":{},\"status\":\"done\",{}}}",
                escape_string(&self.job),
                qor.json_fields()
            ),
            JobOutcome::Verified(verdict) => format!(
                "{{\"job\":{},\"status\":\"verified\",{}}}",
                escape_string(&self.job),
                verdict.json_fields()
            ),
            JobOutcome::Failed(error) => format!(
                "{{\"job\":{},\"status\":\"failed\",\"error\":{}}}",
                escape_string(&self.job),
                escape_string(error)
            ),
        }
    }
}

/// Sorts report lines into the canonical order (plain lexicographic sort
/// of the whole line) — the `--sort` mode of the CLI.  Because a job's
/// line is independent of scheduling, sorted batch output is
/// byte-identical for every worker count.
pub fn canonical_sort(lines: &mut [String]) {
    lines.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_flat_object;

    fn qor() -> DesignQor {
        DesignQor {
            name: "c432".into(),
            gate_count: 321,
            initial_delay_ns: 12.5,
            gsg_final_delay_ns: 11.0,
            gs_final_delay_ns: 10.75,
            combined_final_delay_ns: 10.5,
            gs_final_area_um2: 4000.0,
            combined_final_area_um2: 4100.25,
            gsg_swaps: 17,
            gsg_es_swaps: 2,
            combined_es_swaps: 3,
            gs_resized: 40,
            legalized: true,
            hpwl_um: 123456.75,
            max_displacement_um: 42.5,
        }
    }

    #[test]
    fn done_line_is_flat_json_with_the_qor_contract_fields() {
        let report =
            JobReport { job: "c432".into(), outcome: JobOutcome::Done(qor()), cached: false };
        let line = report.to_jsonl();
        let pairs = parse_flat_object(&line).unwrap();
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "job",
                "status",
                "name",
                "gate_count",
                "initial_delay_ns",
                "gsg_final_delay_ns",
                "gs_final_delay_ns",
                "combined_final_delay_ns",
                "gs_final_area_um2",
                "combined_final_area_um2",
                "gsg_swaps",
                "gsg_es_swaps",
                "combined_es_swaps",
                "gs_resized",
                "legalized",
                "hpwl_um",
                "max_displacement_um",
            ]
        );
        assert_eq!(pairs[1].1.as_str(), Some("done"));
        assert_eq!(pairs[4].1.as_num(), Some(12.5));
        assert_eq!(pairs[14].1.as_bool(), Some(true));
        assert_eq!(pairs[15].1.as_num(), Some(123456.75));
    }

    #[test]
    fn cached_flag_does_not_change_the_line() {
        let fresh = JobReport { job: "a".into(), outcome: JobOutcome::Done(qor()), cached: false };
        let cached = JobReport { cached: true, ..fresh.clone() };
        assert_eq!(fresh.to_jsonl(), cached.to_jsonl());
    }

    #[test]
    fn verified_lines_are_minimal_and_deterministic() {
        let equivalent = JobReport {
            job: "pair".into(),
            outcome: JobOutcome::Verified(VerifyVerdict::equivalent()),
            cached: false,
        };
        assert_eq!(
            equivalent.to_jsonl(),
            "{\"job\":\"pair\",\"status\":\"verified\",\"equivalent\":true}"
        );
        assert!(equivalent.is_done());
        assert!(equivalent.qor().is_none());

        let refuted = JobReport {
            job: "pair".into(),
            outcome: JobOutcome::Verified(VerifyVerdict::counterexample("0110".into(), 2)),
            cached: false,
        };
        assert_eq!(
            refuted.to_jsonl(),
            concat!(
                "{\"job\":\"pair\",\"status\":\"verified\",\"equivalent\":false,",
                "\"counterexample\":\"0110\",\"output_index\":2}"
            )
        );
        assert!(refuted.is_done(), "a refuted check still *completed*");
        // The cached flag never leaks into the line.
        let cached = JobReport { cached: true, ..refuted.clone() };
        assert_eq!(cached.to_jsonl(), refuted.to_jsonl());
    }

    #[test]
    fn failed_line_carries_the_error() {
        let report = JobReport {
            job: "bad".into(),
            outcome: JobOutcome::Failed("parse error at line 1: nope".into()),
            cached: false,
        };
        let pairs = parse_flat_object(&report.to_jsonl()).unwrap();
        assert_eq!(pairs[1].1.as_str(), Some("failed"));
        assert!(pairs[2].1.as_str().unwrap().contains("line 1"));
    }

    #[test]
    fn qor_json_round_trips_byte_identically() {
        let original = qor();
        let payload = original.to_json();
        let decoded = DesignQor::from_json(&payload).unwrap();
        assert_eq!(decoded, original);
        assert_eq!(decoded.to_json(), payload, "re-render is byte-identical");
    }

    #[test]
    fn qor_from_json_is_strict() {
        let good = qor().to_json();
        assert!(DesignQor::from_json("not json").is_err());
        assert!(DesignQor::from_json("{}").is_err(), "missing fields rejected");
        let wrong_type = good.replace("\"gate_count\":321", "\"gate_count\":\"many\"");
        assert!(DesignQor::from_json(&wrong_type).is_err());
        let fractional = good.replace("\"gsg_swaps\":17", "\"gsg_swaps\":17.5");
        assert!(DesignQor::from_json(&fractional).is_err(), "counts must be integers");
    }

    #[test]
    fn canonical_sort_is_plain_lexicographic() {
        let mut lines = vec!["b".to_string(), "a".to_string(), "c".to_string()];
        canonical_sort(&mut lines);
        assert_eq!(lines, ["a", "b", "c"]);
    }
}
