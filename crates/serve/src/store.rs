//! The crash-safe on-disk result store (`rapids-serve --store DIR`).
//!
//! Cache entries spill to an append-only log so a restarted service is
//! **cache-warm**: a job whose (netlist, config) fingerprints match a
//! stored record answers from disk without an optimizer run, byte-identical
//! to the in-memory path (the payload is the [`DesignQor::to_json`]
//! rendering, which round-trips exactly).
//!
//! ## Record format
//!
//! `DIR/store.log` is a sequence of length-prefixed, checksummed records,
//! all integers little-endian:
//!
//! ```text
//! u32 payload_len | u64 netlist_fp | u64 config_fp | payload | u64 checksum
//! ```
//!
//! where `payload` is the QoR record as flat JSON and `checksum` is FNV-1a
//! over every preceding byte of the record (length prefix and key
//! included).
//!
//! ## Recovery rules
//!
//! A crash mid-append leaves a torn record *at the tail* — never in the
//! middle, because records are written with a single `write_all` and the
//! log is append-only.  Startup replays the log and stops at the first
//! record that is incomplete (EOF inside the record), checksum-mismatched,
//! or semantically unparsable; the file is truncated back to the last
//! valid boundary so the next append starts clean.  Every record before
//! the tear survives ([`ResultStore::recovered_records`]); the torn tail
//! is counted in [`ResultStore::dropped_corrupt_records`].

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::fingerprint::fnv1a;
use crate::report::DesignQor;

/// The log's file name inside the store directory.
pub const STORE_FILE: &str = "store.log";

/// A content-addressed, crash-safe result store over an append-only log.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    /// Append handle, serialized so concurrent workers' records never
    /// interleave.
    file: Mutex<File>,
    /// Every valid record replayed at open plus everything appended since.
    entries: Mutex<HashMap<(u64, u64), DesignQor>>,
    recovered: usize,
    dropped: usize,
    disk_hits: AtomicUsize,
}

impl ResultStore {
    /// Opens (creating if needed) the store under `dir` and replays its
    /// log, truncating a torn or corrupt tail back to the last valid
    /// record boundary.
    ///
    /// # Errors
    ///
    /// Directory creation or log open/read/truncate failures.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<ResultStore> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(STORE_FILE);
        let file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        let bytes = std::fs::read(&path)?;
        let (entries, valid_len, recovered) = replay(&bytes);
        let dropped = usize::from(valid_len < bytes.len());
        if dropped == 1 {
            // Drop the torn tail so the next append starts at a record
            // boundary; without this the log would stay unparsable past
            // this point forever.
            file.set_len(valid_len as u64)?;
        }
        Ok(ResultStore {
            path,
            file: Mutex::new(file),
            entries: Mutex::new(entries),
            recovered,
            dropped,
            disk_hits: AtomicUsize::new(0),
        })
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records currently held (replayed + appended).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("store lock poisoned").len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Valid records replayed from the log at open.
    pub fn recovered_records(&self) -> usize {
        self.recovered
    }

    /// Whether a torn/corrupt tail was dropped at open (0 or 1: tears are
    /// only ever at the tail of an append-only log).
    pub fn dropped_corrupt_records(&self) -> usize {
        self.dropped
    }

    /// Lookups served from the store since open.
    pub fn disk_hits(&self) -> usize {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// The stored result for a (netlist, config) fingerprint pair, if any;
    /// hits are counted in [`ResultStore::disk_hits`].
    pub fn lookup(&self, key: (u64, u64)) -> Option<DesignQor> {
        let hit = self.entries.lock().expect("store lock poisoned").get(&key).cloned();
        if hit.is_some() {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Appends one result record (no-op if the key is already stored — the
    /// log never grows duplicate records for re-computed identical work).
    ///
    /// # Errors
    ///
    /// Log write/flush failures; the in-memory side is only updated once
    /// the record is durably written.
    pub fn append(&self, key: (u64, u64), qor: &DesignQor) -> std::io::Result<()> {
        let mut entries = self.entries.lock().expect("store lock poisoned");
        if entries.contains_key(&key) {
            return Ok(());
        }
        let record = encode_record(key, qor);
        {
            let mut file = self.file.lock().expect("store file lock poisoned");
            file.write_all(&record)?;
            file.flush()?;
        }
        entries.insert(key, qor.clone());
        Ok(())
    }
}

/// Fixed per-record overhead: length prefix + key + checksum.
const HEADER_LEN: usize = 4 + 8 + 8;
const CHECKSUM_LEN: usize = 8;

/// Encodes one record (see the module docs for the layout).
fn encode_record(key: (u64, u64), qor: &DesignQor) -> Vec<u8> {
    let payload = qor.to_json().into_bytes();
    let mut record = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&key.0.to_le_bytes());
    record.extend_from_slice(&key.1.to_le_bytes());
    record.extend_from_slice(&payload);
    let checksum = fnv1a(&record);
    record.extend_from_slice(&checksum.to_le_bytes());
    record
}

/// Replays a log image: `(entries, valid prefix length, record count)`.
/// Stops at the first incomplete, checksum-mismatched or unparsable
/// record; everything before it is kept.
fn replay(bytes: &[u8]) -> (HashMap<(u64, u64), DesignQor>, usize, usize) {
    let mut entries = HashMap::new();
    let mut pos = 0usize;
    let mut records = 0usize;
    while let Some(header) = bytes.get(pos..pos + HEADER_LEN) {
        let payload_len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let netlist_fp = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let config_fp = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        let body_end = pos + HEADER_LEN + payload_len;
        let record_end = body_end + CHECKSUM_LEN;
        let Some(stored) = bytes.get(body_end..record_end) else { break };
        let checksum = u64::from_le_bytes(stored.try_into().expect("8 bytes"));
        if fnv1a(&bytes[pos..body_end]) != checksum {
            break;
        }
        let Ok(payload) = std::str::from_utf8(&bytes[pos + HEADER_LEN..body_end]) else { break };
        let Ok(qor) = DesignQor::from_json(payload) else { break };
        entries.insert((netlist_fp, config_fp), qor);
        records += 1;
        pos = record_end;
    }
    (entries, pos, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qor(name: &str, delay: f64) -> DesignQor {
        DesignQor {
            name: name.into(),
            gate_count: 100,
            initial_delay_ns: delay,
            gsg_final_delay_ns: delay - 1.0,
            gs_final_delay_ns: delay - 0.5,
            combined_final_delay_ns: delay - 1.25,
            gs_final_area_um2: 4000.0,
            combined_final_area_um2: 4100.25,
            gsg_swaps: 17,
            gsg_es_swaps: 2,
            combined_es_swaps: 3,
            gs_resized: 40,
            legalized: false,
            hpwl_um: 123456.75,
            max_displacement_um: 0.0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rapids_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_across_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let store = ResultStore::open(&dir).unwrap();
            assert!(store.is_empty());
            store.append((1, 2), &qor("a", 10.0)).unwrap();
            store.append((3, 4), &qor("b", 20.0)).unwrap();
            // Duplicate key: no growth.
            store.append((1, 2), &qor("a", 10.0)).unwrap();
            assert_eq!(store.len(), 2);
            assert_eq!(store.disk_hits(), 0);
        }
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.recovered_records(), 2);
        assert_eq!(store.dropped_corrupt_records(), 0);
        assert_eq!(store.lookup((1, 2)).unwrap(), qor("a", 10.0));
        assert_eq!(store.lookup((9, 9)), None);
        assert_eq!(store.disk_hits(), 1, "only the hit counts");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The acceptance-criteria property test: truncate the log at *every*
    /// byte boundary inside the trailing record, and separately corrupt
    /// every byte of it; recovery must keep all earlier records and drop
    /// exactly the torn one.
    #[test]
    fn recovery_survives_every_trailing_tear_and_corruption() {
        let dir = temp_dir("tear");
        let store = ResultStore::open(&dir).unwrap();
        store.append((1, 1), &qor("a", 10.0)).unwrap();
        store.append((2, 2), &qor("b", 20.0)).unwrap();
        let keep_len = std::fs::metadata(store.path()).unwrap().len() as usize;
        store.append((3, 3), &qor("c", 30.0)).unwrap();
        let full = std::fs::read(store.path()).unwrap();
        let path = store.path().to_path_buf();
        drop(store);

        // Truncation at every boundary of the trailing record (keep_len
        // itself is the clean two-record log; full.len() is untorn).
        for cut in keep_len..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let store = ResultStore::open(&dir).unwrap();
            assert_eq!(store.recovered_records(), 2, "truncated at byte {cut}");
            assert_eq!(
                store.dropped_corrupt_records(),
                usize::from(cut != keep_len),
                "truncated at byte {cut}"
            );
            assert_eq!(store.lookup((1, 1)).unwrap(), qor("a", 10.0));
            assert_eq!(store.lookup((2, 2)).unwrap(), qor("b", 20.0));
            assert_eq!(store.lookup((3, 3)), None, "torn record must be dropped");
            // The truncated tail is gone from disk: a fresh append lands on
            // a clean boundary and survives another reopen.
            store.append((4, 4), &qor("d", 40.0)).unwrap();
            drop(store);
            let store = ResultStore::open(&dir).unwrap();
            assert_eq!(store.recovered_records(), 3, "after re-append at byte {cut}");
            assert_eq!(store.lookup((4, 4)).unwrap(), qor("d", 40.0));
        }

        // Bit-rot: flip one byte at every offset of the trailing record.
        // The checksum (or, for the length prefix, the framing) must
        // reject it without touching the first two records.
        for offset in keep_len..full.len() {
            let mut image = full.clone();
            image[offset] ^= 0xff;
            std::fs::write(&path, &image).unwrap();
            let store = ResultStore::open(&dir).unwrap();
            assert_eq!(store.recovered_records(), 2, "corrupted byte {offset}");
            assert_eq!(store.dropped_corrupt_records(), 1, "corrupted byte {offset}");
            assert_eq!(store.lookup((2, 2)).unwrap(), qor("b", 20.0));
            assert_eq!(store.lookup((3, 3)), None);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_as_a_tear() {
        let dir = temp_dir("badlen");
        let store = ResultStore::open(&dir).unwrap();
        store.append((1, 1), &qor("a", 10.0)).unwrap();
        let path = store.path().to_path_buf();
        drop(store);
        // Claim a payload far past EOF: replay must stop cleanly.
        let mut image = std::fs::read(&path).unwrap();
        let keep = image.len();
        image.extend_from_slice(&u32::MAX.to_le_bytes());
        image.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &image).unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.recovered_records(), 1);
        assert_eq!(store.dropped_corrupt_records(), 1);
        assert_eq!(std::fs::metadata(store.path()).unwrap().len() as usize, keep);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
