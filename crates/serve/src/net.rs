//! The TCP line protocol: the same JSONL job/report exchange as the CLI,
//! served over `std::net::TcpListener` for true long-running use.
//!
//! Protocol (newline-delimited, UTF-8, one JSON object per line):
//!
//! * a **job spec** line ([`crate::Job::from_spec_line`] schema) runs the
//!   job and answers with its report line — cached results answer without
//!   recompute, and the cache persists across connections;
//! * `{"cmd":"ping"}` answers `{"ok":"pong"}` (liveness probe);
//! * `{"cmd":"stats"}` answers the engine counters (optimizer runs, cache
//!   hits, cached results, LRU evictions) plus the per-job latency
//!   percentiles (`job_p50_us`, `job_p99_us`);
//! * `{"cmd":"metrics"}` answers the full metrics snapshot — the
//!   process-global registry (timing, sizing, legalize, cec counters)
//!   merged with this engine's per-instance counters and latency
//!   histogram — as one JSON object line;
//! * `{"cmd":"series","name":…,"last":K}` answers a telemetry series
//!   window — `{"ok":"series","name":…,"points":[[tick,value],…]}` — from
//!   the armed [`TelemetryPlane`](crate::telemetry::TelemetryPlane)
//!   (`last` 0 or absent = all retained points); rejected when telemetry
//!   is off or the series is unknown;
//! * `{"cmd":"alerts"}` answers `{"ok":"alerts","alerts":[…],"slo":[…]}` —
//!   recent change-detection alerts plus SLO status (rejected when
//!   telemetry is off);
//! * `{"cmd":"prom"}` answers the merged metrics snapshot in
//!   Prometheus-style text exposition — the one **multi-line** reply,
//!   terminated by a line reading `# EOF`;
//! * `{"cmd":"shutdown"}` answers `{"ok":"shutdown"}` and stops the
//!   server: no new connections are accepted, and connections already open
//!   are drained before the listener returns;
//! * a malformed line — bad JSON, invalid UTF-8, or longer than
//!   [`MAX_LINE_BYTES`] — answers `{"status":"rejected","error":…}`; the
//!   connection stays up;
//! * when the server is at its admission cap (`--max-pending`), a job line
//!   answers `{"status":"busy",…}` *without* running the job — backpressure
//!   instead of unbounded queueing.
//!
//! Connections are served **concurrently**, one thread per connection over
//! the shared [`Engine`] (whose cache and counters are thread-safe), so a
//! client holding its connection open never blocks another.  Within one
//! connection each line is answered before the next is read: ordering is
//! the client's, so a driving script can rely on request/response pairing
//! without message ids.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::Engine;
use crate::faults::FaultPoint;
use crate::job::Job;
use crate::json::{escape_string, parse_flat_object};

/// Hard cap on one protocol line (bytes, newline excluded).  A line past
/// the cap is drained and rejected without buffering it, so a hostile
/// client cannot balloon server memory.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Serves the line protocol on an already-bound listener until a client
/// sends `{"cmd":"shutdown"}`.  Returns the number of job lines served
/// (across all connections).
///
/// # Errors
///
/// Only listener-level `accept` failures propagate; per-connection I/O
/// errors just close that connection.
pub fn serve_connections(engine: &Engine, listener: &TcpListener) -> std::io::Result<usize> {
    serve_connections_bounded(engine, listener, 0)
}

/// [`serve_connections`] with an admission cap: at most `max_pending` job
/// lines execute concurrently across all connections (`0` = unbounded).
/// A job line arriving at the cap is answered `{"status":"busy",…}`
/// without being run; control lines (`ping`, `stats`, `shutdown`) always
/// get through.
///
/// # Errors
///
/// Only listener-level `accept` failures propagate; per-connection I/O
/// errors just close that connection.
pub fn serve_connections_bounded(
    engine: &Engine,
    listener: &TcpListener,
    max_pending: usize,
) -> std::io::Result<usize> {
    let served = AtomicUsize::new(0);
    let pending = AtomicUsize::new(0);
    let shutdown = AtomicBool::new(false);
    // Read-half handles of the connections currently open, keyed by a
    // connection id and removed as each handler exits (so a long-running
    // daemon holds handles — and file descriptors — only for *live*
    // connections).  Shutdown uses them to unblock handlers parked in
    // `read_line` on idle clients.
    let open: Mutex<HashMap<u64, TcpStream>> = Mutex::new(HashMap::new());
    // Set once the accept loop has exited; the shutdown waker retries its
    // loopback poke until this flips, so a single lost poke cannot leave
    // the loop parked in `accept` forever.
    let accept_loop_exited = AtomicBool::new(false);
    let mut next_id = 0u64;
    let mut accept_error = None;
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                // The stream that woke us (or any racing client) is
                // dropped unanswered; open connections keep draining until
                // the scope joins their handlers.
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) => {
                    accept_error = Some(e);
                    break;
                }
            };
            // Fault point: an injected accept failure refuses this one
            // connection (dropping the stream closes it) and keeps serving.
            if engine.fault_plan().fire(FaultPoint::ConnectionAccept, None, None).is_err() {
                continue;
            }
            let id = next_id;
            next_id += 1;
            // An untracked connection could park a handler past shutdown
            // forever, so a connection we cannot track (fd pressure) is
            // refused rather than served: dropping the stream closes it.
            let handle = match stream.try_clone() {
                Ok(handle) => handle,
                Err(_) => continue,
            };
            open.lock().expect("open-connection lock poisoned").insert(id, handle);
            let served = &served;
            let pending = &pending;
            let shutdown = &shutdown;
            let open = &open;
            let accept_loop_exited = &accept_loop_exited;
            scope.spawn(move || {
                // A dropped client must not take the server down.
                let requested_shutdown =
                    handle_connection(engine, stream, served, pending, max_pending)
                        .unwrap_or(false);
                open.lock().expect("open-connection lock poisoned").remove(&id);
                if requested_shutdown && !shutdown.swap(true, Ordering::SeqCst) {
                    wake_acceptor(listener, accept_loop_exited);
                }
            });
        }
        accept_loop_exited.store(true, Ordering::SeqCst);
        // Drain, don't hang: close the *read* half of every connection
        // still open, so a handler parked on an idle client sees EOF and
        // exits, while a handler mid-job can still write its response on
        // the intact write half.  Racing handler exits are fine — shutting
        // down an already-closed socket errors harmlessly.
        for stream in open.lock().expect("open-connection lock poisoned").values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    });
    match accept_error {
        Some(e) => Err(e),
        None => Ok(served.into_inner()),
    }
}

/// Unblocks an accept loop parked in `accept` after the shutdown flag was
/// set, by connecting to its own listener.  A wildcard bind (0.0.0.0 / ::)
/// is not a connectable destination, so the poke aims at the loopback of
/// the same family.
///
/// One fire-and-forget connect is not enough: the poke can fail
/// transiently (ephemeral-port pressure under load), or the queued
/// connection can be reaped before the loop wakes — and with no further
/// client traffic the loop would park forever.  So the poke retries until
/// the loop confirms it exited (or a generous retry budget runs out, after
/// which the next real connection still unblocks the loop).
fn wake_acceptor(listener: &TcpListener, accept_loop_exited: &AtomicBool) {
    let Ok(mut addr) = listener.local_addr() else { return };
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            std::net::SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            std::net::SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    for _ in 0..200 {
        if accept_loop_exited.load(Ordering::SeqCst) {
            return;
        }
        drop(TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(100)));
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

/// One bounded line read off a connection.
enum LineRead {
    /// A complete line within the cap.
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; its bytes were drained, not
    /// buffered.
    TooLong,
    /// The line was not valid UTF-8.
    BadUtf8,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line, buffering at most `max` bytes.  Past
/// the cap the rest of the line is consumed and discarded, so the
/// connection re-synchronizes on the next newline.
fn read_bounded_line(reader: &mut impl BufRead, max: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut truncated = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if buf.is_empty() && !truncated {
                return Ok(LineRead::Eof);
            }
            break; // EOF terminates a final unterminated line.
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !truncated {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                reader.consume(pos + 1);
                break;
            }
            None => {
                let n = chunk.len();
                if !truncated {
                    buf.extend_from_slice(chunk);
                    if buf.len() > max {
                        truncated = true;
                        buf.clear();
                    }
                }
                reader.consume(n);
            }
        }
    }
    if truncated || buf.len() > max {
        return Ok(LineRead::TooLong);
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(LineRead::Line(line)),
        Err(_) => Ok(LineRead::BadUtf8),
    }
}

/// Serves one connection to completion; `Ok(true)` when the client asked
/// for a server shutdown.
fn handle_connection(
    engine: &Engine,
    stream: TcpStream,
    served: &AtomicUsize,
    pending: &AtomicUsize,
    max_pending: usize,
) -> std::io::Result<bool> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let (response, requested_shutdown) = match read_bounded_line(&mut reader, MAX_LINE_BYTES)? {
            LineRead::Eof => return Ok(false),
            LineRead::TooLong => {
                (reject_line(format!("line exceeds {MAX_LINE_BYTES} bytes")), false)
            }
            LineRead::BadUtf8 => (reject_line("line is not valid utf-8".to_string()), false),
            LineRead::Line(line) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                answer_line(engine, line, served, pending, max_pending)
            }
        };
        // Fault point: an injected emit failure abandons this connection
        // (the client sees it closed); the server and its other
        // connections keep going.
        if engine.fault_plan().fire(FaultPoint::ReportEmit, None, None).is_err() {
            return Ok(false);
        }
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if requested_shutdown {
            return Ok(true);
        }
    }
}

fn reject_line(error: String) -> String {
    format!("{{\"status\":\"rejected\",\"error\":{}}}", escape_string(&error))
}

/// Answers one protocol line; the flag is `true` for a shutdown request.
fn answer_line(
    engine: &Engine,
    line: &str,
    served: &AtomicUsize,
    pending: &AtomicUsize,
    max_pending: usize,
) -> (String, bool) {
    let reject = |error: String| (reject_line(error), false);
    let pairs = match parse_flat_object(line) {
        Ok(pairs) => pairs,
        Err(e) => return reject(e),
    };
    let field = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let command = field("cmd").map(|v| v.as_str().unwrap_or("").to_string());
    match command.as_deref() {
        Some("ping") => ("{\"ok\":\"pong\"}".to_string(), false),
        Some("shutdown") => ("{\"ok\":\"shutdown\"}".to_string(), true),
        Some("stats") => {
            let latency = engine.job_latency_us();
            (
                format!(
                    concat!(
                        "{{\"ok\":\"stats\",\"optimizer_runs\":{},\"cache_hits\":{},",
                        "\"cached_results\":{},\"evictions\":{},\"disk_hits\":{},",
                        "\"recovered_records\":{},\"dropped_corrupt_records\":{},",
                        "\"verify_runs\":{},\"cached_verifications\":{},",
                        "\"jobs_timed\":{},\"job_p50_us\":{},\"job_p99_us\":{}}}"
                    ),
                    engine.optimizer_runs(),
                    engine.cache_hits(),
                    engine.cached_results(),
                    engine.cache_evictions(),
                    engine.disk_hits(),
                    engine.recovered_records(),
                    engine.dropped_corrupt_records(),
                    engine.verify_runs(),
                    engine.cached_verifications(),
                    latency.count,
                    latency.p50(),
                    latency.p99(),
                ),
                false,
            )
        }
        Some("metrics") => (engine.metrics_snapshot().to_json_line(), false),
        Some("prom") => {
            // The one multi-line reply: exposition text, then a `# EOF`
            // terminator line so stream clients know where it ends.
            (format!("{}# EOF", engine.metrics_snapshot().to_prometheus_text()), false)
        }
        Some("series") => {
            let Some(plane) = engine.telemetry() else {
                return reject("telemetry is not armed (start with --telemetry-s)".to_string());
            };
            let Some(name) = field("name").and_then(|v| v.as_str()).map(str::to_string) else {
                return reject("series needs a string `name`".to_string());
            };
            let last = field("last").and_then(|v| v.as_num()).unwrap_or(0.0).max(0.0) as usize;
            match plane.series_json(&name, last) {
                Some(reply) => (reply, false),
                None => reject(format!("unknown series `{name}`")),
            }
        }
        Some("alerts") => match engine.telemetry() {
            Some(plane) => (plane.alerts_json(), false),
            None => reject("telemetry is not armed (start with --telemetry-s)".to_string()),
        },
        Some(other) => reject(format!("unknown command `{other}`")),
        None => match Job::from_spec_line(line, engine.base_config()) {
            Ok(job) => {
                if !admit(pending, max_pending) {
                    return (
                        format!(
                            "{{\"status\":\"busy\",\"error\":{}}}",
                            escape_string(&format!(
                                "server at capacity ({max_pending} pending jobs)"
                            ))
                        ),
                        false,
                    );
                }
                served.fetch_add(1, Ordering::Relaxed);
                let report = engine.execute(&job);
                pending.fetch_sub(1, Ordering::AcqRel);
                // Manual-tick telemetry samples after each served job —
                // the listener-mode quiescent point.
                engine.telemetry_tick();
                (report.to_jsonl(), false)
            }
            Err(e) => reject(e),
        },
    }
}

/// Reserves one admission slot; `false` when the cap (`0` = unbounded) is
/// already fully occupied.
fn admit(pending: &AtomicUsize, max_pending: usize) -> bool {
    loop {
        let current = pending.load(Ordering::Acquire);
        if max_pending > 0 && current >= max_pending {
            return false;
        }
        if pending
            .compare_exchange(current, current + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_flow::PipelineConfig;

    struct Client {
        writer: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: std::net::SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client { writer: stream.try_clone().unwrap(), reader: BufReader::new(stream) }
        }

        fn ask(&mut self, line: &str) -> String {
            writeln!(self.writer, "{line}").unwrap();
            self.writer.flush().unwrap();
            let mut answer = String::new();
            self.reader.read_line(&mut answer).unwrap();
            answer.trim().to_string()
        }
    }

    /// End-to-end over a real socket: jobs, cache persistence across
    /// connections, rejection, ping, shutdown.
    #[test]
    fn line_protocol_over_loopback() {
        let engine = Engine::new(PipelineConfig::fast());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());

            let talk = |lines: &[&str]| -> Vec<String> {
                let mut client = Client::connect(addr);
                lines.iter().map(|line| client.ask(line)).collect()
            };

            let first = talk(&[r#"{"cmd":"ping"}"#, r#"{"suite":"c432"}"#, "not json"]);
            assert_eq!(first[0], "{\"ok\":\"pong\"}");
            assert!(
                first[1].contains("\"status\":\"done\"") && first[1].contains("\"name\":\"c432\"")
            );
            assert!(first[2].contains("\"status\":\"rejected\""));

            // Second connection: same design is served from the cache.
            let second =
                talk(&[r#"{"suite":"c432"}"#, r#"{"cmd":"stats"}"#, r#"{"cmd":"shutdown"}"#]);
            assert_eq!(second[0], first[1], "cached replay must be byte-identical");
            assert!(
                second[1].contains("\"optimizer_runs\":1")
                    && second[1].contains("\"cache_hits\":1")
                    && second[1].contains("\"evictions\":0")
            );
            assert_eq!(second[2], "{\"ok\":\"shutdown\"}");

            assert_eq!(server.join().unwrap(), 2, "two job lines were served");
        });
    }

    /// A `verify` job over the wire: proven-equivalent and refuted pairs
    /// both answer structured verdict lines, and a resubmitted pair is
    /// served from the verdict cache byte-identically.
    #[test]
    fn verify_jobs_over_loopback() {
        let engine = Engine::new(PipelineConfig::fast());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fixtures = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/fixtures");

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());
            let mut client = Client::connect(addr);

            let equivalent = client.ask(&format!(
                r#"{{"blif":"{fixtures}/tiny_mux.blif","verify_blif":"{fixtures}/tiny_mux_demorgan.blif","name":"eq"}}"#
            ));
            assert_eq!(equivalent, "{\"job\":\"eq\",\"status\":\"verified\",\"equivalent\":true}");

            let refuted = client.ask(&format!(
                r#"{{"blif":"{fixtures}/tiny_mux.blif","verify_blif":"{fixtures}/tiny_mux_mutated.blif","name":"ne"}}"#
            ));
            assert!(
                refuted.contains("\"equivalent\":false")
                    && refuted.contains("\"counterexample\":")
                    && refuted.contains("\"output_index\":1"),
                "{refuted}"
            );

            // Resubmission on a *new* connection: the verdict cache answers
            // byte-identically without re-running the SAT check.
            let mut second = Client::connect(addr);
            let replay = second.ask(&format!(
                r#"{{"blif":"{fixtures}/tiny_mux.blif","verify_blif":"{fixtures}/tiny_mux_demorgan.blif","name":"eq"}}"#
            ));
            assert_eq!(replay, equivalent, "cached verify replay must be byte-identical");
            let stats = second.ask(r#"{"cmd":"stats"}"#);
            assert!(
                stats.contains("\"verify_runs\":2") && stats.contains("\"cached_verifications\":2"),
                "{stats}"
            );
            assert_eq!(second.ask(r#"{"cmd":"shutdown"}"#), "{\"ok\":\"shutdown\"}");
            drop(client);
            drop(second);
            assert_eq!(server.join().unwrap(), 3, "three job lines were served");
        });
    }

    /// A shutdown must drain and return even while another client holds
    /// its connection open and idle — the server closes the read halves,
    /// so the parked handler sees EOF instead of blocking forever.
    #[test]
    fn shutdown_returns_despite_an_idle_open_connection() {
        let engine = Engine::new(PipelineConfig::fast());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());
            let mut idle = Client::connect(addr);
            assert_eq!(idle.ask(r#"{"cmd":"ping"}"#), "{\"ok\":\"pong\"}");
            let mut closer = Client::connect(addr);
            assert_eq!(closer.ask(r#"{"cmd":"shutdown"}"#), "{\"ok\":\"shutdown\"}");
            // `idle` is deliberately NOT dropped before the join: the
            // server must come back anyway.
            assert_eq!(server.join().unwrap(), 0, "no job lines were served");
            drop(idle);
            drop(closer);
        });
    }

    /// Two clients hold connections open *simultaneously*: the second
    /// completes a full exchange while the first is mid-session — which a
    /// serial accept loop cannot do — and the first keeps working after.
    #[test]
    fn concurrent_connections_over_loopback() {
        let engine = Engine::new(PipelineConfig::fast());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());

            let mut slow = Client::connect(addr);
            assert_eq!(slow.ask(r#"{"cmd":"ping"}"#), "{\"ok\":\"pong\"}", "slow is live");

            // While `slow` sits mid-session, a second client runs a whole
            // job exchange to completion.
            let mut fast = Client::connect(addr);
            let line = fast.ask(r#"{"suite":"c432","fast":true}"#);
            assert!(line.contains("\"status\":\"done\""), "{line}");

            // The first connection still works — and sees the shared
            // cache state the second client's job created.
            let replay = slow.ask(r#"{"suite":"c432","fast":true}"#);
            assert_eq!(replay, line, "shared cache answers byte-identically across connections");
            assert!(slow.ask(r#"{"cmd":"stats"}"#).contains("\"cache_hits\":1"));

            // Shutdown from one client drains, then stops the listener.
            assert_eq!(slow.ask(r#"{"cmd":"shutdown"}"#), "{\"ok\":\"shutdown\"}");
            drop(slow);
            drop(fast);
            assert_eq!(server.join().unwrap(), 2);
        });
    }

    /// An oversized line is drained and rejected with a structured error —
    /// and the *same connection* keeps working afterwards.
    #[test]
    fn oversized_line_is_rejected_and_the_connection_survives() {
        let engine = Engine::new(PipelineConfig::fast());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());
            let mut client = Client::connect(addr);

            let huge = "x".repeat(MAX_LINE_BYTES + 1);
            let answer = client.ask(&huge);
            assert!(
                answer.contains("\"status\":\"rejected\"")
                    && answer.contains("line exceeds 1048576 bytes"),
                "{answer}"
            );

            // Invalid UTF-8 gets the same treatment.
            client.writer.write_all(b"\"abc\xff\xfe\"\n").unwrap();
            client.writer.flush().unwrap();
            let mut answer = String::new();
            client.reader.read_line(&mut answer).unwrap();
            assert!(answer.contains("line is not valid utf-8"), "{answer}");

            // The connection re-synchronized: a normal exchange still works.
            assert_eq!(client.ask(r#"{"cmd":"ping"}"#), "{\"ok\":\"pong\"}");
            assert_eq!(client.ask(r#"{"cmd":"shutdown"}"#), "{\"ok\":\"shutdown\"}");
            assert_eq!(server.join().unwrap(), 0, "no job lines ran");
        });
    }

    /// Admission control: while one job occupies the single admission
    /// slot (held open by an injected hang), a second job line answers
    /// `busy` without running; control lines still get through; and once
    /// the slot frees, jobs are admitted again.
    #[test]
    fn admission_cap_answers_busy_without_running_the_job() {
        use crate::faults::FaultPlan;
        // The hang is scoped to c432 and cut by the job's own 1 s deadline.
        let engine = Engine::new(PipelineConfig::fast())
            .with_fault_plan(FaultPlan::parse("job-run@c432=delay:60000").unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections_bounded(&engine, &listener, 1).unwrap());

            // Client A submits the hanging job (answer comes ~1 s later).
            let mut a = Client::connect(addr);
            writeln!(a.writer, r#"{{"suite":"c432","fast":true,"timeout_s":1}}"#).unwrap();
            a.writer.flush().unwrap();

            // Client B waits until A's job is *definitely* executing (the
            // run counter bumps before the injected hang), then probes.
            let mut b = Client::connect(addr);
            while !b.ask(r#"{"cmd":"stats"}"#).contains("\"optimizer_runs\":1") {
                std::thread::yield_now();
            }
            let busy = b.ask(r#"{"suite":"c499","fast":true}"#);
            assert!(
                busy.contains("\"status\":\"busy\"")
                    && busy.contains("server at capacity (1 pending jobs)"),
                "{busy}"
            );

            // A's deadline fires: the hang is cut and reported as timeout.
            let mut timed_out = String::new();
            a.reader.read_line(&mut timed_out).unwrap();
            assert!(
                timed_out.contains("\"status\":\"failed\"")
                    && timed_out.contains("timeout after 1s"),
                "{timed_out}"
            );

            // The slot is free again: B's resubmission runs for real.
            let done = b.ask(r#"{"suite":"c499","fast":true}"#);
            assert!(done.contains("\"status\":\"done\""), "{done}");

            assert_eq!(b.ask(r#"{"cmd":"shutdown"}"#), "{\"ok\":\"shutdown\"}");
            drop(a);
            drop(b);
            assert_eq!(server.join().unwrap(), 2, "the busy-rejected line is not counted");
        });
    }

    /// The telemetry verbs over a real socket: each served job ticks the
    /// manual plane, `series` answers ring windows, `alerts` answers the
    /// detector state, and `prom` streams multi-line exposition text
    /// terminated by `# EOF`.
    #[test]
    fn telemetry_verbs_over_loopback() {
        use crate::telemetry::{TelemetryConfig, TelemetryPlane};
        use std::sync::Arc;
        let mut engine = Engine::new(PipelineConfig::fast());
        let config = TelemetryConfig { manual: true, ..TelemetryConfig::default() };
        let plane = Arc::new(TelemetryPlane::new(engine.metrics_registry(), config));
        plane.prime();
        engine = engine.with_telemetry(Arc::clone(&plane));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());
            let mut client = Client::connect(addr);

            // No tick has happened yet: the series rings are empty.
            let early = client.ask(r#"{"cmd":"series","name":"serve.cache_hits"}"#);
            assert!(early.contains("unknown series `serve.cache_hits`"), "{early}");

            // Two jobs — the repeat is a cache hit — tick the plane once
            // each at the post-job quiescent point.
            client.ask(r#"{"suite":"c432","fast":true}"#);
            client.ask(r#"{"suite":"c432","fast":true}"#);

            let series = client.ask(r#"{"cmd":"series","name":"serve.cache_hits"}"#);
            assert_eq!(
                series,
                "{\"ok\":\"series\",\"name\":\"serve.cache_hits\",\"points\":[[0,0],[1,1]]}"
            );
            let windowed = client.ask(r#"{"cmd":"series","name":"serve.cache_hits","last":1}"#);
            assert!(windowed.ends_with("\"points\":[[1,1]]}"), "{windowed}");
            let unnamed = client.ask(r#"{"cmd":"series"}"#);
            assert!(unnamed.contains("series needs a string `name`"), "{unnamed}");

            // No detectors were configured, so the alert log is empty.
            assert_eq!(
                client.ask(r#"{"cmd":"alerts"}"#),
                "{\"ok\":\"alerts\",\"alerts\":[],\"slo\":[]}"
            );

            // `prom` is the one multi-line reply: read until `# EOF`.
            writeln!(client.writer, r#"{{"cmd":"prom"}}"#).unwrap();
            client.writer.flush().unwrap();
            let mut prom = String::new();
            loop {
                let mut line = String::new();
                client.reader.read_line(&mut line).unwrap();
                let done = line.trim() == "# EOF";
                prom.push_str(&line);
                if done {
                    break;
                }
            }
            assert!(prom.contains("# TYPE rapids_serve_cache_hits counter"), "{prom}");
            assert!(prom.contains("rapids_serve_cache_hits 1\n"), "{prom}");
            assert!(prom.contains("# TYPE rapids_serve_job_us summary"), "{prom}");

            // The connection stays line-synchronized after the multi-line
            // reply.
            assert_eq!(client.ask(r#"{"cmd":"ping"}"#), "{\"ok\":\"pong\"}");
            assert_eq!(plane.ticks(), 2, "one manual tick per served job");
            assert_eq!(client.ask(r#"{"cmd":"shutdown"}"#), "{\"ok\":\"shutdown\"}");
            drop(client);
            assert_eq!(server.join().unwrap(), 2);
        });
    }

    /// Without an armed plane, the telemetry verbs answer a structured
    /// rejection pointing at the arming flag; `prom` still works (the
    /// registry always exists).
    #[test]
    fn telemetry_verbs_reject_when_unarmed() {
        let engine = Engine::new(PipelineConfig::fast());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());
            let mut client = Client::connect(addr);
            for verb in [r#"{"cmd":"series","name":"x"}"#, r#"{"cmd":"alerts"}"#] {
                let answer = client.ask(verb);
                assert!(
                    answer.contains("telemetry is not armed (start with --telemetry-s)"),
                    "{answer}"
                );
            }
            assert_eq!(client.ask(r#"{"cmd":"shutdown"}"#), "{\"ok\":\"shutdown\"}");
            assert_eq!(server.join().unwrap(), 0);
        });
    }

    /// An injected accept fault refuses exactly one connection; the next
    /// connection is served normally.
    #[test]
    fn injected_accept_fault_refuses_one_connection() {
        use crate::faults::{FaultAction, FaultPlan, FaultPoint};
        let engine = Engine::new(PipelineConfig::fast()).with_fault_plan(FaultPlan::single(
            FaultPoint::ConnectionAccept,
            None,
            0,
            FaultAction::IoError,
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());

            // First connection: refused (the server drops it unanswered).
            // The refusal surfaces as a clean EOF when the server dropped
            // the socket before our ping arrived, or as a connection reset
            // when the ping was still unread at drop time — either way, no
            // reply.
            let mut refused = Client::connect(addr);
            writeln!(refused.writer, r#"{{"cmd":"ping"}}"#).unwrap();
            refused.writer.flush().unwrap();
            let mut answer = String::new();
            match refused.reader.read_line(&mut answer) {
                Ok(n) => assert_eq!(n, 0, "refused connection must not reply: {answer}"),
                Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
            }

            // Second connection: served.
            let mut ok = Client::connect(addr);
            assert_eq!(ok.ask(r#"{"cmd":"ping"}"#), "{\"ok\":\"pong\"}");
            assert_eq!(ok.ask(r#"{"cmd":"shutdown"}"#), "{\"ok\":\"shutdown\"}");
            assert_eq!(server.join().unwrap(), 0);
        });
    }
}
