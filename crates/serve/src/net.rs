//! The TCP line protocol: the same JSONL job/report exchange as the CLI,
//! served over `std::net::TcpListener` for true long-running use.
//!
//! Protocol (newline-delimited, UTF-8, one JSON object per line):
//!
//! * a **job spec** line ([`crate::Job::from_spec_line`] schema) runs the
//!   job and answers with its report line — cached results answer without
//!   recompute, and the cache persists across connections;
//! * `{"cmd":"ping"}` answers `{"ok":"pong"}` (liveness probe);
//! * `{"cmd":"stats"}` answers the engine counters (optimizer runs, cache
//!   hits, cached results, LRU evictions);
//! * `{"cmd":"shutdown"}` answers `{"ok":"shutdown"}` and stops the
//!   server: no new connections are accepted, and connections already open
//!   are drained before the listener returns;
//! * a malformed line answers `{"status":"rejected","error":…}` — the
//!   connection stays up.
//!
//! Connections are served **concurrently**, one thread per connection over
//! the shared [`Engine`] (whose cache and counters are thread-safe), so a
//! client holding its connection open never blocks another.  Within one
//! connection each line is answered before the next is read: ordering is
//! the client's, so a driving script can rely on request/response pairing
//! without message ids.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::Engine;
use crate::job::Job;
use crate::json::{escape_string, parse_flat_object};

/// Serves the line protocol on an already-bound listener until a client
/// sends `{"cmd":"shutdown"}`.  Returns the number of job lines served
/// (across all connections).
///
/// # Errors
///
/// Only listener-level `accept` failures propagate; per-connection I/O
/// errors just close that connection.
pub fn serve_connections(engine: &Engine, listener: &TcpListener) -> std::io::Result<usize> {
    let served = AtomicUsize::new(0);
    let shutdown = AtomicBool::new(false);
    // Read-half handles of the connections currently open, keyed by a
    // connection id and removed as each handler exits (so a long-running
    // daemon holds handles — and file descriptors — only for *live*
    // connections).  Shutdown uses them to unblock handlers parked in
    // `read_line` on idle clients.
    let open: Mutex<HashMap<u64, TcpStream>> = Mutex::new(HashMap::new());
    let mut next_id = 0u64;
    let mut accept_error = None;
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                // The stream that woke us (or any racing client) is
                // dropped unanswered; open connections keep draining until
                // the scope joins their handlers.
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) => {
                    accept_error = Some(e);
                    break;
                }
            };
            let id = next_id;
            next_id += 1;
            // An untracked connection could park a handler past shutdown
            // forever, so a connection we cannot track (fd pressure) is
            // refused rather than served: dropping the stream closes it.
            let handle = match stream.try_clone() {
                Ok(handle) => handle,
                Err(_) => continue,
            };
            open.lock().expect("open-connection lock poisoned").insert(id, handle);
            let served = &served;
            let shutdown = &shutdown;
            let open = &open;
            scope.spawn(move || {
                // A dropped client must not take the server down.
                let requested_shutdown = handle_connection(engine, stream, served).unwrap_or(false);
                open.lock().expect("open-connection lock poisoned").remove(&id);
                if requested_shutdown && !shutdown.swap(true, Ordering::SeqCst) {
                    // `incoming()` is blocked in accept: poke it awake so
                    // the loop observes the flag.  A wildcard bind
                    // (0.0.0.0 / ::) is not a connectable destination, so
                    // aim at the loopback of the same family instead.
                    // Failure is benign — the next real connection
                    // unblocks the loop the same way.
                    if let Ok(mut addr) = listener.local_addr() {
                        if addr.ip().is_unspecified() {
                            addr.set_ip(match addr {
                                std::net::SocketAddr::V4(_) => {
                                    std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
                                }
                                std::net::SocketAddr::V6(_) => {
                                    std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
                                }
                            });
                        }
                        drop(TcpStream::connect(addr));
                    }
                }
            });
        }
        // Drain, don't hang: close the *read* half of every connection
        // still open, so a handler parked on an idle client sees EOF and
        // exits, while a handler mid-job can still write its response on
        // the intact write half.  Racing handler exits are fine — shutting
        // down an already-closed socket errors harmlessly.
        for stream in open.lock().expect("open-connection lock poisoned").values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    });
    match accept_error {
        Some(e) => Err(e),
        None => Ok(served.into_inner()),
    }
}

/// Serves one connection to completion; `Ok(true)` when the client asked
/// for a server shutdown.
fn handle_connection(
    engine: &Engine,
    stream: TcpStream,
    served: &AtomicUsize,
) -> std::io::Result<bool> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (response, requested_shutdown) = answer_line(engine, line, served);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if requested_shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Answers one protocol line; the flag is `true` for a shutdown request.
fn answer_line(engine: &Engine, line: &str, served: &AtomicUsize) -> (String, bool) {
    let reject = |error: String| {
        (format!("{{\"status\":\"rejected\",\"error\":{}}}", escape_string(&error)), false)
    };
    let command = match parse_flat_object(line) {
        Ok(pairs) => pairs
            .iter()
            .find(|(k, _)| k == "cmd")
            .map(|(_, v)| v.as_str().unwrap_or("").to_string()),
        Err(e) => return reject(e),
    };
    match command.as_deref() {
        Some("ping") => ("{\"ok\":\"pong\"}".to_string(), false),
        Some("shutdown") => ("{\"ok\":\"shutdown\"}".to_string(), true),
        Some("stats") => (
            format!(
                concat!(
                    "{{\"ok\":\"stats\",\"optimizer_runs\":{},\"cache_hits\":{},",
                    "\"cached_results\":{},\"evictions\":{}}}"
                ),
                engine.optimizer_runs(),
                engine.cache_hits(),
                engine.cached_results(),
                engine.cache_evictions(),
            ),
            false,
        ),
        Some(other) => reject(format!("unknown command `{other}`")),
        None => match Job::from_spec_line(line, engine.base_config()) {
            Ok(job) => {
                served.fetch_add(1, Ordering::Relaxed);
                (engine.execute(&job).to_jsonl(), false)
            }
            Err(e) => reject(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_flow::PipelineConfig;

    struct Client {
        writer: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: std::net::SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client { writer: stream.try_clone().unwrap(), reader: BufReader::new(stream) }
        }

        fn ask(&mut self, line: &str) -> String {
            writeln!(self.writer, "{line}").unwrap();
            self.writer.flush().unwrap();
            let mut answer = String::new();
            self.reader.read_line(&mut answer).unwrap();
            answer.trim().to_string()
        }
    }

    /// End-to-end over a real socket: jobs, cache persistence across
    /// connections, rejection, ping, shutdown.
    #[test]
    fn line_protocol_over_loopback() {
        let engine = Engine::new(PipelineConfig::fast());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());

            let talk = |lines: &[&str]| -> Vec<String> {
                let mut client = Client::connect(addr);
                lines.iter().map(|line| client.ask(line)).collect()
            };

            let first = talk(&[r#"{"cmd":"ping"}"#, r#"{"suite":"c432"}"#, "not json"]);
            assert_eq!(first[0], "{\"ok\":\"pong\"}");
            assert!(
                first[1].contains("\"status\":\"done\"") && first[1].contains("\"name\":\"c432\"")
            );
            assert!(first[2].contains("\"status\":\"rejected\""));

            // Second connection: same design is served from the cache.
            let second =
                talk(&[r#"{"suite":"c432"}"#, r#"{"cmd":"stats"}"#, r#"{"cmd":"shutdown"}"#]);
            assert_eq!(second[0], first[1], "cached replay must be byte-identical");
            assert!(
                second[1].contains("\"optimizer_runs\":1")
                    && second[1].contains("\"cache_hits\":1")
                    && second[1].contains("\"evictions\":0")
            );
            assert_eq!(second[2], "{\"ok\":\"shutdown\"}");

            assert_eq!(server.join().unwrap(), 2, "two job lines were served");
        });
    }

    /// A shutdown must drain and return even while another client holds
    /// its connection open and idle — the server closes the read halves,
    /// so the parked handler sees EOF instead of blocking forever.
    #[test]
    fn shutdown_returns_despite_an_idle_open_connection() {
        let engine = Engine::new(PipelineConfig::fast());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());
            let mut idle = Client::connect(addr);
            assert_eq!(idle.ask(r#"{"cmd":"ping"}"#), "{\"ok\":\"pong\"}");
            let mut closer = Client::connect(addr);
            assert_eq!(closer.ask(r#"{"cmd":"shutdown"}"#), "{\"ok\":\"shutdown\"}");
            // `idle` is deliberately NOT dropped before the join: the
            // server must come back anyway.
            assert_eq!(server.join().unwrap(), 0, "no job lines were served");
            drop(idle);
            drop(closer);
        });
    }

    /// Two clients hold connections open *simultaneously*: the second
    /// completes a full exchange while the first is mid-session — which a
    /// serial accept loop cannot do — and the first keeps working after.
    #[test]
    fn concurrent_connections_over_loopback() {
        let engine = Engine::new(PipelineConfig::fast());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());

            let mut slow = Client::connect(addr);
            assert_eq!(slow.ask(r#"{"cmd":"ping"}"#), "{\"ok\":\"pong\"}", "slow is live");

            // While `slow` sits mid-session, a second client runs a whole
            // job exchange to completion.
            let mut fast = Client::connect(addr);
            let line = fast.ask(r#"{"suite":"c432","fast":true}"#);
            assert!(line.contains("\"status\":\"done\""), "{line}");

            // The first connection still works — and sees the shared
            // cache state the second client's job created.
            let replay = slow.ask(r#"{"suite":"c432","fast":true}"#);
            assert_eq!(replay, line, "shared cache answers byte-identically across connections");
            assert!(slow.ask(r#"{"cmd":"stats"}"#).contains("\"cache_hits\":1"));

            // Shutdown from one client drains, then stops the listener.
            assert_eq!(slow.ask(r#"{"cmd":"shutdown"}"#), "{\"ok\":\"shutdown\"}");
            drop(slow);
            drop(fast);
            assert_eq!(server.join().unwrap(), 2);
        });
    }
}
