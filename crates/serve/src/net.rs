//! The TCP line protocol: the same JSONL job/report exchange as the CLI,
//! served over `std::net::TcpListener` for true long-running use.
//!
//! Protocol (newline-delimited, UTF-8, one JSON object per line):
//!
//! * a **job spec** line ([`crate::Job::from_spec_line`] schema) runs the
//!   job and answers with its report line — cached results answer without
//!   recompute, and the cache persists across connections;
//! * `{"cmd":"ping"}` answers `{"ok":"pong"}` (liveness probe);
//! * `{"cmd":"stats"}` answers the engine counters;
//! * `{"cmd":"shutdown"}` answers `{"ok":"shutdown"}` and stops the
//!   server after the connection closes;
//! * a malformed line answers `{"status":"rejected","error":…}` — the
//!   connection stays up.
//!
//! Connections are served one at a time and each line is answered before
//! the next is read: ordering is the client's, so a driving script can
//! rely on request/response pairing without message ids.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use crate::engine::Engine;
use crate::job::Job;
use crate::json::{escape_string, parse_flat_object};

/// Serves the line protocol on an already-bound listener until a client
/// sends `{"cmd":"shutdown"}`.  Returns the number of job lines served.
///
/// # Errors
///
/// Only listener-level `accept` failures propagate; per-connection I/O
/// errors just close that connection.
pub fn serve_connections(engine: &Engine, listener: &TcpListener) -> std::io::Result<usize> {
    let mut served = 0;
    for stream in listener.incoming() {
        let stream = stream?;
        match handle_connection(engine, stream, &mut served) {
            Ok(ControlFlow::Shutdown) => break,
            Ok(ControlFlow::NextConnection) => continue,
            // A dropped client must not take the server down.
            Err(_) => continue,
        }
    }
    Ok(served)
}

enum ControlFlow {
    NextConnection,
    Shutdown,
}

fn handle_connection(
    engine: &Engine,
    stream: TcpStream,
    served: &mut usize,
) -> std::io::Result<ControlFlow> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (response, control) = answer_line(engine, line, served);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if let ControlFlow::Shutdown = control {
            return Ok(ControlFlow::Shutdown);
        }
    }
    Ok(ControlFlow::NextConnection)
}

fn answer_line(engine: &Engine, line: &str, served: &mut usize) -> (String, ControlFlow) {
    let reject = |error: String| {
        (
            format!("{{\"status\":\"rejected\",\"error\":{}}}", escape_string(&error)),
            ControlFlow::NextConnection,
        )
    };
    let command = match parse_flat_object(line) {
        Ok(pairs) => pairs
            .iter()
            .find(|(k, _)| k == "cmd")
            .map(|(_, v)| v.as_str().unwrap_or("").to_string()),
        Err(e) => return reject(e),
    };
    match command.as_deref() {
        Some("ping") => ("{\"ok\":\"pong\"}".to_string(), ControlFlow::NextConnection),
        Some("shutdown") => ("{\"ok\":\"shutdown\"}".to_string(), ControlFlow::Shutdown),
        Some("stats") => (
            format!(
                "{{\"ok\":\"stats\",\"optimizer_runs\":{},\"cache_hits\":{},\"cached_results\":{}}}",
                engine.optimizer_runs(),
                engine.cache_hits(),
                engine.cached_results()
            ),
            ControlFlow::NextConnection,
        ),
        Some(other) => reject(format!("unknown command `{other}`")),
        None => match Job::from_spec_line(line, engine.base_config()) {
            Ok(job) => {
                *served += 1;
                (engine.execute(&job).to_jsonl(), ControlFlow::NextConnection)
            }
            Err(e) => reject(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_flow::PipelineConfig;

    /// End-to-end over a real socket: jobs, cache persistence across
    /// connections, rejection, ping, shutdown.
    #[test]
    fn line_protocol_over_loopback() {
        let engine = Engine::new(PipelineConfig::fast());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_connections(&engine, &listener).unwrap());

            let talk = |lines: &[&str]| -> Vec<String> {
                let stream = TcpStream::connect(addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut answers = Vec::new();
                for line in lines {
                    writeln!(writer, "{line}").unwrap();
                    writer.flush().unwrap();
                    let mut answer = String::new();
                    reader.read_line(&mut answer).unwrap();
                    answers.push(answer.trim().to_string());
                }
                answers
            };

            let first = talk(&[r#"{"cmd":"ping"}"#, r#"{"suite":"c432"}"#, "not json"]);
            assert_eq!(first[0], "{\"ok\":\"pong\"}");
            assert!(
                first[1].contains("\"status\":\"done\"") && first[1].contains("\"name\":\"c432\"")
            );
            assert!(first[2].contains("\"status\":\"rejected\""));

            // Second connection: same design is served from the cache.
            let second =
                talk(&[r#"{"suite":"c432"}"#, r#"{"cmd":"stats"}"#, r#"{"cmd":"shutdown"}"#]);
            assert_eq!(second[0], first[1], "cached replay must be byte-identical");
            assert!(
                second[1].contains("\"optimizer_runs\":1")
                    && second[1].contains("\"cache_hits\":1")
            );
            assert_eq!(second[2], "{\"ok\":\"shutdown\"}");

            assert_eq!(server.join().unwrap(), 2, "two job lines were served");
        });
    }
}
