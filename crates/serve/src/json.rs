//! Minimal hand-rolled JSON support for the serve layer.
//!
//! The build container has no registry access for `serde` (see
//! `vendor/README.md`), and the serve protocol only ever needs *flat*
//! objects — one JSON object per line whose values are strings, numbers,
//! booleans or `null`.  [`parse_flat_object`] covers exactly that, and the
//! [`escape_string`] / [`number`] writers mirror the conventions of the
//! `table1` harness so every report artifact in the repo agrees on float
//! and escape formatting.

use std::fmt::Write as _;

/// A scalar value of a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A JSON number (always carried as `f64`).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"key": value, ...}` with scalar values
/// only) into its key/value pairs, in source order.
///
/// # Errors
///
/// A human-readable description of the first syntactic problem: nested
/// containers, trailing garbage, bad escapes, unterminated strings.
pub fn parse_flat_object(text: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_scalar()?;
            pairs.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(unexpected(other, "`,` or `}`")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(pairs)
}

fn unexpected(byte: Option<u8>, wanted: &str) -> String {
    match byte {
        Some(b) => format!("expected {wanted}, found `{}`", b as char),
        None => format!("expected {wanted}, found end of input"),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == byte => Ok(()),
            other => Err(unexpected(other, &format!("`{}`", byte as char))),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse_scalar(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'{' | b'[') => Err(self.reject_container()),
            Some(_) => self.parse_number(),
            None => Err(unexpected(None, "a value")),
        }
    }

    /// Nested containers are rejected either way; this scans the offending
    /// container *iteratively* (a depth counter, not recursion — adversarial
    /// input cannot grow the stack) only to pick the right message: a
    /// shallow container is a protocol violation, a deeply nested one is
    /// flagged as exceeding the depth bound.
    fn reject_container(&mut self) -> String {
        const MAX_DEPTH: usize = 32;
        let mut depth = 0usize;
        let mut in_string = false;
        let mut escaped = false;
        while let Some(b) = self.next() {
            if in_string {
                match b {
                    _ if escaped => escaped = false,
                    b'\\' => escaped = true,
                    b'"' => in_string = false,
                    _ => {}
                }
                continue;
            }
            match b {
                b'"' => in_string = true,
                b'{' | b'[' => {
                    depth += 1;
                    if depth > MAX_DEPTH {
                        return format!("nesting deeper than {MAX_DEPTH} levels");
                    }
                }
                b'}' | b']' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        "nested containers are not part of the protocol".into()
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {} (expected `{word}`)", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let x = text.parse::<f64>().map_err(|_| format!("bad number `{text}`"))?;
        // A literal like `1e999` parses to infinity; JSON has no spelling
        // for non-finite values, and every downstream consumer (seeds,
        // timeouts, QoR fields) would misbehave on one, so reject it here
        // with the literal that caused it.
        if !x.is_finite() {
            return Err(format!("non-finite number `{text}`"));
        }
        Ok(JsonValue::Num(x))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => out.push(self.parse_unicode_escape()?),
                    other => return Err(unexpected(other, "an escape character")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Re-decode the multi-byte UTF-8 sequence starting here.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    self.pos += c.len_utf8() - 1;
                    out.push(c);
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, String> {
        let unit = |p: &mut Self| -> Result<u32, String> {
            if p.pos + 4 > p.bytes.len() {
                return Err("truncated \\u escape".into());
            }
            let hex = std::str::from_utf8(&p.bytes[p.pos..p.pos + 4])
                .map_err(|_| "bad \\u escape".to_string())?;
            p.pos += 4;
            u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))
        };
        let high = unit(self)?;
        if (0xd800..0xdc00).contains(&high) {
            // Surrogate pair: the low half must follow as another \uXXXX.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = unit(self)?;
                if (0xdc00..0xe000).contains(&low) {
                    let c = 0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00);
                    return char::from_u32(c).ok_or_else(|| "bad surrogate pair".into());
                }
            }
            return Err("unpaired surrogate in \\u escape".into());
        }
        char::from_u32(high).ok_or_else(|| "bad \\u escape".into())
    }
}

/// Escapes a string for embedding in a JSON document, quotes included.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float the way every JSON artifact in the repo does: shortest
/// round-trip representation, `null` for non-finite values.
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let pairs =
            parse_flat_object(r#"{"suite":"c432","fast":true,"seed":7,"note":null}"#).unwrap();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[0], ("suite".into(), JsonValue::Str("c432".into())));
        assert_eq!(pairs[1], ("fast".into(), JsonValue::Bool(true)));
        assert_eq!(pairs[2], ("seed".into(), JsonValue::Num(7.0)));
        assert_eq!(pairs[3], ("note".into(), JsonValue::Null));
    }

    #[test]
    fn parses_empty_object_and_whitespace() {
        assert!(parse_flat_object("  { }  ").unwrap().is_empty());
        let pairs = parse_flat_object(" { \"a\" : -1.5e2 } ").unwrap();
        assert_eq!(pairs[0].1.as_num(), Some(-150.0));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a\"b\\c\nd\té\u{1F600}";
        let escaped = escape_string(original);
        let doc = format!("{{{escaped}:{escaped}}}");
        let pairs = parse_flat_object(&doc).unwrap();
        assert_eq!(pairs[0].0, original);
        assert_eq!(pairs[0].1.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        let pairs = parse_flat_object(r#"{"k":"\u00e9\ud83d\ude00"}"#).unwrap();
        assert_eq!(pairs[0].1.as_str(), Some("é\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":[1]}",
            "{\"a\":{\"b\":1}}",
            "{\"a\":1} x",
            "{\"a\":\"\\q\"}",
            "{\"a\":\"unterminated}",
            "{\"a\":\"\\ud800\"}",
            "{\"a\":12..5}",
        ] {
            assert!(parse_flat_object(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn rejects_non_finite_numbers() {
        for bad in ["{\"a\":1e999}", "{\"a\":-1e999}", "{\"a\":1e308e3}"] {
            let err = parse_flat_object(bad).unwrap_err();
            assert!(err.contains("non-finite") || err.contains("bad number"), "{bad} -> {err}");
        }
        assert!(parse_flat_object("{\"a\":1e999}").unwrap_err().contains("non-finite"));
        // The largest finite doubles still parse.
        let pairs = parse_flat_object("{\"a\":1.7976931348623157e308}").unwrap();
        assert_eq!(pairs[0].1.as_num(), Some(f64::MAX));
    }

    #[test]
    fn container_rejection_is_depth_bounded() {
        // Shallow nesting: the protocol-violation message.
        let err = parse_flat_object("{\"a\":[1,2,{\"b\":3}]}").unwrap_err();
        assert_eq!(err, "nested containers are not part of the protocol");
        // Brackets inside strings do not confuse the scanner.
        let err = parse_flat_object("{\"a\":[\"[[[\\\"]]]\"]}").unwrap_err();
        assert_eq!(err, "nested containers are not part of the protocol");
        // Adversarially deep input trips the bound (iteratively — no
        // recursion, so no stack growth either way).
        let deep = format!("{{\"a\":{}1{}}}", "[".repeat(100_000), "]".repeat(100_000));
        assert_eq!(parse_flat_object(&deep).unwrap_err(), "nesting deeper than 32 levels");
    }

    #[test]
    fn number_formatting_matches_harness() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
