//! Jobs: one unit of schedulable work — a circuit source plus the
//! configuration it should be optimized under.

use std::path::{Path, PathBuf};

use rapids_core::OptimizerConfig;
use rapids_flow::placement::PlacerConfig;
use rapids_flow::PipelineConfig;

use crate::json::{parse_flat_object, JsonValue};

/// Where a job's circuit comes from.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// A named benchmark from the 19-entry synthetic suite.
    Suite(String),
    /// A `.blif` file on disk, read by the worker that runs the job.
    BlifFile(PathBuf),
    /// Inline BLIF text (the TCP protocol ships designs this way).
    BlifText(String),
}

/// Lifecycle of a job inside a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, not yet picked up by a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished with a QoR report (possibly served from the cache).
    Done,
    /// Finished with a captured error (parse failure, flow error, panic).
    Failed,
}

/// One schedulable unit of work: a named circuit source plus the full
/// effective [`PipelineConfig`] it runs under.  The config is resolved at
/// submission time (base config + per-job overrides), so executing a job
/// needs no further context and its cache key is well defined.
#[derive(Debug, Clone)]
pub struct Job {
    /// Submission name, used as the `job` field of the report line.
    pub name: String,
    /// The circuit source.
    pub source: JobSource,
    /// Effective configuration (base + per-job overrides).
    pub config: PipelineConfig,
    /// Optional per-job deadline, seconds.  An over-deadline run is cut at
    /// the next optimizer pass boundary and reported
    /// `Failed("timeout after …")`.  Deliberately *not* part of
    /// [`Job::config`]: the deadline never changes what a within-deadline
    /// job computes, so it must not perturb the config fingerprint that
    /// keys the result cache.
    pub timeout_s: Option<f64>,
    /// When set, this is a **verify** job: instead of optimizing
    /// [`Job::source`], the engine checks it for combinational equivalence
    /// against this second source with the SAT prover (`rapids-cec`) and
    /// answers `{"status":"verified","equivalent":…}` — with a
    /// simulator-confirmed counterexample input vector when the answer is
    /// "not equivalent".  Spec keys: `verify_suite`, `verify_blif`,
    /// `verify_blif_text`.
    pub verify_with: Option<JobSource>,
}

impl Job {
    /// A suite-benchmark job under the given configuration.
    pub fn suite(name: impl Into<String>, config: &PipelineConfig) -> Self {
        let name = name.into();
        Job {
            source: JobSource::Suite(name.clone()),
            name,
            config: config.clone(),
            timeout_s: None,
            verify_with: None,
        }
    }

    /// A `.blif`-file job under the given configuration, named by `name`
    /// (conventionally the file's path relative to the scanned root,
    /// extension stripped).
    pub fn blif_file(
        name: impl Into<String>,
        path: impl Into<PathBuf>,
        config: &PipelineConfig,
    ) -> Self {
        Job {
            name: name.into(),
            source: JobSource::BlifFile(path.into()),
            config: config.clone(),
            timeout_s: None,
            verify_with: None,
        }
    }

    /// An inline-BLIF job under the given configuration.
    pub fn blif_text(
        name: impl Into<String>,
        text: impl Into<String>,
        config: &PipelineConfig,
    ) -> Self {
        Job {
            name: name.into(),
            source: JobSource::BlifText(text.into()),
            config: config.clone(),
            timeout_s: None,
            verify_with: None,
        }
    }

    /// An equivalence-check job: verify `source` against `against` under
    /// the given configuration (the config only affects how the sources
    /// are resolved and mapped).
    pub fn verify(
        name: impl Into<String>,
        source: JobSource,
        against: JobSource,
        config: &PipelineConfig,
    ) -> Self {
        Job {
            name: name.into(),
            source,
            config: config.clone(),
            timeout_s: None,
            verify_with: Some(against),
        }
    }

    /// Parses one JSONL job-spec line against a base configuration.
    ///
    /// The schema (see `docs/serving.md`): exactly one source key —
    /// `"suite"`, `"blif"` (a file path) or `"blif_text"` — plus optional
    /// `"name"` (report name override), an optional `"timeout_s"` deadline
    /// (positive seconds) and per-job knob overrides `"fast"`, `"es"`,
    /// `"legalize"`, `"seed"`, `"max_fanin"`, `"threads"`.  At most one
    /// second-source key — `"verify_suite"`, `"verify_blif"` or
    /// `"verify_blif_text"` — turns the job into an equivalence check of
    /// the primary source against the second one.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem (syntax, unknown
    /// key, missing/ambiguous source, non-integer numeric knob).
    pub fn from_spec_line(line: &str, base: &PipelineConfig) -> Result<Job, String> {
        let pairs = parse_flat_object(line)?;
        let mut source: Option<JobSource> = None;
        let mut verify_with: Option<JobSource> = None;
        let mut name: Option<String> = None;
        let mut config = base.clone();
        let mut fast: Option<bool> = None;
        let mut timeout_s: Option<f64> = None;

        let str_of = |v: &JsonValue, key: &str| -> Result<String, String> {
            v.as_str().map(str::to_string).ok_or_else(|| format!("`{key}` must be a string"))
        };
        let bool_of = |v: &JsonValue, key: &str| -> Result<bool, String> {
            v.as_bool().ok_or_else(|| format!("`{key}` must be a boolean"))
        };
        let uint_of = |v: &JsonValue, key: &str| -> Result<u64, String> {
            // Numbers travel as f64, which represents integers faithfully
            // only below 2^53 — beyond that a written value would be
            // silently rounded to a neighbour, so reject it instead (a
            // non-reproducible seed is worse than an error).
            const MAX_EXACT: f64 = (1u64 << 53) as f64;
            match v.as_num() {
                Some(x) if x >= 0.0 && x.fract() == 0.0 && x < MAX_EXACT => Ok(x as u64),
                _ => Err(format!("`{key}` must be a non-negative integer below 2^53")),
            }
        };

        for (key, value) in &pairs {
            match key.as_str() {
                "suite" | "blif" | "blif_text" => {
                    if source.is_some() {
                        return Err("more than one source key in job spec".into());
                    }
                    let payload = str_of(value, key)?;
                    source = Some(match key.as_str() {
                        "suite" => JobSource::Suite(payload),
                        "blif" => JobSource::BlifFile(PathBuf::from(payload)),
                        _ => JobSource::BlifText(payload),
                    });
                }
                "verify_suite" | "verify_blif" | "verify_blif_text" => {
                    if verify_with.is_some() {
                        return Err("more than one verify-source key in job spec".into());
                    }
                    let payload = str_of(value, key)?;
                    verify_with = Some(match key.as_str() {
                        "verify_suite" => JobSource::Suite(payload),
                        "verify_blif" => JobSource::BlifFile(PathBuf::from(payload)),
                        _ => JobSource::BlifText(payload),
                    });
                }
                "name" => name = Some(str_of(value, key)?),
                "fast" => fast = Some(bool_of(value, key)?),
                "timeout_s" => {
                    timeout_s = Some(match value.as_num() {
                        Some(x) if x.is_finite() && x > 0.0 => x,
                        _ => return Err("`timeout_s` must be a positive number".into()),
                    });
                }
                "es" => config.optimizer.include_inverting_swaps = bool_of(value, key)?,
                "legalize" => config.legalize.enabled = bool_of(value, key)?,
                "seed" => config.seed = uint_of(value, key)?,
                "max_fanin" => config.map_max_fanin = uint_of(value, key)?.max(2) as usize,
                "threads" => config.threads = (uint_of(value, key)? as usize).max(1),
                other => return Err(format!("unknown job-spec key `{other}`")),
            }
        }

        // `fast` swaps in the reduced-effort placer/optimizer while keeping
        // every already-applied override that survives the swap (the
        // `legalize` knob lives outside both and is untouched).
        if fast == Some(true) {
            let es = config.optimizer.include_inverting_swaps;
            let threads = config.optimizer.threads;
            config.placer = PlacerConfig::fast();
            config.optimizer = OptimizerConfig {
                include_inverting_swaps: es,
                threads,
                ..OptimizerConfig::fast(config.optimizer.kind)
            };
        }

        let source = source.ok_or("job spec needs a `suite`, `blif` or `blif_text` key")?;
        let name = name.unwrap_or_else(|| default_name(&source));
        Ok(Job { name, source, config, timeout_s, verify_with })
    }
}

/// The report name a source gets when the spec does not override it.
pub(crate) fn default_name(source: &JobSource) -> String {
    match source {
        JobSource::Suite(name) => name.clone(),
        JobSource::BlifFile(path) => stem_name(path),
        JobSource::BlifText(_) => "inline".to_string(),
    }
}

/// A path's file stem, lossily decoded (`designs/foo.blif` → `foo`).
pub(crate) fn stem_name(path: &Path) -> String {
    path.file_stem()
        .map_or_else(|| path.display().to_string(), |s| s.to_string_lossy().into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PipelineConfig {
        PipelineConfig::default()
    }

    #[test]
    fn suite_spec_parses_with_overrides() {
        let job = Job::from_spec_line(
            r#"{"suite":"c432","es":true,"legalize":true,"seed":9,"threads":3}"#,
            &base(),
        )
        .unwrap();
        assert_eq!(job.name, "c432");
        assert!(matches!(job.source, JobSource::Suite(ref s) if s == "c432"));
        assert!(job.config.optimizer.include_inverting_swaps);
        assert!(job.config.legalize.enabled);
        assert_eq!(job.config.seed, 9);
        assert_eq!(job.config.threads, 3);
    }

    #[test]
    fn fast_override_keeps_legalize() {
        let job = Job::from_spec_line(r#"{"suite":"alu2","legalize":true,"fast":true}"#, &base())
            .unwrap();
        assert!(job.config.legalize.enabled);
        assert!(job.config.placer.moves_per_gate < base().placer.moves_per_gate);
    }

    #[test]
    fn fast_override_keeps_es_and_kind() {
        let job =
            Job::from_spec_line(r#"{"suite":"alu2","fast":true,"es":true}"#, &base()).unwrap();
        assert!(job.config.optimizer.include_inverting_swaps);
        assert_eq!(job.config.optimizer.kind, base().optimizer.kind);
        assert!(job.config.placer.moves_per_gate < base().placer.moves_per_gate);
    }

    #[test]
    fn blif_file_spec_defaults_name_to_stem() {
        let job = Job::from_spec_line(r#"{"blif":"designs/foo.blif"}"#, &base()).unwrap();
        assert_eq!(job.name, "foo");
        assert!(matches!(job.source, JobSource::BlifFile(_)));
    }

    #[test]
    fn name_override_wins() {
        let job =
            Job::from_spec_line(r#"{"blif_text":".model x\n.end","name":"x9"}"#, &base()).unwrap();
        assert_eq!(job.name, "x9");
    }

    #[test]
    fn timeout_spec_parses_and_rejects_nonsense() {
        let job = Job::from_spec_line(r#"{"suite":"c432","timeout_s":2.5}"#, &base()).unwrap();
        assert_eq!(job.timeout_s, Some(2.5));
        assert_eq!(Job::from_spec_line(r#"{"suite":"c432"}"#, &base()).unwrap().timeout_s, None);
        for bad in [
            r#"{"suite":"a","timeout_s":0}"#,
            r#"{"suite":"a","timeout_s":-1}"#,
            r#"{"suite":"a","timeout_s":"2"}"#,
        ] {
            assert!(Job::from_spec_line(bad, &base()).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn verify_spec_parses_every_second_source_kind() {
        let job =
            Job::from_spec_line(r#"{"suite":"c432","verify_suite":"c432"}"#, &base()).unwrap();
        assert!(matches!(job.verify_with, Some(JobSource::Suite(ref s)) if s == "c432"));
        let job =
            Job::from_spec_line(r#"{"suite":"c432","verify_blif":"x.blif"}"#, &base()).unwrap();
        assert!(matches!(job.verify_with, Some(JobSource::BlifFile(_))));
        let job = Job::from_spec_line(
            r#"{"blif_text":".model m\n.end","verify_blif_text":".model m\n.end","timeout_s":5}"#,
            &base(),
        )
        .unwrap();
        assert!(matches!(job.verify_with, Some(JobSource::BlifText(_))));
        assert_eq!(job.timeout_s, Some(5.0));
        // No verify key → a plain optimize job.
        let job = Job::from_spec_line(r#"{"suite":"c432"}"#, &base()).unwrap();
        assert!(job.verify_with.is_none());
    }

    #[test]
    fn verify_spec_rejects_ambiguity_and_missing_primary() {
        for bad in [
            // Two verify sources.
            r#"{"suite":"a","verify_suite":"b","verify_blif":"c.blif"}"#,
            // A verify source without a primary source.
            r#"{"verify_suite":"b"}"#,
            // Ill-typed payload.
            r#"{"suite":"a","verify_suite":7}"#,
        ] {
            assert!(Job::from_spec_line(bad, &base()).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "{}",
            r#"{"suite":"a","blif":"b"}"#,
            r#"{"suite":7}"#,
            r#"{"suite":"a","bogus":1}"#,
            r#"{"suite":"a","seed":-1}"#,
            r#"{"suite":"a","seed":1.5}"#,
            // Above 2^53: f64 would silently round it to a neighbour.
            r#"{"suite":"a","seed":9007199254740993}"#,
            r#"{"suite":"a","fast":"yes"}"#,
            "not json",
        ] {
            assert!(Job::from_spec_line(bad, &base()).is_err(), "accepted: {bad}");
        }
    }
}
