//! Deterministic fault injection for the serving stack.
//!
//! Every failure path in the service — unreadable BLIF files, torn store
//! writes, optimizer panics, hangs, dropped connections — is reachable
//! through a named **fault point**.  A [`FaultPlan`] (built in a test, or
//! parsed from the hidden `--fault-plan` CLI knob) decides, purely from the
//! plan itself, which hits of which points fail and how; nothing is random
//! and nothing reads the clock, so an injected failure reproduces exactly,
//! under any worker count, until the plan changes.
//!
//! Plan grammar (comma-separated rules):
//!
//! ```text
//! point[@scope][#hit]=action[:ms]
//! ```
//!
//! * `point` — one of `blif-read`, `store-read`, `store-write`, `job-run`,
//!   `cec`, `report-emit`, `connection-accept`;
//! * `@scope` — only hits carrying this scope string (conventionally the
//!   job name) match; omitted, every hit of the point matches.  Scoped
//!   rules are what keep a plan deterministic under concurrency: unscoped
//!   match counts depend on worker interleaving;
//! * `#hit` — fire on the rule's *n*-th match (0-based); omitted, the rule
//!   fires on **every** match (a permanently failing resource).  A single
//!   hit index is how a *transient* fault is expressed —
//!   `blif-read@mux#0=io` fails the first attempt and lets the retry
//!   succeed, while `blif-read@mux=io` defeats every retry;
//! * `action` — `io` (an injected I/O error), `panic`, or `delay:<ms>`
//!   (sleep, in small slices that poll the job's cancellation token, so a
//!   watchdog can cut an injected hang).
//!
//! Example — one panic, one transient read error, one hang:
//!
//! ```text
//! job-run@c432=panic,blif-read@mux#0=io,job-run@c499=delay:120000
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use rapids_flow::CancelToken;

/// The named instrumentation points of the serving stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Reading a `.blif` job file from disk (retried on transient errors).
    BlifRead,
    /// Consulting the on-disk result store for a job.
    StoreRead,
    /// Appending a fresh result to the on-disk store (retried).
    StoreWrite,
    /// Running the optimizer flow for a job (inside the panic guard).
    JobRun,
    /// Running the SAT equivalence check of a `verify` job.
    Cec,
    /// Writing a response line back to a TCP client.
    ReportEmit,
    /// Accepting a TCP connection.
    ConnectionAccept,
}

impl FaultPoint {
    /// The spelling used by the plan grammar and in injected messages.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultPoint::BlifRead => "blif-read",
            FaultPoint::StoreRead => "store-read",
            FaultPoint::StoreWrite => "store-write",
            FaultPoint::JobRun => "job-run",
            FaultPoint::Cec => "cec",
            FaultPoint::ReportEmit => "report-emit",
            FaultPoint::ConnectionAccept => "connection-accept",
        }
    }

    fn parse(text: &str) -> Result<Self, String> {
        Ok(match text {
            "blif-read" => FaultPoint::BlifRead,
            "store-read" => FaultPoint::StoreRead,
            "store-write" => FaultPoint::StoreWrite,
            "job-run" => FaultPoint::JobRun,
            "cec" => FaultPoint::Cec,
            "report-emit" => FaultPoint::ReportEmit,
            "connection-accept" => FaultPoint::ConnectionAccept,
            other => return Err(format!("unknown fault point `{other}`")),
        })
    }
}

impl std::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What an armed rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return an injected I/O error from the fault point.
    IoError,
    /// Panic (exercises the `catch_unwind` guards).
    Panic,
    /// Sleep this long — an injected hang.  The sleep is sliced so the
    /// job's cancellation token (when one is live at the point) can cut it
    /// short; the point then proceeds normally and the over-deadline
    /// outcome is decided by the watchdog's timeout report.
    DelayMs(u64),
}

/// The error an [`FaultAction::IoError`] rule surfaces.
///
/// The message is a pure function of the rule (point + scope) — never of
/// hit counts or threads — so injected failures render identically under
/// any scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    point: FaultPoint,
    scope: Option<String>,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.scope {
            Some(scope) => write!(f, "injected i/o error at {} for `{scope}`", self.point),
            None => write!(f, "injected i/o error at {}", self.point),
        }
    }
}

impl std::error::Error for FaultError {}

impl From<FaultError> for std::io::Error {
    fn from(e: FaultError) -> Self {
        // `Other` is classified as *transient* by `retry::is_transient_io`,
        // so an injected single-hit read fault exercises the retry path.
        std::io::Error::other(e.to_string())
    }
}

/// One armed rule: which hits of which point fail, and how.
#[derive(Debug)]
struct FaultRule {
    point: FaultPoint,
    scope: Option<String>,
    /// Fire on the rule's n-th match (0-based); `None` fires on *every*
    /// match — the way to model a permanently failing resource.
    hit: Option<usize>,
    action: FaultAction,
    /// How many hits have matched this rule so far.  Each rule counts its
    /// own matches, so a scoped transient rule (`#0`) fails exactly the
    /// first attempt of *its* job no matter what other jobs are doing.
    matches: AtomicUsize,
}

/// A set of armed fault rules; the empty plan (the default) is a no-op.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parses the `--fault-plan` grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// A description of the first malformed rule.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for raw in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (lhs, action) = raw
                .split_once('=')
                .ok_or_else(|| format!("fault rule `{raw}` needs `point=action`"))?;
            let (lhs, hit) = match lhs.split_once('#') {
                Some((lhs, hit)) => (
                    lhs,
                    Some(
                        hit.parse::<usize>()
                            .map_err(|_| format!("bad hit index `{hit}` in fault rule `{raw}`"))?,
                    ),
                ),
                None => (lhs, None),
            };
            let (point, scope) = match lhs.split_once('@') {
                Some((point, scope)) => (point, Some(scope.to_string())),
                None => (lhs, None),
            };
            let action = match action.split_once(':') {
                Some(("delay", ms)) => FaultAction::DelayMs(
                    ms.parse::<u64>()
                        .map_err(|_| format!("bad delay `{ms}` in fault rule `{raw}`"))?,
                ),
                None if action == "io" => FaultAction::IoError,
                None if action == "panic" => FaultAction::Panic,
                _ => return Err(format!("unknown fault action `{action}` in rule `{raw}`")),
            };
            rules.push(FaultRule {
                point: FaultPoint::parse(point.trim())?,
                scope,
                hit,
                action,
                matches: AtomicUsize::new(0),
            });
        }
        Ok(FaultPlan { rules })
    }

    /// Convenience for tests: a single-rule plan.
    pub fn single(
        point: FaultPoint,
        scope: Option<&str>,
        hit: usize,
        action: FaultAction,
    ) -> FaultPlan {
        FaultPlan {
            rules: vec![FaultRule {
                point,
                scope: scope.map(str::to_string),
                hit: Some(hit),
                action,
                matches: AtomicUsize::new(0),
            }],
        }
    }

    /// Whether the plan has no rules (the hot-path short circuit).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Reports one hit of `point` (carrying `scope`, conventionally the job
    /// name) and applies whatever rule decides to fire on it.
    ///
    /// `cancel`, when given, lets a [`FaultAction::DelayMs`] hang be cut
    /// short by the job's watchdog.
    ///
    /// # Errors
    ///
    /// The injected [`FaultError`] of a firing [`FaultAction::IoError`]
    /// rule.
    ///
    /// # Panics
    ///
    /// When a firing rule's action is [`FaultAction::Panic`] — by design;
    /// the surrounding `catch_unwind` guards are exactly what is under test.
    pub fn fire(
        &self,
        point: FaultPoint,
        scope: Option<&str>,
        cancel: Option<&CancelToken>,
    ) -> Result<(), FaultError> {
        for rule in &self.rules {
            if rule.point != point {
                continue;
            }
            if let Some(want) = &rule.scope {
                if scope != Some(want.as_str()) {
                    continue;
                }
            }
            let count = rule.matches.fetch_add(1, Ordering::Relaxed);
            if rule.hit.is_some_and(|hit| hit != count) {
                continue;
            }
            rapids_obs::metrics::counter("serve.fault_fires").inc();
            let scope_suffix = match &rule.scope {
                Some(s) => format!(" for `{s}`"),
                None => String::new(),
            };
            match rule.action {
                FaultAction::IoError => {
                    return Err(FaultError { point, scope: rule.scope.clone() })
                }
                FaultAction::Panic => panic!("injected panic at {point}{scope_suffix}"),
                FaultAction::DelayMs(ms) => {
                    let mut remaining = ms;
                    while remaining > 0 {
                        if cancel.is_some_and(CancelToken::is_cancelled) {
                            break;
                        }
                        let slice = remaining.min(10);
                        std::thread::sleep(Duration::from_millis(slice));
                        remaining -= slice;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for _ in 0..3 {
            assert!(plan.fire(FaultPoint::JobRun, Some("x"), None).is_ok());
        }
    }

    #[test]
    fn parses_the_full_grammar() {
        let plan = FaultPlan::parse(
            "job-run@c432=panic, blif-read@mux#1=io, store-write=io, job-run@c499=delay:50",
        )
        .unwrap();
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].action, FaultAction::Panic);
        assert_eq!(plan.rules[1].hit, Some(1));
        assert_eq!(plan.rules[0].hit, None, "no `#` means every match");
        assert_eq!(plan.rules[1].scope.as_deref(), Some("mux"));
        assert_eq!(plan.rules[2].scope, None);
        assert_eq!(plan.rules[3].action, FaultAction::DelayMs(50));
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in ["job-run", "nope=io", "job-run=explode", "job-run#x=io", "job-run=delay:abc"] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn scoped_rule_fires_only_on_its_scope_and_hit() {
        let plan = FaultPlan::single(FaultPoint::BlifRead, Some("mux"), 1, FaultAction::IoError);
        // Other scopes never match, and do not consume the rule's counter.
        assert!(plan.fire(FaultPoint::BlifRead, Some("alu"), None).is_ok());
        // First match of `mux` (hit 0) passes; the second (hit 1) fires.
        assert!(plan.fire(FaultPoint::BlifRead, Some("mux"), None).is_ok());
        let err = plan.fire(FaultPoint::BlifRead, Some("mux"), None).unwrap_err();
        assert_eq!(err.to_string(), "injected i/o error at blif-read for `mux`");
        // The rule fired once; later matches pass again.
        assert!(plan.fire(FaultPoint::BlifRead, Some("mux"), None).is_ok());
    }

    #[test]
    fn unindexed_rule_fires_on_every_match() {
        let plan = FaultPlan::parse("store-write=io").unwrap();
        for _ in 0..3 {
            assert!(plan.fire(FaultPoint::StoreWrite, Some("any"), None).is_err());
        }
    }

    #[test]
    fn injected_io_error_converts_to_transient_io() {
        let plan = FaultPlan::single(FaultPoint::StoreWrite, None, 0, FaultAction::IoError);
        let err: std::io::Error = plan.fire(FaultPoint::StoreWrite, None, None).unwrap_err().into();
        assert!(crate::retry::is_transient_io(&err));
        assert_eq!(err.to_string(), "injected i/o error at store-write");
    }

    #[test]
    fn delay_is_cut_short_by_cancellation() {
        let plan = FaultPlan::single(FaultPoint::JobRun, None, 0, FaultAction::DelayMs(60_000));
        let token = CancelToken::new();
        token.cancel();
        let start = std::time::Instant::now();
        assert!(plan.fire(FaultPoint::JobRun, None, Some(&token)).is_ok());
        assert!(start.elapsed() < Duration::from_secs(10), "cancelled hang must not run out");
    }

    #[test]
    #[should_panic(expected = "injected panic at job-run for `c432`")]
    fn panic_action_panics_with_a_deterministic_message() {
        let plan = FaultPlan::single(FaultPoint::JobRun, Some("c432"), 0, FaultAction::Panic);
        let _ = plan.fire(FaultPoint::JobRun, Some("c432"), None);
    }
}
