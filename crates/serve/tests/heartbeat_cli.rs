//! End-to-end coverage of `--heartbeat-s` through the real binary: the
//! progress line must appear on stderr while a batch is running, and the
//! process must exit cleanly afterwards (the heartbeat thread joins on
//! drop — a leaked thread would hang the exit).

use std::process::Command;

#[test]
fn heartbeat_line_appears_and_the_process_exits_cleanly() {
    // An injected 1.5 s cooperative delay guarantees the batch outlives
    // the 1 s heartbeat period; without it a --fast job can finish before
    // the first beat.
    let output = Command::new(env!("CARGO_BIN_EXE_rapids-serve"))
        .args(["--fast", "c432", "--heartbeat-s", "1", "--fault-plan", "job-run@c432=delay:1500"])
        .output()
        .expect("rapids-serve runs");
    let stderr = String::from_utf8_lossy(&output.stderr);

    assert!(output.status.success(), "clean exit, got {:?}\n{stderr}", output.status);
    assert!(stderr.contains("heartbeat: 0/1 jobs done"), "no heartbeat line in:\n{stderr}");
    // The batch summary prints after the heartbeat thread was dropped:
    // its presence plus the clean exit is the join-on-shutdown proof.
    assert!(stderr.contains("1 done"), "batch summary missing in:\n{stderr}");
}
