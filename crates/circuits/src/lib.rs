//! # rapids-circuits
//!
//! Benchmark-circuit substrate: generators for the circuit families the
//! paper evaluates on (MCNC-91 / ISCAS-85 / ISCAS-89 with sequential
//! elements stripped), a structural technology mapper onto the 0.35 µm
//! library cell set, and a named **suite** whose entries are sized to match
//! the 19 rows of Table 1.
//!
//! The original benchmark netlists are not redistributable artifacts of this
//! reproduction, so each family is replaced by a synthetic generator that
//! preserves the structural properties the rewiring engine is sensitive to:
//! gate-type mix (XOR-rich arithmetic vs. AND/OR control), fan-in
//! distribution, reconvergent fan-out, and overall size (see `DESIGN.md`).
//!
//! ```
//! use rapids_circuits::generators::adder::ripple_carry_adder;
//! use rapids_circuits::mapper::map_to_library;
//!
//! let adder = ripple_carry_adder(8);
//! let mapped = map_to_library(&adder, 4).unwrap();
//! assert!(mapped.logic_gate_count() >= adder.logic_gate_count());
//! ```

pub mod generators;
pub mod mapper;
pub mod suite;

pub use mapper::map_to_library;
pub use suite::{benchmark, suite_names, BenchmarkSpec};
