//! Structural technology mapping onto the paper's cell set.
//!
//! The evaluation library contains `INV`, `BUF`, `NAND`, `NOR`, `XOR` and
//! `XNOR` cells with 2–4 inputs.  [`map_to_library`] rewrites an arbitrary
//! AND/OR/XOR network into that cell set:
//!
//! * wide gates are decomposed into balanced trees bounded by the library's
//!   maximum fan-in,
//! * `AND`/`OR` gates become `NAND`/`NOR` followed by an inverter (absorbed
//!   into the root when the original gate was already the inverted form),
//! * `XOR`/`XNOR` trees map directly.
//!
//! The mapping is purely structural (no Boolean matching); it preserves
//! functionality exactly, which the tests verify by simulation.

use std::collections::HashMap;

use rapids_netlist::{BaseFunction, GateId, GateType, NetlistError, Network};

/// Maps `network` onto the INV/BUF/NAND/NOR/XOR/XNOR cell set with at most
/// `max_fanin` inputs per cell (clamped to 2..=4).
///
/// # Errors
///
/// Propagates structural errors from network construction; these only occur
/// if the input network is itself inconsistent.
pub fn map_to_library(network: &Network, max_fanin: usize) -> Result<Network, NetlistError> {
    let max_fanin = max_fanin.clamp(2, 4);
    let mut mapped = Network::new(format!("{}_mapped", network.name()));
    let mut translate: HashMap<GateId, GateId> = HashMap::new();
    let mut counter = 0usize;
    let order =
        rapids_netlist::topo::topological_order(network).expect("cannot map a cyclic network");

    for g in order {
        let gate = network.gate(g);
        let new_id = match gate.gtype {
            GateType::Input => mapped.add_input(gate.name.clone()),
            GateType::Const0 => mapped.add_constant(false, gate.name.clone()),
            GateType::Const1 => mapped.add_constant(true, gate.name.clone()),
            GateType::Buf | GateType::Inv => {
                let fanin = translate[&gate.fanins[0]];
                mapped.add_gate(gate.gtype, &[fanin], gate.name.clone())?
            }
            t => {
                let fanins: Vec<GateId> = gate.fanins.iter().map(|f| translate[f]).collect();
                map_wide_gate(&mut mapped, t, &fanins, &gate.name, max_fanin, &mut counter)?
            }
        };
        translate.insert(g, new_id);
    }
    for port in network.outputs() {
        mapped.add_output(translate[&port.driver], port.name.clone());
    }
    Ok(mapped)
}

/// Builds the library implementation of one (possibly wide) AND/OR/XOR-family
/// gate and returns the id of the signal carrying the original gate's
/// function.
fn map_wide_gate(
    mapped: &mut Network,
    gtype: GateType,
    fanins: &[GateId],
    name: &str,
    max_fanin: usize,
    counter: &mut usize,
) -> Result<GateId, NetlistError> {
    let base = gtype.base_function();
    let inverted = gtype.output_inverted();
    // Reduce the fan-in list to at most `max_fanin` by building non-inverted
    // subtrees, then realize the root with the requested polarity.
    let reduced = reduce_tree(mapped, base, fanins, max_fanin, counter)?;
    realize_root(mapped, base, &reduced, inverted, name, counter)
}

/// Reduces `signals` to at most `max_fanin` signals by grouping them into
/// non-inverted subtrees of the base function.
fn reduce_tree(
    mapped: &mut Network,
    base: BaseFunction,
    signals: &[GateId],
    max_fanin: usize,
    counter: &mut usize,
) -> Result<Vec<GateId>, NetlistError> {
    let mut level: Vec<GateId> = signals.to_vec();
    while level.len() > max_fanin {
        let mut next = Vec::with_capacity(level.len().div_ceil(max_fanin));
        for chunk in level.chunks(max_fanin) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                let id = realize_root(mapped, base, chunk, false, &fresh_name(counter), counter)?;
                next.push(id);
            }
        }
        level = next;
    }
    Ok(level)
}

/// Emits library gates computing the base function (optionally inverted) of
/// at most four signals, and returns the output id.
fn realize_root(
    mapped: &mut Network,
    base: BaseFunction,
    signals: &[GateId],
    inverted: bool,
    name: &str,
    counter: &mut usize,
) -> Result<GateId, NetlistError> {
    match base {
        BaseFunction::And | BaseFunction::Or => {
            let inner = if base == BaseFunction::And { GateType::Nand } else { GateType::Nor };
            if inverted {
                mapped.add_gate(inner, signals, name.to_string())
            } else {
                let n = mapped.add_gate(inner, signals, fresh_name(counter))?;
                mapped.add_gate(GateType::Inv, &[n], name.to_string())
            }
        }
        BaseFunction::Xor => {
            let gtype = if inverted { GateType::Xnor } else { GateType::Xor };
            mapped.add_gate(gtype, signals, name.to_string())
        }
        BaseFunction::Identity | BaseFunction::Source => {
            unreachable!("identity and source gates are handled by the caller")
        }
    }
}

fn fresh_name(counter: &mut usize) -> String {
    let name = format!("_map{counter}");
    *counter += 1;
    name
}

/// Returns `true` if every logic gate of the network uses only the library
/// cell set (INV/BUF/NAND/NOR/XOR/XNOR) with fan-in at most `max_fanin`.
pub fn is_mapped(network: &Network, max_fanin: usize) -> bool {
    network.iter_logic().all(|g| {
        let gate = network.gate(g);
        let type_ok = matches!(
            gate.gtype,
            GateType::Inv
                | GateType::Buf
                | GateType::Nand
                | GateType::Nor
                | GateType::Xor
                | GateType::Xnor
        );
        type_ok && gate.fanin_count() <= max_fanin
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::adder::ripple_carry_adder;
    use crate::generators::alu::alu;
    use crate::generators::parity::parity_tree;
    use rapids_netlist::NetworkBuilder;
    use rapids_sim::check_equivalence_exhaustive;

    #[test]
    fn mapped_adder_is_equivalent_and_library_only() {
        let n = ripple_carry_adder(4);
        let m = map_to_library(&n, 4).unwrap();
        assert!(is_mapped(&m, 4));
        assert!(!is_mapped(&n, 4));
        assert!(check_equivalence_exhaustive(&n, &m).is_equivalent());
        assert!(m.check_consistency().is_ok());
    }

    #[test]
    fn mapped_alu_is_equivalent() {
        let n = alu(3);
        let m = map_to_library(&n, 4).unwrap();
        assert!(is_mapped(&m, 4));
        assert!(check_equivalence_exhaustive(&n, &m).is_equivalent());
    }

    #[test]
    fn wide_gates_are_decomposed() {
        let mut b = NetworkBuilder::new("wide");
        let names: Vec<String> = (0..9).map(|i| format!("x{i}")).collect();
        for n in &names {
            b.input(n.clone());
        }
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        b.gate("f", GateType::And, &refs);
        b.gate("g", GateType::Nor, &refs);
        b.gate("h", GateType::Xnor, &refs);
        b.output("f");
        b.output("g");
        b.output("h");
        let n = b.finish().unwrap();
        for max_fanin in 2..=4 {
            let m = map_to_library(&n, max_fanin).unwrap();
            assert!(is_mapped(&m, max_fanin), "max_fanin={max_fanin}");
            assert!(check_equivalence_exhaustive(&n, &m).is_equivalent(), "max_fanin={max_fanin}");
        }
    }

    #[test]
    fn xor_trees_stay_xor() {
        let n = parity_tree(12);
        let m = map_to_library(&n, 3).unwrap();
        assert!(is_mapped(&m, 3));
        let stats = rapids_netlist::NetworkStats::compute(&m);
        assert!(stats.count_of(GateType::Nand) == 0 && stats.count_of(GateType::Nor) == 0);
        assert!(check_equivalence_exhaustive(&n, &m).is_equivalent());
    }

    #[test]
    fn buffers_and_inverters_pass_through() {
        let mut b = NetworkBuilder::new("bufinv");
        b.input("a");
        b.gate("x", GateType::Inv, &["a"]);
        b.gate("y", GateType::Buf, &["x"]);
        b.output("y");
        let n = b.finish().unwrap();
        let m = map_to_library(&n, 4).unwrap();
        assert_eq!(m.logic_gate_count(), 2);
        assert!(check_equivalence_exhaustive(&n, &m).is_equivalent());
    }

    #[test]
    fn mapping_preserves_interface_names() {
        let n = ripple_carry_adder(3);
        let m = map_to_library(&n, 4).unwrap();
        assert_eq!(n.inputs().len(), m.inputs().len());
        assert_eq!(n.outputs().len(), m.outputs().len());
        for (a, b) in n.outputs().iter().zip(m.outputs()) {
            assert_eq!(a.name, b.name);
        }
    }
}
