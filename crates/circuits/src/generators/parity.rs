//! XOR-dominated circuits — the c499/c1355 family (single-error-correcting
//! circuits built almost entirely from XOR trees) and plain parity trees.
//!
//! XOR supergates are the second symmetry class exploited by the paper
//! (xor-reachable pins, Lemma 8), so these generators exist specifically to
//! exercise that path.

use rapids_netlist::{GateType, Network, NetworkBuilder};

/// Builds a balanced XOR parity tree over `width` inputs with a single
/// output.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn parity_tree(width: usize) -> Network {
    assert!(width >= 2, "parity tree needs at least 2 inputs");
    let mut b = NetworkBuilder::new(format!("parity{width}"));
    let mut level: Vec<String> = (0..width)
        .map(|i| {
            let name = format!("x{i}");
            b.input(&name);
            name
        })
        .collect();
    let mut counter = 0usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let name = format!("n{counter}");
                counter += 1;
                b.gate(&name, GateType::Xor, &[&pair[0], &pair[1]]);
                next.push(name);
            } else {
                next.push(pair[0].clone());
            }
        }
        level = next;
    }
    b.gate("parity", GateType::Buf, &[&level[0]]);
    b.output("parity");
    b.finish().expect("generated parity tree is structurally valid")
}

/// Builds a single-error-correcting style circuit in the spirit of c499:
/// `data_words` data groups of `group_size` bits each are XOR-folded into a
/// syndrome, the syndrome is decoded with AND gates, and the decoded lines
/// correct (XOR) the data outputs.
///
/// # Panics
///
/// Panics if `data_words < 2` or `group_size < 2`.
pub fn error_corrector(data_words: usize, group_size: usize) -> Network {
    assert!(data_words >= 2 && group_size >= 2, "error corrector needs at least a 2x2 data block");
    let mut b = NetworkBuilder::new(format!("ecc{data_words}x{group_size}"));
    for w in 0..data_words {
        for i in 0..group_size {
            b.input(format!("d{w}_{i}"));
        }
    }
    for i in 0..group_size {
        b.input(format!("chk{i}"));
    }

    // Column syndromes: XOR down each bit position across words, then XOR
    // with the check bit.
    for i in 0..group_size {
        let mut acc = format!("d0_{i}");
        for w in 1..data_words {
            let name = format!("col{i}_{w}");
            b.gate(&name, GateType::Xor, &[&acc, &format!("d{w}_{i}")]);
            acc = name;
        }
        b.gate(format!("syn{i}"), GateType::Xor, &[&acc, &format!("chk{i}")]);
    }
    // Row parities: XOR across each word.
    for w in 0..data_words {
        let mut acc = format!("d{w}_0");
        for i in 1..group_size {
            let name = format!("row{w}_{i}");
            b.gate(&name, GateType::Xor, &[&acc, &format!("d{w}_{i}")]);
            acc = name;
        }
        b.gate(format!("rowp{w}"), GateType::Buf, &[&acc]);
    }
    // Correction: data bit (w, i) flips when both its row parity and its
    // column syndrome indicate an error.
    for w in 0..data_words {
        for i in 0..group_size {
            b.gate(
                format!("hit{w}_{i}"),
                GateType::And,
                &[&format!("rowp{w}"), &format!("syn{i}")],
            );
            b.gate(
                format!("out{w}_{i}"),
                GateType::Xor,
                &[&format!("d{w}_{i}"), &format!("hit{w}_{i}")],
            );
            b.output(format!("out{w}_{i}"));
        }
    }
    b.finish().expect("generated error corrector is structurally valid")
}

#[cfg(test)]
// Index-based loops here mirror the bit-position math of the circuits under
// test; iterator rewrites would obscure which bit is being checked.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use rapids_netlist::NetworkStats;
    use rapids_sim::Simulator;

    #[test]
    fn parity_matches_popcount() {
        let width = 9;
        let n = parity_tree(width);
        let sim = Simulator::new(&n);
        for value in [0u64, 1, 0b101, 0b111111111, 0b100100100, 0b011011011] {
            let inputs: Vec<bool> = (0..width).map(|i| (value >> i) & 1 == 1).collect();
            let out = sim.simulate_bools(&n, &inputs);
            assert_eq!(out[0], value.count_ones() % 2 == 1, "value {value:b}");
        }
    }

    #[test]
    fn parity_tree_depth_is_logarithmic() {
        let n = parity_tree(16);
        let stats = NetworkStats::compute(&n);
        assert_eq!(stats.gate_count, 16); // 15 XORs + 1 BUF
        assert!(stats.depth <= 6);
    }

    #[test]
    fn error_corrector_is_xor_dominated() {
        let n = error_corrector(4, 8);
        let stats = NetworkStats::compute(&n);
        let xor_count = stats.count_of(GateType::Xor);
        assert!(xor_count * 2 > stats.gate_count, "XOR should dominate: {stats}");
        assert_eq!(n.outputs().len(), 32);
    }

    #[test]
    fn error_corrector_passes_clean_data_through() {
        let (words, group) = (2, 3);
        let n = error_corrector(words, group);
        let sim = Simulator::new(&n);
        // Choose data; compute check bits = column parity so syndrome is 0.
        let data = [[true, false, true], [false, true, true]];
        let mut inputs = Vec::new();
        for w in 0..words {
            for i in 0..group {
                inputs.push(data[w][i]);
            }
        }
        for i in 0..group {
            inputs.push(data[0][i] ^ data[1][i]);
        }
        let outs = sim.simulate_bools(&n, &inputs);
        let mut k = 0;
        for w in 0..words {
            for i in 0..group {
                assert_eq!(outs[k], data[w][i], "clean data must pass through unchanged");
                k += 1;
            }
        }
    }

    #[test]
    #[should_panic]
    fn tiny_parity_rejected() {
        let _ = parity_tree(1);
    }
}
