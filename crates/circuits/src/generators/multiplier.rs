//! Array multiplier generator — the c6288 family.  ISCAS-85 c6288 is a
//! 16×16 array multiplier and the paper's largest combinational benchmark;
//! this generator produces the same full-adder-array structure at any width.

use rapids_netlist::{GateType, Network, NetworkBuilder};

struct AdderCells {
    count: usize,
}

impl AdderCells {
    fn new() -> Self {
        AdderCells { count: 0 }
    }

    /// Emits a full adder over three signals; returns `(sum, carry)` names.
    fn full_adder(
        &mut self,
        b: &mut NetworkBuilder,
        x: &str,
        y: &str,
        z: &str,
    ) -> (String, String) {
        let id = self.count;
        self.count += 1;
        let p = format!("fa{id}_p");
        let s = format!("fa{id}_s");
        let g = format!("fa{id}_g");
        let t = format!("fa{id}_t");
        let c = format!("fa{id}_c");
        b.gate(&p, GateType::Xor, &[x, y]);
        b.gate(&s, GateType::Xor, &[&p, z]);
        b.gate(&g, GateType::And, &[x, y]);
        b.gate(&t, GateType::And, &[&p, z]);
        b.gate(&c, GateType::Or, &[&g, &t]);
        (s, c)
    }
}

/// Builds an `n×n` unsigned array multiplier (`2n` inputs, `2n` outputs).
///
/// The structure is the classic row-accumulation array: the partial-product
/// row `a · b_i` (one AND gate per bit) is added to the running accumulator
/// with a ripple chain of full adders, one row per multiplier bit — the same
/// cell-count scaling and long reconvergent carry chains as ISCAS-85 c6288.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn array_multiplier(bits: usize) -> Network {
    assert!(bits >= 2, "multiplier width must be at least 2");
    let mut b = NetworkBuilder::new(format!("mult{bits}x{bits}"));
    for i in 0..bits {
        b.input(format!("a{i}"));
    }
    for i in 0..bits {
        b.input(format!("b{i}"));
    }
    for i in 0..bits {
        for j in 0..bits {
            b.gate(format!("pp{i}_{j}"), GateType::And, &[&format!("a{j}"), &format!("b{i}")]);
        }
    }
    b.constant("zero", false);

    // Row 0: the accumulator starts as the first partial-product row.
    // Invariant at the top of iteration `i`: `remaining[k]` carries product
    // weight `i + k` and `remaining.len() == bits`.
    b.gate("prod0", GateType::Buf, &["pp0_0"]);
    b.output("prod0");
    let mut remaining: Vec<String> = (1..bits).map(|j| format!("pp0_{j}")).collect();
    remaining.push("zero".to_string());

    let mut cells = AdderCells::new();
    for i in 1..bits {
        let mut carry = "zero".to_string();
        let mut sums: Vec<String> = Vec::with_capacity(bits);
        for (j, prev) in remaining.iter().enumerate() {
            let pp = format!("pp{i}_{j}");
            let (s, c) = cells.full_adder(&mut b, prev, &pp, &carry);
            sums.push(s);
            carry = c;
        }
        let prod = format!("prod{i}");
        b.gate(&prod, GateType::Buf, &[&sums[0]]);
        b.output(&prod);
        remaining = sums[1..].to_vec();
        remaining.push(carry);
    }

    // The final accumulator holds product bits `bits .. 2*bits - 1`.
    for (k, sig) in remaining.iter().enumerate() {
        let prod = format!("prod{}", bits + k);
        b.gate(&prod, GateType::Buf, &[sig]);
        b.output(&prod);
    }
    b.finish().expect("generated multiplier is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_sim::Simulator;

    fn multiply_via_sim(n: &Network, bits: usize, a: u64, b: u64) -> u64 {
        let sim = Simulator::new(n);
        let mut inputs = Vec::new();
        for i in 0..bits {
            inputs.push((a >> i) & 1 == 1);
        }
        for i in 0..bits {
            inputs.push((b >> i) & 1 == 1);
        }
        let outs = sim.simulate_bools(n, &inputs);
        let mut v = 0u64;
        for (i, &bit) in outs.iter().enumerate() {
            if bit {
                v |= 1 << i;
            }
        }
        v
    }

    #[test]
    fn small_multiplier_is_exhaustively_correct() {
        let bits = 4;
        let n = array_multiplier(bits);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(multiply_via_sim(&n, bits, a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn five_bit_spot_checks() {
        let bits = 5;
        let n = array_multiplier(bits);
        for (a, b) in [(31u64, 31u64), (17, 19), (25, 13), (0, 29), (1, 31), (16, 16)] {
            assert_eq!(multiply_via_sim(&n, bits, a, b), a * b);
        }
    }

    #[test]
    fn output_count_is_twice_width() {
        let n = array_multiplier(6);
        assert_eq!(n.outputs().len(), 12);
        assert_eq!(n.inputs().len(), 12);
    }

    #[test]
    fn gate_count_grows_quadratically() {
        let g4 = array_multiplier(4).logic_gate_count();
        let g8 = array_multiplier(8).logic_gate_count();
        assert!(g8 > 3 * g4, "expected roughly quadratic growth: {g4} vs {g8}");
    }

    #[test]
    #[should_panic]
    fn one_bit_rejected() {
        let _ = array_multiplier(1);
    }
}
