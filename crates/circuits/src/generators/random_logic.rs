//! Random multi-level control logic — stands in for the MCNC control
//! benchmarks (c432, c1908, c2670, x3, i8, k2, …) and for the ISCAS-89
//! sequential circuits with their flip-flops removed (s5378, s13207, …,
//! which the paper treats "as combinational ones with all sequential
//! elements removed").
//!
//! The generator builds a layered DAG with a controllable gate-type mix,
//! fan-in distribution and reconvergence, so the supergate extractor sees
//! fanout-free regions of realistic shapes and sizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rapids_netlist::{GateType, Network, NetworkBuilder};

/// Parameters of the random-logic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomLogicConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Target number of logic gates.
    pub gates: usize,
    /// Fraction of XOR/XNOR gates (arithmetic-ish flavour), `0.0 ..= 1.0`.
    pub xor_fraction: f64,
    /// Fraction of single-input gates (inverters/buffers), `0.0 ..= 1.0`.
    pub inverter_fraction: f64,
    /// Maximum fan-in of generated gates (clamped to 2..=4 for library
    /// compatibility before mapping).
    pub max_fanin: usize,
    /// Locality of connections: probability that a fan-in is drawn from the
    /// most recent window of gates rather than uniformly from all earlier
    /// signals.  Higher values produce deeper, more chain-like circuits.
    pub locality: f64,
}

impl Default for RandomLogicConfig {
    fn default() -> Self {
        RandomLogicConfig {
            inputs: 32,
            outputs: 16,
            gates: 500,
            xor_fraction: 0.08,
            inverter_fraction: 0.12,
            max_fanin: 4,
            locality: 0.7,
        }
    }
}

impl RandomLogicConfig {
    /// Convenience constructor targeting a gate count with default mix.
    pub fn with_gates(gates: usize) -> Self {
        let inputs = (gates / 12).clamp(8, 256);
        let outputs = (gates / 20).clamp(4, 256);
        RandomLogicConfig { inputs, outputs, gates, ..Self::default() }
    }
}

/// Builds a random layered control-logic network.
///
/// The construction is deterministic for a given `(config, seed)` pair.
///
/// # Panics
///
/// Panics if `config.inputs == 0`, `config.outputs == 0` or
/// `config.gates == 0`.
pub fn random_logic(config: &RandomLogicConfig, seed: u64) -> Network {
    assert!(config.inputs > 0 && config.outputs > 0 && config.gates > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(format!("rand{}g", config.gates));
    let mut signals: Vec<String> = Vec::with_capacity(config.inputs + config.gates);
    for i in 0..config.inputs {
        let name = format!("pi{i}");
        b.input(&name);
        signals.push(name);
    }
    let max_fanin = config.max_fanin.clamp(2, 4);
    let window = (config.gates / 10).clamp(8, 200);

    for g in 0..config.gates {
        let name = format!("n{g}");
        let r: f64 = rng.gen();
        let gtype = if r < config.inverter_fraction {
            if rng.gen_bool(0.8) {
                GateType::Inv
            } else {
                GateType::Buf
            }
        } else if r < config.inverter_fraction + config.xor_fraction {
            if rng.gen_bool(0.5) {
                GateType::Xor
            } else {
                GateType::Xnor
            }
        } else {
            match rng.gen_range(0..4) {
                0 => GateType::And,
                1 => GateType::Or,
                2 => GateType::Nand,
                _ => GateType::Nor,
            }
        };
        let fanin_count = if gtype.is_identity() { 1 } else { rng.gen_range(2..=max_fanin) };
        let mut fanins: Vec<String> = Vec::with_capacity(fanin_count);
        while fanins.len() < fanin_count {
            let pick = if rng.gen_bool(config.locality) && signals.len() > window {
                let lo = signals.len() - window;
                rng.gen_range(lo..signals.len())
            } else {
                rng.gen_range(0..signals.len())
            };
            let candidate = signals[pick].clone();
            if !fanins.contains(&candidate) {
                fanins.push(candidate);
            } else if signals.len() <= fanin_count {
                // Tiny signal pool: allow a repeat rather than looping forever.
                fanins.push(candidate);
            }
        }
        let fanin_refs: Vec<&str> = fanins.iter().map(|s| s.as_str()).collect();
        b.gate(&name, gtype, &fanin_refs);
        signals.push(name);
    }

    // Outputs: prefer late signals so most of the network is observable.
    let total = signals.len();
    for o in 0..config.outputs {
        let idx = total - 1 - (o * 7) % (config.gates.min(total - config.inputs).max(1));
        b.output(signals[idx].clone());
    }
    b.finish().expect("generated random logic is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::NetworkStats;

    #[test]
    fn respects_gate_count_and_interface() {
        let cfg = RandomLogicConfig { inputs: 16, outputs: 8, gates: 300, ..Default::default() };
        let n = random_logic(&cfg, 1);
        assert_eq!(n.inputs().len(), 16);
        assert_eq!(n.outputs().len(), 8);
        assert_eq!(n.logic_gate_count(), 300);
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomLogicConfig::with_gates(200);
        let a = random_logic(&cfg, 9);
        let b = random_logic(&cfg, 9);
        let c = random_logic(&cfg, 10);
        assert_eq!(rapids_netlist::blif::write_string(&a), rapids_netlist::blif::write_string(&b));
        assert_ne!(rapids_netlist::blif::write_string(&a), rapids_netlist::blif::write_string(&c));
    }

    #[test]
    fn xor_fraction_controls_mix() {
        let base = RandomLogicConfig::with_gates(600);
        let arithmetic = RandomLogicConfig { xor_fraction: 0.5, ..base.clone() };
        let control = RandomLogicConfig { xor_fraction: 0.0, ..base };
        let na = random_logic(&arithmetic, 3);
        let nc = random_logic(&control, 3);
        let sa = NetworkStats::compute(&na);
        let sc = NetworkStats::compute(&nc);
        let xa = sa.count_of(GateType::Xor) + sa.count_of(GateType::Xnor);
        let xc = sc.count_of(GateType::Xor) + sc.count_of(GateType::Xnor);
        assert!(xa > 10 * (xc + 1));
    }

    #[test]
    fn max_fanin_respected() {
        let cfg = RandomLogicConfig { max_fanin: 3, ..RandomLogicConfig::with_gates(250) };
        let n = random_logic(&cfg, 4);
        for g in n.iter_logic() {
            assert!(n.fanins(g).len() <= 3);
        }
    }

    #[test]
    fn with_gates_scales_interface() {
        let small = RandomLogicConfig::with_gates(100);
        let large = RandomLogicConfig::with_gates(5000);
        assert!(large.inputs > small.inputs);
        assert!(large.outputs > small.outputs);
    }

    #[test]
    #[should_panic]
    fn zero_gates_rejected() {
        let cfg = RandomLogicConfig { gates: 0, ..Default::default() };
        let _ = random_logic(&cfg, 0);
    }
}
