//! ALU generator — the `alu2` / `alu4` family of MCNC benchmarks.
//!
//! The generated ALU computes four functions of two operand words (ADD, AND,
//! OR, XOR) selected by a 2-bit opcode through a per-bit 4:1 multiplexer.
//! This mixes an arithmetic carry chain with wide AND/OR selection logic,
//! which is exactly the structure that produces medium-size implication
//! supergates.

use rapids_netlist::{GateType, Network, NetworkBuilder};

/// Builds a `width`-bit, 4-function ALU.
///
/// Inputs: `op0`, `op1` (function select), `a0..`, `b0..`, `cin`.
/// Outputs: `y0..y{width-1}`, `cout`.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn alu(width: usize) -> Network {
    assert!(width > 0, "ALU width must be positive");
    let mut b = NetworkBuilder::new(format!("alu{width}"));
    b.input("op0");
    b.input("op1");
    b.input("cin");
    for i in 0..width {
        b.input(format!("a{i}"));
        b.input(format!("b{i}"));
    }
    // Select lines decoded once.
    b.gate("nop0", GateType::Inv, &["op0"]);
    b.gate("nop1", GateType::Inv, &["op1"]);
    b.gate("sel_add", GateType::And, &["nop1", "nop0"]);
    b.gate("sel_and", GateType::And, &["nop1", "op0"]);
    b.gate("sel_or", GateType::And, &["op1", "nop0"]);
    b.gate("sel_xor", GateType::And, &["op1", "op0"]);

    let mut carry = "cin".to_string();
    for i in 0..width {
        let a = format!("a{i}");
        let bb = format!("b{i}");
        // Arithmetic slice.
        b.gate(format!("p{i}"), GateType::Xor, &[&a, &bb]);
        b.gate(format!("g{i}"), GateType::And, &[&a, &bb]);
        b.gate(format!("add{i}"), GateType::Xor, &[&format!("p{i}"), &carry]);
        b.gate(format!("t{i}"), GateType::And, &[&format!("p{i}"), &carry]);
        b.gate(format!("c{i}"), GateType::Or, &[&format!("g{i}"), &format!("t{i}")]);
        carry = format!("c{i}");
        // Logic slice.
        b.gate(format!("andv{i}"), GateType::And, &[&a, &bb]);
        b.gate(format!("orv{i}"), GateType::Or, &[&a, &bb]);
        b.gate(format!("xorv{i}"), GateType::Xor, &[&a, &bb]);
        // 4:1 selection.
        b.gate(format!("m0_{i}"), GateType::And, &[&format!("add{i}"), "sel_add"]);
        b.gate(format!("m1_{i}"), GateType::And, &[&format!("andv{i}"), "sel_and"]);
        b.gate(format!("m2_{i}"), GateType::And, &[&format!("orv{i}"), "sel_or"]);
        b.gate(format!("m3_{i}"), GateType::And, &[&format!("xorv{i}"), "sel_xor"]);
        b.gate(format!("m01_{i}"), GateType::Or, &[&format!("m0_{i}"), &format!("m1_{i}")]);
        b.gate(format!("m23_{i}"), GateType::Or, &[&format!("m2_{i}"), &format!("m3_{i}")]);
        b.gate(format!("y{i}"), GateType::Or, &[&format!("m01_{i}"), &format!("m23_{i}")]);
        b.output(format!("y{i}"));
    }
    b.gate("cout", GateType::And, &[&carry, "sel_add"]);
    b.output("cout");
    b.finish().expect("generated ALU is structurally valid")
}

#[cfg(test)]
// Index-based loops here mirror the bit-position math of the circuits under
// test; iterator rewrites would obscure which bit is being checked.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use rapids_sim::Simulator;

    fn run(n: &Network, width: usize, op: u8, a: u64, b: u64, cin: bool) -> (u64, bool) {
        let sim = Simulator::new(n);
        let mut inputs = vec![op & 1 == 1, op & 2 == 2, cin];
        for i in 0..width {
            inputs.push((a >> i) & 1 == 1);
            inputs.push((b >> i) & 1 == 1);
        }
        let outs = sim.simulate_bools(n, &inputs);
        let mut y = 0u64;
        for i in 0..width {
            if outs[i] {
                y |= 1 << i;
            }
        }
        (y, outs[width])
    }

    #[test]
    fn add_operation() {
        let width = 4;
        let n = alu(width);
        let mask = (1u64 << width) - 1;
        for (a, b) in [(3u64, 5u64), (15, 1), (7, 7), (0, 0)] {
            let (y, cout) = run(&n, width, 0b00, a, b, false);
            assert_eq!(y, (a + b) & mask, "{a}+{b}");
            assert_eq!(cout, a + b > mask);
        }
    }

    #[test]
    fn logic_operations() {
        let width = 4;
        let n = alu(width);
        let (a, b) = (0b1010u64, 0b0110u64);
        assert_eq!(run(&n, width, 0b01, a, b, false).0, a & b);
        assert_eq!(run(&n, width, 0b10, a, b, false).0, a | b);
        assert_eq!(run(&n, width, 0b11, a, b, false).0, a ^ b);
    }

    #[test]
    fn carry_in_respected() {
        let width = 4;
        let n = alu(width);
        assert_eq!(run(&n, width, 0b00, 2, 2, true).0, 5);
    }

    #[test]
    fn size_scales_with_width() {
        assert!(alu(8).logic_gate_count() > alu(2).logic_gate_count());
    }
}
