//! Ripple-carry and carry-select adders: the canonical "long critical path"
//! arithmetic circuits used to exercise timing optimization.

use rapids_netlist::{GateType, Network, NetworkBuilder};

/// Builds an `n`-bit ripple-carry adder (`2n + 1` inputs, `n + 1` outputs).
///
/// Each bit is a textbook full adder: two XORs for the sum, two ANDs and an
/// OR for the carry.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_carry_adder(bits: usize) -> Network {
    assert!(bits > 0, "adder width must be positive");
    let mut b = NetworkBuilder::new(format!("rca{bits}"));
    b.input("cin");
    for i in 0..bits {
        b.input(format!("a{i}"));
        b.input(format!("b{i}"));
    }
    let mut carry = "cin".to_string();
    for i in 0..bits {
        let a = format!("a{i}");
        let bb = format!("b{i}");
        let p = format!("p{i}");
        let g = format!("g{i}");
        let t = format!("t{i}");
        let s = format!("sum{i}");
        let c = format!("c{i}");
        b.gate(&p, GateType::Xor, &[&a, &bb]);
        b.gate(&g, GateType::And, &[&a, &bb]);
        b.gate(&s, GateType::Xor, &[&p, &carry]);
        b.gate(&t, GateType::And, &[&p, &carry]);
        b.gate(&c, GateType::Or, &[&g, &t]);
        b.output(&s);
        carry = c;
    }
    b.output(&carry);
    b.finish().expect("generated adder is structurally valid")
}

/// Builds an `n`-bit carry-select adder: the high half is computed twice
/// (with carry-in 0 and 1) and selected, producing the wide multiplexer
/// structures that give the rewiring engine OR-supergates to work with.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn carry_select_adder(bits: usize) -> Network {
    assert!(bits >= 2, "carry-select adder needs at least 2 bits");
    let low_bits = bits / 2;
    let high_bits = bits - low_bits;
    let mut b = NetworkBuilder::new(format!("csa{bits}"));
    b.input("cin");
    for i in 0..bits {
        b.input(format!("a{i}"));
        b.input(format!("b{i}"));
    }

    // Low half: plain ripple.
    let mut carry = "cin".to_string();
    for i in 0..low_bits {
        let a = format!("a{i}");
        let bb = format!("b{i}");
        b.gate(format!("lp{i}"), GateType::Xor, &[&a, &bb]);
        b.gate(format!("lg{i}"), GateType::And, &[&a, &bb]);
        b.gate(format!("sum{i}"), GateType::Xor, &[&format!("lp{i}"), &carry]);
        b.gate(format!("lt{i}"), GateType::And, &[&format!("lp{i}"), &carry]);
        b.gate(format!("lc{i}"), GateType::Or, &[&format!("lg{i}"), &format!("lt{i}")]);
        b.output(format!("sum{i}"));
        carry = format!("lc{i}");
    }
    let select = carry;

    // High half twice, with constant carry-in 0 and 1.
    b.constant("zero", false);
    b.constant("one", true);
    for (tag, cin_name) in [("z", "zero"), ("o", "one")] {
        let mut c = cin_name.to_string();
        for i in 0..high_bits {
            let bit = low_bits + i;
            let a = format!("a{bit}");
            let bb = format!("b{bit}");
            b.gate(format!("{tag}p{i}"), GateType::Xor, &[&a, &bb]);
            b.gate(format!("{tag}g{i}"), GateType::And, &[&a, &bb]);
            b.gate(format!("{tag}s{i}"), GateType::Xor, &[&format!("{tag}p{i}"), &c]);
            b.gate(format!("{tag}t{i}"), GateType::And, &[&format!("{tag}p{i}"), &c]);
            b.gate(
                format!("{tag}c{i}"),
                GateType::Or,
                &[&format!("{tag}g{i}"), &format!("{tag}t{i}")],
            );
            c = format!("{tag}c{i}");
        }
        b.gate(format!("{tag}cout"), GateType::Buf, &[&c]);
    }

    // Select between the two speculative halves.
    b.gate("nsel", GateType::Inv, &["nselsrc"]);
    b.gate("nselsrc", GateType::Buf, &[&select]);
    for i in 0..high_bits {
        let bit = low_bits + i;
        b.gate(format!("m0_{i}"), GateType::And, &[&format!("zs{i}"), "nsel"]);
        b.gate(format!("m1_{i}"), GateType::And, &[&format!("os{i}"), "nselsrc"]);
        b.gate(format!("sum{bit}"), GateType::Or, &[&format!("m0_{i}"), &format!("m1_{i}")]);
        b.output(format!("sum{bit}"));
    }
    b.gate("cm0", GateType::And, &["zcout", "nsel"]);
    b.gate("cm1", GateType::And, &["ocout", "nselsrc"]);
    b.gate("cout", GateType::Or, &["cm0", "cm1"]);
    b.output("cout");
    b.finish().expect("generated carry-select adder is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_sim::Simulator;

    fn add_via_sim(n: &Network, bits: usize, a: u64, b: u64, cin: bool) -> u64 {
        let sim = Simulator::new(n);
        // Inputs were declared as cin, a0, b0, a1, b1, ...
        let mut inputs = vec![cin];
        for i in 0..bits {
            inputs.push((a >> i) & 1 == 1);
            inputs.push((b >> i) & 1 == 1);
        }
        let outs = sim.simulate_bools(n, &inputs);
        // Outputs: sum0..sum{bits-1}, cout.
        let mut value = 0u64;
        for (i, &bit) in outs.iter().enumerate() {
            if bit {
                value |= 1 << i;
            }
        }
        value
    }

    #[test]
    fn ripple_carry_adds_correctly() {
        let bits = 6;
        let n = ripple_carry_adder(bits);
        for (a, b, c) in
            [(0u64, 0u64, false), (13, 21, false), (63, 1, false), (33, 30, true), (63, 63, true)]
        {
            let got = add_via_sim(&n, bits, a, b, c);
            let expect = a + b + c as u64;
            assert_eq!(got, expect, "{a}+{b}+{c}");
        }
    }

    #[test]
    fn carry_select_matches_ripple() {
        let bits = 8;
        let rca = ripple_carry_adder(bits);
        let csa = carry_select_adder(bits);
        for (a, b, c) in [
            (0u64, 0u64, false),
            (200, 55, true),
            (129, 126, false),
            (255, 255, true),
            (170, 85, false),
        ] {
            assert_eq!(
                add_via_sim(&rca, bits, a, b, c),
                add_via_sim(&csa, bits, a, b, c),
                "{a}+{b}+{c}"
            );
        }
    }

    #[test]
    fn sizes_scale_with_width() {
        assert!(
            ripple_carry_adder(16).logic_gate_count() > ripple_carry_adder(4).logic_gate_count()
        );
        assert_eq!(ripple_carry_adder(4).logic_gate_count(), 20);
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        let _ = ripple_carry_adder(0);
    }
}
