//! Circuit generators, one module per structural family.

pub mod adder;
pub mod alu;
pub mod multiplier;
pub mod parity;
pub mod random_logic;
