//! The benchmark suite: one synthetic circuit per row of the paper's
//! Table 1, mapped onto the evaluation library.
//!
//! Each entry records which generator family stands in for the original
//! benchmark and the parameters chosen so that the *mapped* gate count lands
//! in the neighbourhood of the count reported in the paper (column 2 of
//! Table 1).  Exact equality is neither possible nor necessary — the
//! experiment compares relative improvements — but the suite keeps the same
//! ordering of sizes and the same structural families (arithmetic vs.
//! XOR-rich vs. control logic).

use rapids_netlist::Network;

use crate::generators::alu::alu;
use crate::generators::multiplier::array_multiplier;
use crate::generators::parity::error_corrector;
use crate::generators::random_logic::{random_logic, RandomLogicConfig};
use crate::mapper::map_to_library;

/// The structural family a benchmark row is generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// ALU-style arithmetic + selection logic (alu2, alu4).
    Alu,
    /// Array multiplier (c6288).
    Multiplier,
    /// XOR-dominated error-correcting logic (c499, c1355).
    ErrorCorrecting,
    /// Random multi-level control logic (everything else).
    Control,
}

/// Descriptor of one suite entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name as it appears in Table 1.
    pub name: &'static str,
    /// Gate count reported in the paper (column 2).
    pub paper_gate_count: usize,
    /// Structural family used by the generator.
    pub family: Family,
    /// Fraction of XOR gates for control-family circuits.
    xor_fraction: f64,
    /// Primary size parameter passed to the family generator.
    size_parameter: usize,
    /// Seed for the deterministic generator.
    seed: u64,
}

/// All 19 benchmark rows of Table 1, in the paper's order.
const SUITE: &[BenchmarkSpec] = &[
    BenchmarkSpec {
        name: "alu2",
        paper_gate_count: 516,
        family: Family::Alu,
        xor_fraction: 0.0,
        size_parameter: 16,
        seed: 102,
    },
    BenchmarkSpec {
        name: "alu4",
        paper_gate_count: 1004,
        family: Family::Alu,
        xor_fraction: 0.0,
        size_parameter: 32,
        seed: 104,
    },
    BenchmarkSpec {
        name: "c432",
        paper_gate_count: 291,
        family: Family::Control,
        xor_fraction: 0.10,
        size_parameter: 200,
        seed: 432,
    },
    BenchmarkSpec {
        name: "c499",
        paper_gate_count: 625,
        family: Family::ErrorCorrecting,
        xor_fraction: 0.0,
        size_parameter: 8,
        seed: 499,
    },
    BenchmarkSpec {
        name: "c1355",
        paper_gate_count: 625,
        family: Family::ErrorCorrecting,
        xor_fraction: 0.0,
        size_parameter: 8,
        seed: 1355,
    },
    BenchmarkSpec {
        name: "c1908",
        paper_gate_count: 730,
        family: Family::Control,
        xor_fraction: 0.15,
        size_parameter: 520,
        seed: 1908,
    },
    BenchmarkSpec {
        name: "c2670",
        paper_gate_count: 911,
        family: Family::Control,
        xor_fraction: 0.05,
        size_parameter: 650,
        seed: 2670,
    },
    BenchmarkSpec {
        name: "c3540",
        paper_gate_count: 1809,
        family: Family::Control,
        xor_fraction: 0.08,
        size_parameter: 1290,
        seed: 3540,
    },
    BenchmarkSpec {
        name: "c5315",
        paper_gate_count: 2379,
        family: Family::Control,
        xor_fraction: 0.05,
        size_parameter: 1700,
        seed: 5315,
    },
    BenchmarkSpec {
        name: "c6288",
        paper_gate_count: 5000,
        family: Family::Multiplier,
        xor_fraction: 0.0,
        size_parameter: 20,
        seed: 6288,
    },
    BenchmarkSpec {
        name: "c7552",
        paper_gate_count: 2565,
        family: Family::Control,
        xor_fraction: 0.06,
        size_parameter: 1830,
        seed: 7552,
    },
    BenchmarkSpec {
        name: "i10",
        paper_gate_count: 3397,
        family: Family::Control,
        xor_fraction: 0.04,
        size_parameter: 2430,
        seed: 10,
    },
    BenchmarkSpec {
        name: "x3",
        paper_gate_count: 1010,
        family: Family::Control,
        xor_fraction: 0.02,
        size_parameter: 720,
        seed: 3,
    },
    BenchmarkSpec {
        name: "i8",
        paper_gate_count: 1229,
        family: Family::Control,
        xor_fraction: 0.03,
        size_parameter: 880,
        seed: 8,
    },
    BenchmarkSpec {
        name: "k2",
        paper_gate_count: 1484,
        family: Family::Control,
        xor_fraction: 0.02,
        size_parameter: 1060,
        seed: 2,
    },
    BenchmarkSpec {
        name: "s5378",
        paper_gate_count: 1811,
        family: Family::Control,
        xor_fraction: 0.03,
        size_parameter: 1290,
        seed: 5378,
    },
    BenchmarkSpec {
        name: "s13207",
        paper_gate_count: 2900,
        family: Family::Control,
        xor_fraction: 0.03,
        size_parameter: 2070,
        seed: 13207,
    },
    BenchmarkSpec {
        name: "s15850",
        paper_gate_count: 4640,
        family: Family::Control,
        xor_fraction: 0.03,
        size_parameter: 3320,
        seed: 15850,
    },
    BenchmarkSpec {
        name: "s38417",
        paper_gate_count: 10090,
        family: Family::Control,
        xor_fraction: 0.03,
        size_parameter: 7210,
        seed: 38417,
    },
];

/// Names of all suite entries, in Table 1 order.
pub fn suite_names() -> Vec<&'static str> {
    SUITE.iter().map(|s| s.name).collect()
}

/// Returns the descriptor of a suite entry.
pub fn spec(name: &str) -> Option<&'static BenchmarkSpec> {
    SUITE.iter().find(|s| s.name == name)
}

/// Generates and technology-maps the named benchmark.
///
/// Returns `None` if the name is not part of the suite.
///
/// Drive strengths are pre-assigned the way a timing-driven mapper would
/// leave them (mid-size cells, stronger ones on high-fanout nets), so the
/// gate-sizing optimizers have room to both upsize critical cells and
/// recover area on non-critical ones — matching the negative area deltas the
/// paper reports for `GS` and `gsg+GS`.
pub fn benchmark(name: &str) -> Option<Network> {
    let s = spec(name)?;
    let raw = generate_raw(s);
    let mut mapped = map_to_library(&raw, 4).expect("generated circuits always map");
    mapped.set_name(s.name);
    let gates: Vec<_> = mapped.iter_logic().collect();
    for g in gates {
        let fanout = mapped.fanout_degree(g);
        mapped.gate_mut(g).size_class = if fanout > 5 { 3 } else { 2 };
    }
    Some(mapped)
}

/// Generates the un-mapped network for a descriptor (exposed for tests and
/// ablations that want to study mapping effects).
pub fn generate_raw(s: &BenchmarkSpec) -> Network {
    match s.family {
        Family::Alu => alu(s.size_parameter),
        Family::Multiplier => array_multiplier(s.size_parameter),
        Family::ErrorCorrecting => error_corrector(s.size_parameter, s.size_parameter * 4),
        Family::Control => {
            let config = RandomLogicConfig {
                xor_fraction: s.xor_fraction,
                ..RandomLogicConfig::with_gates(s.size_parameter)
            };
            random_logic(&config, s.seed)
        }
    }
}

/// A small fast subset of the suite used by integration tests and smoke
/// benchmarks (the full Table 1 run uses every entry).
pub fn smoke_suite_names() -> Vec<&'static str> {
    vec!["alu2", "c432", "c499", "c1908"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::is_mapped;

    #[test]
    fn suite_has_all_nineteen_rows() {
        assert_eq!(suite_names().len(), 19);
        assert_eq!(suite_names()[0], "alu2");
        assert_eq!(*suite_names().last().unwrap(), "s38417");
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(benchmark("does_not_exist").is_none());
        assert!(spec("nope").is_none());
    }

    #[test]
    fn smoke_entries_generate_and_are_mapped() {
        for name in smoke_suite_names() {
            let n = benchmark(name).unwrap();
            assert!(is_mapped(&n, 4), "{name} not fully mapped");
            assert!(n.check_consistency().is_ok(), "{name} inconsistent");
            assert!(n.logic_gate_count() > 50, "{name} suspiciously small");
            assert_eq!(n.name(), name);
        }
    }

    #[test]
    fn mapped_sizes_track_paper_ordering() {
        // Generate three entries of very different paper sizes and check the
        // generated sizes preserve the ordering.
        let small = benchmark("c432").unwrap().logic_gate_count();
        let medium = benchmark("c1908").unwrap().logic_gate_count();
        let large = benchmark("c3540").unwrap().logic_gate_count();
        assert!(small < medium && medium < large, "{small} {medium} {large}");
    }

    #[test]
    fn control_entries_land_near_paper_counts() {
        for name in ["c432", "c1908", "x3"] {
            let s = spec(name).unwrap();
            let n = benchmark(name).unwrap();
            let got = n.logic_gate_count() as f64;
            let want = s.paper_gate_count as f64;
            assert!(
                got > 0.5 * want && got < 2.0 * want,
                "{name}: generated {got} vs paper {want}"
            );
        }
    }
}
