//! The ROBDD manager: unique table, computed-table-cached `ite`, and the
//! Boolean operators built on top of it.
//!
//! Nodes are stored in a flat arena with complement edges *not* used (plain
//! ROBDD with two terminals folded into one constant node plus a polarity on
//! references would be smaller, but the plain form is simpler to audit for an
//! oracle).  Variables are identified by their order index (`u32`).

use std::collections::HashMap;

/// Reference to a BDD node inside a [`Manager`].
///
/// Equality of `Ref`s obtained from the *same* manager is functional
/// equivalence (canonicity of ROBDDs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

impl Ref {
    /// Index into the manager's node arena.
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    /// Variable order index; terminals use `u32::MAX`.
    var: u32,
    low: Ref,
    high: Ref,
}

const TERMINAL_VAR: u32 = u32::MAX;

/// An ROBDD manager with a fixed (identity) variable order.
#[derive(Debug, Clone)]
pub struct Manager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Creates a manager holding only the two terminal nodes.
    pub fn new() -> Self {
        let mut m =
            Manager { nodes: Vec::new(), unique: HashMap::new(), ite_cache: HashMap::new() };
        // Node 0 = constant false, node 1 = constant true.
        m.nodes.push(Node { var: TERMINAL_VAR, low: Ref(0), high: Ref(0) });
        m.nodes.push(Node { var: TERMINAL_VAR, low: Ref(1), high: Ref(1) });
        m
    }

    /// The constant-false function.
    pub fn zero(&self) -> Ref {
        Ref(0)
    }

    /// The constant-true function.
    pub fn one(&self) -> Ref {
        Ref(1)
    }

    /// Returns `true` if `f` is one of the two constants.
    pub fn is_constant(&self, f: Ref) -> bool {
        f == self.zero() || f == self.one()
    }

    /// Number of nodes currently allocated (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The projection function of variable `var`.
    pub fn var(&mut self, var: u32) -> Ref {
        let one = self.one();
        let zero = self.zero();
        self.mk(var, zero, one)
    }

    /// The complemented projection function of variable `var`.
    pub fn nvar(&mut self, var: u32) -> Ref {
        let one = self.one();
        let zero = self.zero();
        self.mk(var, one, zero)
    }

    fn var_of(&self, f: Ref) -> u32 {
        self.nodes[f.index()].var
    }

    fn mk(&mut self, var: u32, low: Ref, high: Ref) -> Ref {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    /// If-then-else: `ite(f, g, h) = f·g + f'·h`.  All other operators are
    /// expressed through this single cached recursion.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal cases.
        if f == self.one() {
            return g;
        }
        if f == self.zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g == self.one() && h == self.zero() {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = [f, g, h]
            .iter()
            .map(|&x| self.var_of(x))
            .filter(|&v| v != TERMINAL_VAR)
            .min()
            .expect("at least one operand is non-terminal");
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(top, low, high);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn cofactors_at(&self, f: Ref, var: u32) -> (Ref, Ref) {
        let n = self.nodes[f.index()];
        if n.var == var {
            (n.low, n.high)
        } else {
            (f, f)
        }
    }

    /// Boolean negation.
    pub fn not(&mut self, f: Ref) -> Ref {
        let zero = self.zero();
        let one = self.one();
        self.ite(f, zero, one)
    }

    /// Boolean conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        let zero = self.zero();
        self.ite(f, g, zero)
    }

    /// Boolean disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        let one = self.one();
        self.ite(f, one, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Negated conjunction.
    pub fn nand(&mut self, f: Ref, g: Ref) -> Ref {
        let a = self.and(f, g);
        self.not(a)
    }

    /// Negated disjunction.
    pub fn nor(&mut self, f: Ref, g: Ref) -> Ref {
        let a = self.or(f, g);
        self.not(a)
    }

    /// Negated exclusive or.
    pub fn xnor(&mut self, f: Ref, g: Ref) -> Ref {
        let a = self.xor(f, g);
        self.not(a)
    }

    /// Conjunction over an iterator of operands (`true` for an empty list).
    pub fn and_many<I: IntoIterator<Item = Ref>>(&mut self, operands: I) -> Ref {
        let mut acc = self.one();
        for f in operands {
            acc = self.and(acc, f);
        }
        acc
    }

    /// Disjunction over an iterator of operands (`false` for an empty list).
    pub fn or_many<I: IntoIterator<Item = Ref>>(&mut self, operands: I) -> Ref {
        let mut acc = self.zero();
        for f in operands {
            acc = self.or(acc, f);
        }
        acc
    }

    /// Exclusive-or over an iterator of operands (`false` for an empty list).
    pub fn xor_many<I: IntoIterator<Item = Ref>>(&mut self, operands: I) -> Ref {
        let mut acc = self.zero();
        for f in operands {
            acc = self.xor(acc, f);
        }
        acc
    }

    /// Positive or negative cofactor of `f` with respect to variable `var`.
    pub fn cofactor(&mut self, f: Ref, var: u32, value: bool) -> Ref {
        if self.is_constant(f) {
            return f;
        }
        let n = self.nodes[f.index()];
        if n.var > var {
            // Variable does not appear (order is increasing along paths).
            return f;
        }
        if n.var == var {
            return if value { n.high } else { n.low };
        }
        let low = self.cofactor(n.low, var, value);
        let high = self.cofactor(n.high, var, value);
        self.mk(n.var, low, high)
    }

    /// Evaluates `f` under a complete assignment: `assignment[i]` is the
    /// value of variable `i`.  Variables beyond the slice default to `false`.
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur == self.one() {
                return true;
            }
            if cur == self.zero() {
                return false;
            }
            let n = self.nodes[cur.index()];
            let v = assignment.get(n.var as usize).copied().unwrap_or(false);
            cur = if v { n.high } else { n.low };
        }
    }

    /// Number of satisfying assignments of `f` over `num_vars` variables.
    pub fn sat_count(&self, f: Ref, num_vars: u32) -> f64 {
        fn rec(
            m: &Manager,
            f: Ref,
            from_var: u32,
            num_vars: u32,
            memo: &mut HashMap<(Ref, u32), f64>,
        ) -> f64 {
            if f == m.zero() {
                return 0.0;
            }
            if f == m.one() {
                return 2f64.powi((num_vars - from_var) as i32);
            }
            if let Some(&c) = memo.get(&(f, from_var)) {
                return c;
            }
            let n = m.nodes[f.index()];
            let skipped = 2f64.powi((n.var - from_var) as i32);
            let low = rec(m, n.low, n.var + 1, num_vars, memo);
            let high = rec(m, n.high, n.var + 1, num_vars, memo);
            let c = skipped * (low + high);
            memo.insert((f, from_var), c);
            c
        }
        rec(self, f, 0, num_vars, &mut HashMap::new())
    }

    /// Number of BDD nodes reachable from `f` (a size measure for reports).
    pub fn size(&self, f: Ref) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) || self.is_constant(x) {
                continue;
            }
            let n = self.nodes[x.index()];
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let mut m = Manager::new();
        assert_ne!(m.zero(), m.one());
        let a = m.var(0);
        let na = m.nvar(0);
        let not_a = m.not(a);
        assert_eq!(na, not_a);
        assert!(m.is_constant(m.zero()));
        assert!(!m.is_constant(a));
    }

    #[test]
    fn canonical_equality() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        // a & b == !( !a | !b )
        let f = m.and(a, b);
        let na = m.not(a);
        let nb = m.not(b);
        let o = m.or(na, nb);
        let g = m.not(o);
        assert_eq!(f, g);
        // xor expressed two ways
        let x1 = m.xor(a, b);
        let anb = m.and(a, nb);
        let nab = m.and(na, b);
        let x2 = m.or(anb, nab);
        assert_eq!(x1, x2);
    }

    #[test]
    fn de_morgan_n_ary() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..4).map(|i| m.var(i)).collect();
        let conj = m.and_many(vars.iter().copied());
        let nconj = m.not(conj);
        let nvars: Vec<Ref> = (0..4).map(|i| m.nvar(i)).collect();
        let disj = m.or_many(nvars.iter().copied());
        assert_eq!(nconj, disj);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.or(ab, c); // f = ab + c
        for bits in 0..8u32 {
            let assignment = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let expect = (assignment[0] && assignment[1]) || assignment[2];
            assert_eq!(m.eval(f, &assignment), expect);
        }
    }

    #[test]
    fn cofactor_shannon_expansion() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let bc = m.xor(b, c);
        let f = m.and(a, bc);
        let f0 = m.cofactor(f, 0, false);
        let f1 = m.cofactor(f, 0, true);
        assert_eq!(f0, m.zero());
        assert_eq!(f1, bc);
        // Shannon: f = a·f1 + a'·f0
        let rebuilt = m.ite(a, f1, f0);
        assert_eq!(rebuilt, f);
        // Cofactor w.r.t. a variable not in the support is identity.
        assert_eq!(m.cofactor(bc, 0, true), bc);
    }

    #[test]
    fn sat_count_small_functions() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.sat_count(f, 2), 1.0);
        let g = m.or(a, b);
        assert_eq!(m.sat_count(g, 2), 3.0);
        let x = m.xor(a, b);
        assert_eq!(m.sat_count(x, 2), 2.0);
        assert_eq!(m.sat_count(m.one(), 3), 8.0);
        assert_eq!(m.sat_count(m.zero(), 3), 0.0);
    }

    #[test]
    fn xor_chain_size_is_linear() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..16).map(|i| m.var(i)).collect();
        let f = m.xor_many(vars.iter().copied());
        // Parity has 2 nodes per level in an ROBDD.
        assert!(m.size(f) <= 2 * 16 + 2);
        assert_eq!(m.sat_count(f, 16), 2f64.powi(15));
    }

    #[test]
    fn nand_nor_xnor() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let nand = m.nand(a, b);
        let and = m.and(a, b);
        assert_eq!(m.not(and), nand);
        let nor = m.nor(a, b);
        let or = m.or(a, b);
        assert_eq!(m.not(or), nor);
        let xnor = m.xnor(a, b);
        let xor = m.xor(a, b);
        assert_eq!(m.not(xor), xnor);
    }

    #[test]
    fn empty_n_ary_identities() {
        let mut m = Manager::new();
        assert_eq!(m.and_many(std::iter::empty()), m.one());
        assert_eq!(m.or_many(std::iter::empty()), m.zero());
        assert_eq!(m.xor_many(std::iter::empty()), m.zero());
    }
}
