//! # rapids-bdd
//!
//! A compact reduced ordered binary decision diagram (ROBDD) package.
//!
//! In the RAPIDS reproduction the BDD package plays two roles:
//!
//! 1. **Correctness oracle** — after every rewiring move the test-suite can
//!    check functional equivalence of the original and rewired networks
//!    exactly (for circuits whose BDDs stay small).
//! 2. **Baseline symmetry detector** — classical symmetry detection compares
//!    cofactors ([`symmetry`]), which is what the paper's *easily detectable*
//!    structural method is contrasted against.  The property tests check that
//!    every pin pair the structural detector reports is confirmed by the
//!    cofactor definition.
//!
//! ```
//! use rapids_bdd::Manager;
//!
//! let mut m = Manager::new();
//! let a = m.var(0);
//! let b = m.var(1);
//! let f = m.and(a, b);
//! let g = m.not(f);
//! let h = m.nand(a, b);
//! assert_eq!(g, h);
//! ```

pub mod manager;
pub mod network;
pub mod symmetry;

pub use manager::{Manager, Ref};
pub use network::{build_output_bdds, check_equivalence};
pub use symmetry::{are_equivalence_symmetric, are_nonequivalence_symmetric, SymmetryKind};
