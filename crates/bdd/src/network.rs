//! Building BDDs for the signals of a mapped Boolean network.
//!
//! Primary inputs are assigned BDD variables in declaration order, every gate
//! output gets a BDD built in topological order, and the resulting map lets
//! the test-suite compare networks or sub-functions exactly.

use std::collections::HashMap;

use rapids_netlist::{GateId, GateType, Network};

use crate::manager::{Manager, Ref};

/// BDDs for every live signal of a network.
#[derive(Debug, Clone)]
pub struct NetworkBdds {
    /// BDD variable index assigned to each primary input.
    pub input_vars: HashMap<GateId, u32>,
    /// BDD of every live gate output (inputs map to their projection).
    pub gate_functions: HashMap<GateId, Ref>,
    /// BDDs of the primary outputs, in declaration order.
    pub outputs: Vec<Ref>,
}

/// Builds BDDs for all gates and primary outputs of `network` inside `manager`.
///
/// # Panics
///
/// Panics if the network is cyclic.
pub fn build_output_bdds(manager: &mut Manager, network: &Network) -> NetworkBdds {
    let mut input_vars = HashMap::new();
    for (i, &pi) in network.inputs().iter().enumerate() {
        input_vars.insert(pi, i as u32);
    }
    let order = rapids_netlist::topo::topological_order(network)
        .expect("cannot build BDDs for a cyclic network");
    let mut gate_functions: HashMap<GateId, Ref> = HashMap::new();
    for g in order {
        let gate = network.gate(g);
        let f = match gate.gtype {
            GateType::Input => manager.var(input_vars[&g]),
            GateType::Const0 => manager.zero(),
            GateType::Const1 => manager.one(),
            GateType::Buf => gate_functions[&gate.fanins[0]],
            GateType::Inv => {
                let x = gate_functions[&gate.fanins[0]];
                manager.not(x)
            }
            GateType::And | GateType::Nand => {
                let operands: Vec<Ref> = gate.fanins.iter().map(|f| gate_functions[f]).collect();
                let conj = manager.and_many(operands);
                if gate.gtype == GateType::Nand {
                    manager.not(conj)
                } else {
                    conj
                }
            }
            GateType::Or | GateType::Nor => {
                let operands: Vec<Ref> = gate.fanins.iter().map(|f| gate_functions[f]).collect();
                let disj = manager.or_many(operands);
                if gate.gtype == GateType::Nor {
                    manager.not(disj)
                } else {
                    disj
                }
            }
            GateType::Xor | GateType::Xnor => {
                let operands: Vec<Ref> = gate.fanins.iter().map(|f| gate_functions[f]).collect();
                let x = manager.xor_many(operands);
                if gate.gtype == GateType::Xnor {
                    manager.not(x)
                } else {
                    x
                }
            }
        };
        gate_functions.insert(g, f);
    }
    let outputs = network.outputs().iter().map(|o| gate_functions[&o.driver]).collect();
    NetworkBdds { input_vars, gate_functions, outputs }
}

/// Checks whether two networks over the *same primary-input names* (matched
/// positionally) implement identical output functions.
///
/// Returns `Ok(())` on equivalence, or `Err(index)` with the index of the
/// first mismatching output.
pub fn check_equivalence(a: &Network, b: &Network) -> Result<(), usize> {
    let mut manager = Manager::new();
    let bdds_a = build_output_bdds(&mut manager, a);
    let bdds_b = build_output_bdds(&mut manager, b);
    if bdds_a.outputs.len() != bdds_b.outputs.len() {
        return Err(bdds_a.outputs.len().min(bdds_b.outputs.len()));
    }
    for (i, (fa, fb)) in bdds_a.outputs.iter().zip(&bdds_b.outputs).enumerate() {
        if fa != fb {
            return Err(i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::{GateType, NetworkBuilder, PinRef};

    fn full_adder() -> Network {
        let mut b = NetworkBuilder::new("fa");
        b.inputs(["a", "b", "cin"]);
        b.gate("s1", GateType::Xor, &["a", "b"]);
        b.gate("sum", GateType::Xor, &["s1", "cin"]);
        b.gate("c1", GateType::And, &["a", "b"]);
        b.gate("c2", GateType::And, &["s1", "cin"]);
        b.gate("cout", GateType::Or, &["c1", "c2"]);
        b.output("sum");
        b.output("cout");
        b.finish().unwrap()
    }

    #[test]
    fn full_adder_truth_table() {
        let n = full_adder();
        let mut m = Manager::new();
        let bdds = build_output_bdds(&mut m, &n);
        for bits in 0..8u32 {
            let a = (bits & 1) != 0;
            let b = (bits & 2) != 0;
            let c = (bits & 4) != 0;
            let sum = m.eval(bdds.outputs[0], &[a, b, c]);
            let cout = m.eval(bdds.outputs[1], &[a, b, c]);
            let total = a as u32 + b as u32 + c as u32;
            assert_eq!(sum, total % 2 == 1);
            assert_eq!(cout, total >= 2);
        }
    }

    #[test]
    fn equivalence_of_identical_networks() {
        let a = full_adder();
        let b = full_adder();
        assert!(check_equivalence(&a, &b).is_ok());
    }

    #[test]
    fn symmetric_input_swap_preserves_equivalence() {
        let a = full_adder();
        let mut b = full_adder();
        // Swapping the two fanins of the first XOR preserves functionality.
        let s1 = b.find_by_name("s1").unwrap();
        b.swap_pin_drivers(PinRef::new(s1, 0), PinRef::new(s1, 1)).unwrap();
        assert!(check_equivalence(&a, &b).is_ok());
    }

    #[test]
    fn nonequivalent_networks_detected() {
        let a = full_adder();
        let mut builder = NetworkBuilder::new("broken");
        builder.inputs(["a", "b", "cin"]);
        builder.gate("s1", GateType::Xor, &["a", "b"]);
        builder.gate("sum", GateType::Xor, &["s1", "cin"]);
        builder.gate("c1", GateType::And, &["a", "b"]);
        builder.gate("c2", GateType::And, &["s1", "cin"]);
        // OR replaced by XOR: cout differs when both carries are 1 — which
        // never happens for a full adder, so use NAND to force a difference.
        builder.gate("cout", GateType::Nand, &["c1", "c2"]);
        builder.output("sum");
        builder.output("cout");
        let b = builder.finish().unwrap();
        assert_eq!(check_equivalence(&a, &b), Err(1));
    }

    #[test]
    fn nand_nor_inverted_forms() {
        let mut builder = NetworkBuilder::new("forms");
        builder.inputs(["x", "y"]);
        builder.gate("n1", GateType::Nand, &["x", "y"]);
        builder.gate("n2", GateType::And, &["x", "y"]);
        builder.gate("n3", GateType::Inv, &["n2"]);
        builder.output("n1");
        builder.output("n3");
        let n = builder.finish().unwrap();
        let mut m = Manager::new();
        let bdds = build_output_bdds(&mut m, &n);
        assert_eq!(bdds.outputs[0], bdds.outputs[1]);
    }

    #[test]
    fn constants_in_network() {
        let mut b = NetworkBuilder::new("c");
        b.input("a");
        b.constant("zero", false);
        b.gate("f", GateType::Or, &["a", "zero"]);
        b.output("f");
        let n = b.finish().unwrap();
        let mut m = Manager::new();
        let bdds = build_output_bdds(&mut m, &n);
        let a_var = m.var(0);
        assert_eq!(bdds.outputs[0], a_var);
    }
}
