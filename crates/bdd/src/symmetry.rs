//! Classical cofactor-based symmetry detection (the baseline / oracle).
//!
//! §2 of the paper defines, for a function `f` over inputs `x_i`, `x_j`:
//!
//! * **NES** (non-equivalence symmetry): `f_{x_i x̄_j} = f_{x̄_i x_j}` —
//!   exchanging the two inputs leaves `f` unchanged.
//! * **ES** (equivalence symmetry): `f_{x_i x_j} = f_{x̄_i x̄_j}` —
//!   exchanging one input with the complement of the other leaves `f`
//!   unchanged.
//!
//! NES corresponds to a *non-inverting* pin swap and ES to an *inverting*
//! swap (§4).  These checks are exact but require building the function's
//! BDD, which is what the paper's structural method avoids; here they serve
//! as the verification oracle for the structural detector.

use crate::manager::{Manager, Ref};

/// Kind of functional symmetry between two inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymmetryKind {
    /// Non-equivalence symmetric only (swap without inverters).
    NonEquivalence,
    /// Equivalence symmetric only (swap with inverters).
    Equivalence,
    /// Both NES and ES hold (e.g. XOR inputs).
    Both,
    /// Neither symmetry holds.
    None,
}

/// Returns `true` if inputs `xi` and `xj` are non-equivalence symmetric
/// (NES) in `f`: `f_{x_i=1, x_j=0} == f_{x_i=0, x_j=1}`.
pub fn are_nonequivalence_symmetric(manager: &mut Manager, f: Ref, xi: u32, xj: u32) -> bool {
    let f_i1 = manager.cofactor(f, xi, true);
    let f_i1_j0 = manager.cofactor(f_i1, xj, false);
    let f_i0 = manager.cofactor(f, xi, false);
    let f_i0_j1 = manager.cofactor(f_i0, xj, true);
    f_i1_j0 == f_i0_j1
}

/// Returns `true` if inputs `xi` and `xj` are equivalence symmetric (ES) in
/// `f`: `f_{x_i=1, x_j=1} == f_{x_i=0, x_j=0}`.
pub fn are_equivalence_symmetric(manager: &mut Manager, f: Ref, xi: u32, xj: u32) -> bool {
    let f_i1 = manager.cofactor(f, xi, true);
    let f_i1_j1 = manager.cofactor(f_i1, xj, true);
    let f_i0 = manager.cofactor(f, xi, false);
    let f_i0_j0 = manager.cofactor(f_i0, xj, false);
    f_i1_j1 == f_i0_j0
}

/// Classifies the symmetry between two inputs of `f`.
pub fn classify_symmetry(manager: &mut Manager, f: Ref, xi: u32, xj: u32) -> SymmetryKind {
    let nes = are_nonequivalence_symmetric(manager, f, xi, xj);
    let es = are_equivalence_symmetric(manager, f, xi, xj);
    match (nes, es) {
        (true, true) => SymmetryKind::Both,
        (true, false) => SymmetryKind::NonEquivalence,
        (false, true) => SymmetryKind::Equivalence,
        (false, false) => SymmetryKind::None,
    }
}

/// All unordered input pairs `(i, j)` of `f` (over `num_vars` variables) that
/// exhibit NES — the classical "symmetric pairs" report.
pub fn nes_pairs(manager: &mut Manager, f: Ref, num_vars: u32) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for i in 0..num_vars {
        for j in (i + 1)..num_vars {
            if are_nonequivalence_symmetric(manager, f, i, j) {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_inputs_are_nes_not_es() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert!(are_nonequivalence_symmetric(&mut m, f, 0, 1));
        assert!(!are_equivalence_symmetric(&mut m, f, 0, 1));
        assert_eq!(classify_symmetry(&mut m, f, 0, 1), SymmetryKind::NonEquivalence);
    }

    #[test]
    fn xor_inputs_are_both() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        assert_eq!(classify_symmetry(&mut m, f, 0, 1), SymmetryKind::Both);
    }

    #[test]
    fn and_with_inverted_input_is_es() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let nb = m.not(b);
        // f = a & !b : exchanging a and b changes f, but exchanging a with
        // the complement of b (ES) does not.
        let f = m.and(a, nb);
        assert!(!are_nonequivalence_symmetric(&mut m, f, 0, 1));
        assert!(are_equivalence_symmetric(&mut m, f, 0, 1));
        assert_eq!(classify_symmetry(&mut m, f, 0, 1), SymmetryKind::Equivalence);
    }

    #[test]
    fn asymmetric_function() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        // f = a & (b | c): a is not symmetric with b.
        let bc = m.or(b, c);
        let f = m.and(a, bc);
        assert_eq!(classify_symmetry(&mut m, f, 0, 1), SymmetryKind::None);
        // but b and c are NES.
        assert!(are_nonequivalence_symmetric(&mut m, f, 1, 2));
    }

    #[test]
    fn nes_pairs_of_majority() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let t = m.or(ab, ac);
        let maj = m.or(t, bc);
        let pairs = nes_pairs(&mut m, maj, 3);
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn totally_symmetric_parity() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..5).map(|i| m.var(i)).collect();
        let f = m.xor_many(vars.iter().copied());
        let pairs = nes_pairs(&mut m, f, 5);
        assert_eq!(pairs.len(), 10);
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_eq!(classify_symmetry(&mut m, f, i, j), SymmetryKind::Both);
            }
        }
    }

    #[test]
    fn constants_are_trivially_symmetric() {
        let mut m = Manager::new();
        let one = m.one();
        assert_eq!(classify_symmetry(&mut m, one, 0, 1), SymmetryKind::Both);
    }
}
