//! # rapids-flow
//!
//! Facade crate of the RAPIDS workspace (reproduction of *"Fast
//! Post-placement Rewiring Using Easily Detectable Functional Symmetries"*,
//! DAC 2000): the [`Pipeline`] runs the end-to-end flow
//!
//! ```text
//! generate → map-to-library → place → STA → optimize (gsg / GS / gsg+GS) → report
//! ```
//!
//! as one configurable call, and the substrate crates are re-exported as
//! modules so downstream code can depend on `rapids-flow` alone:
//!
//! ```
//! use rapids_flow::{CircuitSource, Pipeline};
//!
//! let report = Pipeline::fast().run(CircuitSource::suite("alu2")).unwrap();
//! println!(
//!     "{}: {:.3} ns → {:.3} ns with {}",
//!     report.name, report.initial_delay_ns, report.outcome.final_delay_ns, report.kind
//! );
//! ```

pub mod pipeline;

pub use pipeline::{
    CircuitSource, FlowComparison, LegalizationReport, Pipeline, PipelineConfig, PipelineError,
    PipelineReport, PreparedDesign, SafetyNet, StageTimings,
};
pub use rapids_core::CancelToken;

// Substrate crates, re-exported under stable short names.
pub use rapids_bdd as bdd;
pub use rapids_cec as cec;
pub use rapids_celllib as celllib;
pub use rapids_circuits as circuits;
pub use rapids_core as core;
pub use rapids_legalize as legalize;
pub use rapids_netlist as netlist;
pub use rapids_placement as placement;
pub use rapids_sim as sim;
pub use rapids_sizing as sizing;
pub use rapids_timing as timing;
